"""Abstract RCD query models: the 1+ and 2+ collision semantics.

These are the counting models behind the paper's simulation figures.  A
query on a bin resolves instantly against the hidden :class:`Population`;
the model charges one unit of cost per query and returns a
:class:`BinObservation` that encodes *exactly* the information the
corresponding radio primitive would expose:

* **1+ model** (pollcast/backcast): silence, or activity meaning ">= 1
  positive".  No message is decoded.
* **2+ model**: the radio may lock onto one reply (the *capture effect*)
  and decode its sender id -- in which case that node is a confirmed
  positive but nothing is learned about the others -- or observe an
  undecodable collision, which proves ">= 2 positives".

Both models accept an optional *detection-failure* hook so failure
injection tests (and the abstract replication of the testbed's radio
irregularities) can make a non-empty bin read silent with a
responder-count-dependent probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.group_testing.population import Population
from repro.obs import get_registry

#: Minimum total membership of a round before :meth:`_BaseModel.begin_round`
#: prefetches counts vectorized; below it the numpy call overhead beats the
#: per-bin set-membership loops it replaces.
_PREFETCH_MIN_MEMBERS = 64

#: Instruments created once at import so the per-query path pays no name
#: lookup; every call is inert until the registry is enabled (--metrics).
#: No RNG stream is touched here: metrics cannot change results.
_OBS = get_registry()
_M_QUERIES = _OBS.counter("model.queries")
_M_SILENT = _OBS.counter("model.verdict.silent")
_M_ACTIVITY = _OBS.counter("model.verdict.activity")
_M_CAPTURE = _OBS.counter("model.verdict.capture")
_M_BIN_SIZE = _OBS.histogram(
    "model.bin_size", edges=(1, 2, 4, 8, 16, 32, 64, 128, 256)
)


class QueryBudgetExceeded(RuntimeError):
    """Raised when a model's query budget is exhausted.

    The budget is a guard against non-terminating algorithm bugs; exact
    algorithms are bounded by :func:`repro.analytic.bounds.upper_bound_queries`
    and should never trip it.
    """


class ObservationKind(Enum):
    """What the initiator's radio observed for one bin query."""

    SILENT = "silent"
    """No channel activity: the bin holds no (detected) positive node."""

    ACTIVITY = "activity"
    """Undecodable activity: >= 1 positive (1+ model) or >= 2 (2+ model)."""

    CAPTURE = "capture"
    """One reply decoded: its sender is a confirmed positive (2+ only)."""


@dataclass(frozen=True)
class BinObservation:
    """Result of querying one bin.

    Attributes:
        kind: The observation class.
        min_positives: A *sound* lower bound on the number of positive
            nodes in the queried bin implied by the observation (0 for
            silence; 1 for 1+ activity or a capture; 2 for a 2+ collision).
        captured_node: Decoded sender id for ``CAPTURE`` observations,
            else ``None``.
    """

    kind: ObservationKind
    min_positives: int
    captured_node: Optional[int] = None

    @property
    def silent(self) -> bool:
        """Whether the bin read as silent."""
        return self.kind is ObservationKind.SILENT


class QueryModel(Protocol):
    """What an algorithm may do: query a bin, and read its own cost.

    Implementations: :class:`OnePlusModel`, :class:`TwoPlusModel`, and the
    packet-level :class:`repro.motes.testbed.TestbedQueryAdapter`.
    """

    @property
    def queries_used(self) -> int:
        """Total queries charged so far."""
        ...

    @property
    def population_size(self) -> int:
        """Number of participant nodes (the paper's ``N``)."""
        ...

    def query(self, members: Sequence[int]) -> BinObservation:
        """Query one bin; charges one cost unit.

        Callers are responsible for not querying bins they *know* to be
        member-less (those are free per Sec IV-C); querying a sampled bin
        whose membership is unknown to the initiator is charged normally.
        """
        ...


def default_capture_probability(k: int) -> float:
    """Default capture model: ``P(capture | k simultaneous replies) = 1/k``.

    A single reply is always decoded; with more repliers the chance that
    one signal dominates decays inversely (DESIGN.md choice; the paper does
    not pin a model beyond "decreasing probability as the number of
    messages increase").
    """
    if k < 1:
        raise ValueError(f"responder count must be >= 1, got {k}")
    return 1.0 / k


class _BaseModel:
    """Shared cost-ledger plumbing for the abstract models.

    Beyond the ledger this base carries the two vectorized batch-trial
    paths (the hottest loops of every sweep):

    * :meth:`begin_round` prefetches all of a round's per-bin positive
      counts in one numpy pass over the concatenated membership; the
      subsequent :meth:`query` calls consume the cache in order.  Cost
      charging, early termination and every RNG draw stay exactly where
      they were, so results are bit-identical to the unprimed path.
    * :meth:`query_batch` answers a whole batch of bins at once (used by
      the non-adaptive probabilistic scheme, whose probe set is fixed up
      front).
    """

    #: Whether the subclass's observation logic needs the positive member
    #: ids (not just the count) -- true only for the 2+ capture draw.
    _wants_positive_members = False

    def __init__(
        self,
        population: Population,
        rng: np.random.Generator,
        *,
        max_queries: Optional[int] = None,
        detection_failure: Optional[Callable[[int], float]] = None,
    ) -> None:
        self._population = population
        self._rng = rng
        self._queries = 0
        self._max_queries = max_queries
        self._detection_failure = detection_failure
        self._round_bins: Optional[List[Sequence[int]]] = None
        self._round_counts: Optional[np.ndarray] = None
        self._round_pos: Optional[List[np.ndarray]] = None
        self._round_next = 0

    @property
    def population(self) -> Population:
        """The hidden ground truth (for harness/tests, not algorithms)."""
        return self._population

    @property
    def population_size(self) -> int:
        """Number of participant nodes."""
        return self._population.size

    @property
    def queries_used(self) -> int:
        """Total queries charged so far."""
        return self._queries

    def _charge(self) -> None:
        self._queries += 1
        if self._max_queries is not None and self._queries > self._max_queries:
            raise QueryBudgetExceeded(
                f"query budget of {self._max_queries} exceeded"
            )

    def _record(
        self, members: Sequence[int], obs: BinObservation
    ) -> BinObservation:
        """Count one finished query into the metrics layer (pass-through).

        One guard check per query while metrics are disabled; no RNG use
        either way, so observations are returned untouched.
        """
        if _OBS.enabled:
            _M_QUERIES.inc()
            _M_BIN_SIZE.observe(len(members))
            if obs.kind is ObservationKind.SILENT:
                _M_SILENT.inc()
            elif obs.kind is ObservationKind.CAPTURE:
                _M_CAPTURE.inc()
            else:
                _M_ACTIVITY.inc()
        return obs

    def _detected(self, npos: int) -> bool:
        """Whether a bin with ``npos`` positives produces visible activity."""
        if npos == 0:
            return False
        if self._detection_failure is None:
            return True
        miss = self._detection_failure(npos)
        if not 0.0 <= miss <= 1.0:
            raise ValueError(f"detection-failure hook returned {miss}")
        return bool(self._rng.random() >= miss)

    # ------------------------------------------------------------------
    # Vectorized batch-trial paths
    # ------------------------------------------------------------------

    def begin_round(self, bins: Sequence[Sequence[int]]) -> None:
        """Prefetch the round's per-bin positive counts in one numpy pass.

        Called by the round executor before the per-bin queries (the same
        hook the packet-level substrate uses for its round announcement).
        Purely a performance seam: no cost is charged and no randomness is
        consumed here, so a primed round is bit-identical to an unprimed
        one.  Holding references to the bin lists keeps their ids unique
        for the in-order identity match in :meth:`_take_counted`.
        """
        self._round_bins = None
        self._round_pos = None
        self._round_next = 0
        if not bins or sum(len(b) for b in bins) < _PREFETCH_MIN_MEMBERS:
            return
        counts, pos = self._population.scan_bins(
            bins, want_positives=self._wants_positive_members
        )
        self._round_bins = list(bins)
        self._round_counts = counts
        self._round_pos = pos

    def _take_counted(
        self, members: Sequence[int]
    ) -> Optional[Tuple[int, Optional[np.ndarray]]]:
        """Pop the prefetched ``(count, positives)`` entry for ``members``.

        Matches strictly in round order and by object identity, so
        re-queries (retry policies) and out-of-round probes fall back to
        direct counting with no risk of stale data.
        """
        cached = self._round_bins
        i = self._round_next
        if cached is None or i >= len(cached) or cached[i] is not members:
            return None
        self._round_next = i + 1
        assert self._round_counts is not None
        pos = self._round_pos[i] if self._round_pos is not None else None
        return int(self._round_counts[i]), pos

    def query(self, members: Sequence[int]) -> BinObservation:
        """Query one bin; charges one cost unit.

        This is the single scalar verdict path shared by every model (and
        mirrored by :mod:`repro.group_testing.vectorized`): charge, count
        positives (from the round prefetch when available), then hand the
        count -- and, for capture-capable models, the positive member ids
        in membership order -- to the subclass's :meth:`_observe`.
        """
        self._charge()
        cached = self._take_counted(members)
        pos: Optional[Sequence[int]]
        if cached is not None:
            npos, pos = cached
        elif self._wants_positive_members:
            pos = [m for m in members if self._population.is_positive(m)]
            npos = len(pos)
        else:
            pos = None
            npos = self._population.count_positives(members)
        return self._record(members, self._observe(members, npos, pos))

    def query_batch(
        self, bins: Sequence[Sequence[int]]
    ) -> List[BinObservation]:
        """Query a batch of bins; charges one cost unit per bin.

        The per-bin positive counts are evaluated in a single vectorized
        pass; observations (and any detection/capture draws) are then
        produced bin-by-bin in order, so the result -- including the RNG
        stream consumption -- is identical to looping over
        :meth:`query`.
        """
        counts, pos = self._population.scan_bins(
            bins, want_positives=self._wants_positive_members
        )
        out: List[BinObservation] = []
        for i, members in enumerate(bins):
            self._charge()
            out.append(
                self._record(
                    members,
                    self._observe(
                        members,
                        int(counts[i]),
                        pos[i] if pos is not None else None,
                    ),
                )
            )
        return out

    def _observe(
        self,
        members: Sequence[int],
        npos: int,
        pos: Optional[Sequence[int]],
    ) -> BinObservation:
        """Produce the observation for a bin with ``npos`` positives.

        ``pos`` carries the positive member ids in membership order when
        :attr:`_wants_positive_members` is set (2+ capture), else ``None``.
        """
        raise NotImplementedError


class OnePlusModel(_BaseModel):
    """The 1+ collision model: silence vs undecodable activity.

    Implements the information structure of pollcast (CCA-based RCD) and
    backcast (superposed-HACK RCD): an activity observation proves only
    ">= 1 positive in the bin".

    Args:
        population: Hidden ground truth.
        rng: Randomness (used only by the optional failure hook).
        max_queries: Optional hard budget (bug guard).
        detection_failure: Optional ``k -> miss probability`` hook making a
            bin with ``k`` positives read silent; ``None`` means an ideal
            radio.
    """

    def _observe(
        self,
        members: Sequence[int],
        npos: int,
        pos: Optional[Sequence[int]],
    ) -> BinObservation:
        if self._detected(npos):
            return BinObservation(kind=ObservationKind.ACTIVITY, min_positives=1)
        return BinObservation(kind=ObservationKind.SILENT, min_positives=0)


class KPlusModel(_BaseModel):
    """The generalised ``k+`` channel of the companion theory paper
    (Aspnes et al., "k+ decision trees").

    A query reveals ``min(count, k)``: the *exact* number of positives in
    the bin when it is below ``k``, and only ">= k" otherwise.  ``k = 1``
    collapses to the 1+ model; larger ``k`` strengthens the per-bin
    evidence, which the round executor exploits automatically (its
    termination check sums the sound per-bin lower bounds).  Unlike the
    2+ model there is no capture: no identities are ever revealed, so no
    individual node can be excluded.

    Args:
        population: Hidden ground truth.
        rng: Randomness (used only by the optional failure hook).
        k: Count-resolution of the channel (``>= 1``).
        max_queries: Optional hard budget.
        detection_failure: Optional miss-probability hook.
    """

    def __init__(
        self,
        population: Population,
        rng: np.random.Generator,
        *,
        k: int,
        max_queries: Optional[int] = None,
        detection_failure: Optional[Callable[[int], float]] = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        super().__init__(
            population,
            rng,
            max_queries=max_queries,
            detection_failure=detection_failure,
        )
        self._k = k

    @property
    def k(self) -> int:
        """The channel's count resolution."""
        return self._k

    def _observe(
        self,
        members: Sequence[int],
        npos: int,
        pos: Optional[Sequence[int]],
    ) -> BinObservation:
        if not self._detected(npos):
            return BinObservation(kind=ObservationKind.SILENT, min_positives=0)
        return BinObservation(
            kind=ObservationKind.ACTIVITY,
            min_positives=min(npos, self._k),
        )


class TwoPlusModel(_BaseModel):
    """The 2+ collision model: capture-effect decoding of one reply.

    A lone reply is always decoded.  With ``k >= 2`` simultaneous replies
    one of them is decoded with probability ``capture_probability(k)``
    (default ``1/k``); otherwise the initiator observes an undecodable
    collision, which certifies ">= 2 positives".  Because of the capture
    effect a decoded reply never certifies that it was the *only* reply,
    so only the decoded sender itself may be excluded from future rounds
    (Sec III-A).

    The ``detection_failure`` hook gates *detection of the aggregate
    reply*, exactly as in :class:`OnePlusModel`: it receives the bin's
    true positive count ``k`` and a draw below ``miss(k)`` makes the
    whole bin read silent.  In particular a lone reply (``k == 1``) --
    which an ideal 2+ radio would always capture and decode -- is lost
    with probability ``miss(1)``, and a failed detection suppresses the
    capture/collision branch entirely.  The hook is only consulted for
    ``k >= 1``: an empty bin is silent unconditionally, so the hook can
    never fabricate activity (false positives stay impossible).

    Args:
        population: Hidden ground truth.
        rng: Randomness for capture draws and sender selection.
        capture_probability: ``k -> P(decode one reply)`` for ``k >= 2``.
        max_queries: Optional hard budget.
        detection_failure: Optional miss-probability hook (as in
            :class:`OnePlusModel`).
    """

    def __init__(
        self,
        population: Population,
        rng: np.random.Generator,
        *,
        capture_probability: Callable[[int], float] = default_capture_probability,
        max_queries: Optional[int] = None,
        detection_failure: Optional[Callable[[int], float]] = None,
    ) -> None:
        super().__init__(
            population,
            rng,
            max_queries=max_queries,
            detection_failure=detection_failure,
        )
        self._capture_probability = capture_probability

    _wants_positive_members = True

    def _observe(
        self,
        members: Sequence[int],
        npos: int,
        pos: Optional[Sequence[int]],
    ) -> BinObservation:
        if not self._detected(npos):
            return BinObservation(kind=ObservationKind.SILENT, min_positives=0)
        assert pos is not None
        if npos == 1:
            return BinObservation(
                kind=ObservationKind.CAPTURE,
                min_positives=1,
                captured_node=int(pos[0]),
            )
        p_cap = self._capture_probability(npos)
        if not 0.0 <= p_cap <= 1.0:
            raise ValueError(f"capture probability out of range: {p_cap}")
        if self._rng.random() < p_cap:
            winner = int(pos[int(self._rng.integers(npos))])
            return BinObservation(
                kind=ObservationKind.CAPTURE,
                min_positives=1,
                captured_node=winner,
            )
        return BinObservation(kind=ObservationKind.ACTIVITY, min_positives=2)


@dataclass(frozen=True)
class ModelSpec:
    """A picklable :class:`QueryModel` factory.

    The parallel sweep backend ships work to worker processes, which
    rules out the closures the figure runners used to build models with.
    A ``ModelSpec`` carries the same configuration declaratively: calling
    it with ``(population, rng)`` builds the model, so it drops into
    every ``model_factory`` seam unchanged.  Hook callables
    (``detection_failure``, ``capture_probability``) must themselves be
    picklable for the parallel path -- module-level functions and bound
    methods of picklable objects (e.g.
    ``HackMissModel(...).miss_probability``) both qualify.

    Attributes:
        kind: Collision semantics: ``"1+"``, ``"2+"`` or ``"k+"``.
        max_queries: Optional hard query budget.
        k: Count resolution for ``"k+"`` (ignored otherwise).
        detection_failure: Optional miss-probability hook.
        capture_probability: Capture model override for ``"2+"``
            (``None`` = the :func:`default_capture_probability`).
    """

    kind: str
    max_queries: Optional[int] = None
    k: int = 1
    detection_failure: Optional[Callable[[int], float]] = None
    capture_probability: Optional[Callable[[int], float]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("1+", "2+", "k+"):
            raise ValueError(
                f"kind must be '1+', '2+' or 'k+', got {self.kind!r}"
            )

    def __call__(
        self, population: Population, rng: np.random.Generator
    ) -> QueryModel:
        """Build the configured model over ``population``."""
        if self.kind == "1+":
            return OnePlusModel(
                population,
                rng,
                max_queries=self.max_queries,
                detection_failure=self.detection_failure,
            )
        if self.kind == "k+":
            return KPlusModel(
                population,
                rng,
                k=self.k,
                max_queries=self.max_queries,
                detection_failure=self.detection_failure,
            )
        return TwoPlusModel(
            population,
            rng,
            capture_probability=(
                self.capture_probability
                if self.capture_probability is not None
                else default_capture_probability
            ),
            max_queries=self.max_queries,
            detection_failure=self.detection_failure,
        )
