"""Group-testing framework for threshold querying.

The paper casts threshold querying as a variant of combinatorial group
testing: a hidden set of *positive* nodes, queries on arbitrary *bins*
(subsets), and a silent/active observation per query.  This package holds
the pieces shared by every algorithm:

* :mod:`repro.group_testing.population` -- the hidden ground truth.
* :mod:`repro.group_testing.binning` -- random/deterministic partitioning
  of a candidate set into bins.
* :mod:`repro.group_testing.model` -- the 1+ and 2+ collision models
  together with the query-cost ledger, plus a packet-level adapter
  protocol so the mote emulation can stand in for the abstract model.
"""

from repro.group_testing.binning import (
    partition_deterministic,
    partition_random,
    sample_bin,
    sample_bins,
)
from repro.group_testing.model import (
    BinObservation,
    KPlusModel,
    ModelSpec,
    ObservationKind,
    OnePlusModel,
    QueryBudgetExceeded,
    QueryModel,
    TwoPlusModel,
)
from repro.group_testing.population import Population
from repro.group_testing.vectorized import (
    BatchDecision,
    QueryBatch,
    UnsupportedBatch,
    run_lockstep,
    run_probes,
)

__all__ = [
    "BatchDecision",
    "BinObservation",
    "KPlusModel",
    "ModelSpec",
    "ObservationKind",
    "OnePlusModel",
    "Population",
    "QueryBatch",
    "QueryBudgetExceeded",
    "QueryModel",
    "TwoPlusModel",
    "UnsupportedBatch",
    "partition_deterministic",
    "partition_random",
    "run_lockstep",
    "run_probes",
    "sample_bin",
    "sample_bins",
]
