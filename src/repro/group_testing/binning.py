"""Partitioning a candidate set into bins.

The 2tBins family re-partitions the surviving candidates *randomly* into
equal-sized bins at the start of every round (the companion theory paper
used a deterministic partition; both are provided).  Bin sizes differ by at
most one.  When the requested bin count exceeds the candidate count, the
excess bins receive zero members; per Sec IV-C such bins are skipped free
of charge by the algorithms, so partition functions may simply return
fewer than ``bins`` groups.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def partition_random(
    candidates: Sequence[int],
    bins: int,
    rng: np.random.Generator,
) -> List[List[int]]:
    """Randomly partition ``candidates`` into up to ``bins`` balanced bins.

    A uniformly random permutation is sliced into contiguous chunks whose
    sizes differ by at most one, which is equivalent to dealing nodes
    round-robin in random order.

    Args:
        candidates: Node ids to distribute (need not be sorted).
        bins: Requested number of bins (``>= 1``).
        rng: Randomness source.

    Returns:
        A list of non-empty bins (member-id lists).  The number of returned
        bins is ``min(bins, len(candidates))``; zero-member bins are never
        materialised.

    Raises:
        ValueError: If ``bins < 1``.
    """
    if bins < 1:
        raise ValueError(f"bin count must be >= 1, got {bins}")
    n = len(candidates)
    if n == 0:
        return []
    order = rng.permutation(n)
    arr = np.asarray(candidates, dtype=np.int64)[order]
    effective = min(bins, n)
    # Split into `effective` chunks with sizes differing by at most one.
    base, extra = divmod(n, effective)
    out: List[List[int]] = []
    start = 0
    for i in range(effective):
        size = base + (1 if i < extra else 0)
        out.append(arr[start : start + size].tolist())
        start += size
    return out


def partition_deterministic(
    candidates: Sequence[int],
    bins: int,
) -> List[List[int]]:
    """Deterministic balanced partition (sorted ids, contiguous slices).

    This is the variant used by the companion theory paper; useful for
    worst-case analyses and exact-replay tests.

    Args:
        candidates: Node ids to distribute.
        bins: Requested number of bins (``>= 1``).

    Returns:
        Non-empty balanced bins over the *sorted* candidate ids.
    """
    if bins < 1:
        raise ValueError(f"bin count must be >= 1, got {bins}")
    ordered = sorted(candidates)
    n = len(ordered)
    if n == 0:
        return []
    effective = min(bins, n)
    base, extra = divmod(n, effective)
    out: List[List[int]] = []
    start = 0
    for i in range(effective):
        size = base + (1 if i < extra else 0)
        out.append(ordered[start : start + size])
        start += size
    return out


def sample_bin(
    candidates: Sequence[int],
    inclusion_prob: float,
    rng: np.random.Generator,
) -> List[int]:
    """Sample a single bin by independent inclusion (Sec V-D / VI probes).

    Each candidate joins the bin independently with probability
    ``inclusion_prob``.  Used by Probabilistic ABNS (``2/t``) and the
    bimodal probabilistic model (``1/b``).

    Args:
        candidates: Node ids eligible for the probe.
        inclusion_prob: Per-node inclusion probability in ``[0, 1]``.
        rng: Randomness source.

    Returns:
        The sampled member list (possibly empty).

    Raises:
        ValueError: If ``inclusion_prob`` is outside ``[0, 1]``.
    """
    if not 0.0 <= inclusion_prob <= 1.0:
        raise ValueError(
            f"inclusion probability must be in [0,1], got {inclusion_prob}"
        )
    if len(candidates) == 0 or inclusion_prob == 0.0:
        return []
    draws = rng.random(len(candidates)) < inclusion_prob
    arr = np.asarray(candidates, dtype=np.int64)
    return arr[draws].tolist()


def sample_bins(
    candidates: Sequence[int],
    inclusion_prob: float,
    count: int,
    rng: np.random.Generator,
) -> List[List[int]]:
    """Sample ``count`` independent inclusion bins in one vectorized draw.

    Bit-identical to ``count`` successive :func:`sample_bin` calls on the
    same generator (numpy fills a 2-D ``random`` draw in C order, i.e.
    row-by-row), but one matrix comparison replaces the per-probe Python
    loop.  Used by the probabilistic scheme's repeated probes.

    Args:
        candidates: Node ids eligible for the probes.
        inclusion_prob: Per-node inclusion probability in ``[0, 1]``.
        count: Number of bins to sample (``>= 0``).
        rng: Randomness source.

    Returns:
        ``count`` member lists (each possibly empty).

    Raises:
        ValueError: If ``inclusion_prob`` is outside ``[0, 1]`` or
            ``count`` is negative.
    """
    if not 0.0 <= inclusion_prob <= 1.0:
        raise ValueError(
            f"inclusion probability must be in [0,1], got {inclusion_prob}"
        )
    if count < 0:
        raise ValueError(f"bin count must be >= 0, got {count}")
    if len(candidates) == 0 or inclusion_prob == 0.0:
        return [[] for _ in range(count)]
    draws = rng.random((count, len(candidates))) < inclusion_prob
    arr = np.asarray(candidates, dtype=np.int64)
    return [arr[row].tolist() for row in draws]
