"""Vectorized Monte-Carlo kernel: a whole (label, x)-cell as array ops.

Every figure in the paper is a Monte-Carlo estimate of query cost over
random populations.  The scalar path runs each trial as a Python loop of
:meth:`QueryModel.query` calls; this module executes an entire cell of
``runs`` trials with numpy array operations instead, while consuming the
**exact same RNG streams** so its output is bit-identical to the scalar
path (which stays in the tree as the oracle; see DESIGN.md section 14).

The contract has three parts:

* **RNG streams.**  A :class:`QueryBatch` carries a ``streams(run)``
  callable yielding the ``(pop, model, bins)`` generators for each run.
  The kernel makes precisely the draws the scalar path makes on each --
  the population ``choice``, one ``permutation`` per round, and (2+ only)
  the per-collision capture draws -- and nothing else.  Everything
  *between* draws (counting, verdicts, termination, elimination) is
  vectorized.
* **Verdict semantics.**  The single scalar verdict path
  (:meth:`repro.group_testing.model._BaseModel.query` plus each model's
  ``_observe``) is the semantics source this kernel mirrors; the round
  loop mirrors :meth:`repro.core.base.ThresholdAlgorithm._run_round`.
* **Metrics.**  When collection is enabled the kernel tallies
  ``model.queries`` / ``model.verdict.*`` / ``model.bin_size`` exactly as
  the scalar instruments would and absorbs one merged
  :class:`~repro.obs.MetricsSnapshot` per cell, so counter totals
  reconcile exactly with scalar runs.

Anything the kernel cannot reproduce bit-exactly -- detection-failure
hooks (fault plans), non-random partitioning, adaptive bin policies --
raises :class:`UnsupportedBatch`, and callers fall back to the scalar
path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.group_testing.model import (
    ModelSpec,
    QueryBudgetExceeded,
    default_capture_probability,
)
from repro.obs import HistogramSnapshot, MetricsSnapshot, get_registry
from repro.sim import fastseed
from repro.sim.rng import RngRegistry

_OBS = get_registry()

#: Pooled generators for state-loaded streams (slot 0 is the scratch
#: slot for transient draws; per-run bins streams start at slot 1).
_POOL = fastseed.GeneratorPool()

#: Bucket edges of the ``model.bin_size`` histogram (must match
#: :mod:`repro.group_testing.model`).
_BIN_SIZE_EDGES: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)
_BIN_SIZE_EDGES_ARR = np.asarray(_BIN_SIZE_EDGES)

#: Round safety valve, mirroring :attr:`ThresholdAlgorithm.max_rounds`.
_MAX_ROUNDS = 10_000

#: The ``(pop, model, bins)`` generator triple of one run.
RunStreams = Tuple[np.random.Generator, np.random.Generator, np.random.Generator]

#: Pure bin-count schedule: round index -> requested bin count.
Schedule = Callable[[int], int]


class UnsupportedBatch(Exception):
    """The kernel cannot reproduce this cell bit-exactly; use the scalar path."""


@dataclass(frozen=True)
class QueryBatch:
    """One (label, x)-cell of Monte-Carlo trials, ready for the kernel.

    Attributes:
        n: Population size.
        x: True positive count of every trial's population.
        threshold: The queried threshold ``t``.
        run_lo: First run index (inclusive).
        run_hi: Last run index (exclusive).
        model: Declarative model configuration (the picklable spec the
            sweep engine already ships to workers).
        streams: Callable mapping an absolute run index to that run's
            ``(pop, model, bins)`` generators.  The kernel consumes these
            exactly as the scalar path would.
        seed_info: Optional ``(root_seed, cell)`` pair declaring that run
            ``r``'s streams are the registry streams of
            ``RngRegistry(root_seed).fork(f"{cell}/r{r}")``.  When
            present (and :func:`repro.sim.fastseed.available`), the
            kernel reconstructs the generator states in bulk instead of
            calling ``streams`` -- same streams, a fraction of the
            construction cost.
    """

    n: int
    x: int
    threshold: int
    run_lo: int
    run_hi: int
    model: ModelSpec
    streams: Callable[[int], RunStreams]
    seed_info: Optional[Tuple[int, str]] = field(default=None)

    @property
    def runs(self) -> int:
        """Number of trials in the cell."""
        return self.run_hi - self.run_lo

    @classmethod
    def for_cell(
        cls,
        *,
        seed: int,
        label: str,
        x: int,
        n: int,
        threshold: int,
        run_lo: int,
        run_hi: int,
        model: ModelSpec,
    ) -> "QueryBatch":
        """A batch over the sweep engine's per-run registry streams.

        Run ``r`` gets the generators
        ``RngRegistry(seed).fork(f"{label}/x{x}/r{r}")`` derives for the
        names ``"pop"``/``"model"``/``"bins"`` -- the exact streams
        :func:`repro.experiments.common._run_sweep_cell` hands the scalar
        path.
        """
        root = RngRegistry(seed)

        def streams(run: int) -> RunStreams:
            reg = root.fork(f"{label}/x{x}/r{run}")
            return reg.stream("pop"), reg.stream("model"), reg.stream("bins")

        return cls(
            n=n,
            x=x,
            threshold=threshold,
            run_lo=run_lo,
            run_hi=run_hi,
            model=model,
            streams=streams,
            seed_info=(seed, f"{label}/x{x}"),
        )

    @classmethod
    def spawned(
        cls,
        *,
        seed: int,
        n: int,
        x: int,
        threshold: int,
        runs: int,
        model: ModelSpec,
    ) -> "QueryBatch":
        """A batch over ``Generator.spawn``-derived per-run streams.

        ``default_rng(seed)`` is spawned into ``runs`` independent
        children and each child into the run's ``(pop, model, bins)``
        triple -- the stream layout of :func:`repro.api.threshold_query_batch`.
        All children are derived eagerly so the per-run callable is pure.
        """
        children = np.random.default_rng(seed).spawn(runs)
        triples = [tuple(child.spawn(3)) for child in children]

        def streams(run: int) -> RunStreams:
            pop, model_rng, bins = triples[run]
            return pop, model_rng, bins

        return cls(
            n=n,
            x=x,
            threshold=threshold,
            run_lo=0,
            run_hi=runs,
            model=model,
            streams=streams,
        )


@dataclass(frozen=True)
class BatchDecision:
    """What a batch decider returns for one cell.

    Attributes:
        decisions: Per-run verdicts (``bool``, length ``batch.runs``).
        queries: Per-run charged query counts (``int64``).
        exact: Whether the algorithm is exact (always-correct), i.e.
            whether decisions may be checked against ground truth.
    """

    decisions: np.ndarray
    queries: np.ndarray
    exact: bool


class _CellTally:
    """Accumulates the cell's model.* metrics for one exact absorb.

    Mirrors :meth:`repro.group_testing.model._BaseModel._record`: one
    ``model.queries`` increment, one ``model.bin_size`` observation and
    one verdict counter per query.  Integer bucket/count arithmetic keeps
    the merge with scalar shards exact.
    """

    __slots__ = (
        "queries", "silent", "activity", "capture",
        "buckets", "size_sum", "size_min", "size_max",
    )

    def __init__(self) -> None:
        self.queries = 0
        self.silent = 0
        self.activity = 0
        self.capture = 0
        self.buckets = np.zeros(len(_BIN_SIZE_EDGES) + 1, dtype=np.int64)
        self.size_sum = 0
        self.size_min: Optional[int] = None
        self.size_max: Optional[int] = None

    def record(self, sizes: np.ndarray, n_silent: int, n_capture: int) -> None:
        """Count ``len(sizes)`` queried bins with the given verdict split."""
        nq = int(sizes.size)
        if not nq:
            return
        self.queries += nq
        self.silent += n_silent
        self.capture += n_capture
        self.activity += nq - n_silent - n_capture
        idx = np.searchsorted(_BIN_SIZE_EDGES_ARR, sizes, side="left")
        self.buckets += np.bincount(idx, minlength=len(_BIN_SIZE_EDGES) + 1)
        self.size_sum += int(sizes.sum())
        lo, hi = int(sizes.min()), int(sizes.max())
        if self.size_min is None or lo < self.size_min:
            self.size_min = lo
        if self.size_max is None or hi > self.size_max:
            self.size_max = hi

    def record_batch(
        self,
        base: np.ndarray,
        n_small: np.ndarray,
        n_big: np.ndarray,
        n_silent: np.ndarray,
    ) -> None:
        """Count one balanced round per row: ``n_small`` queried bins of
        size ``base`` plus ``n_big`` of size ``base + 1`` (counting
        models: every non-silent response is an activity verdict)."""
        nq = int(n_small.sum() + n_big.sum())
        if not nq:
            return
        self.queries += nq
        sil = int(n_silent.sum())
        self.silent += sil
        self.activity += nq - sil
        idx_small = np.searchsorted(_BIN_SIZE_EDGES_ARR, base, side="left")
        idx_big = np.searchsorted(_BIN_SIZE_EDGES_ARR, base + 1, side="left")
        np.add.at(self.buckets, idx_small, n_small)
        np.add.at(self.buckets, idx_big, n_big)
        self.size_sum += int((base * n_small + (base + 1) * n_big).sum())
        small = n_small > 0
        big = n_big > 0
        lo_cands = []
        hi_cands = []
        if small.any():
            lo_cands.append(int(base[small].min()))
            hi_cands.append(int(base[small].max()))
        if big.any():
            lo_cands.append(int(base[big].min()) + 1)
            hi_cands.append(int(base[big].max()) + 1)
        if lo_cands:
            lo, hi = min(lo_cands), max(hi_cands)
            if self.size_min is None or lo < self.size_min:
                self.size_min = lo
            if self.size_max is None or hi > self.size_max:
                self.size_max = hi

    def flush(self) -> None:
        """Absorb the tally into the process registry (one exact merge)."""
        if not self.queries:
            return
        counters = {"model.queries": self.queries}
        if self.silent:
            counters["model.verdict.silent"] = self.silent
        if self.activity:
            counters["model.verdict.activity"] = self.activity
        if self.capture:
            counters["model.verdict.capture"] = self.capture
        hist = HistogramSnapshot(
            edges=_BIN_SIZE_EDGES,
            counts=tuple(int(c) for c in self.buckets),
            total=self.queries,
            sum=float(self.size_sum),
            min=float(self.size_min) if self.size_min is not None else None,
            max=float(self.size_max) if self.size_max is not None else None,
        )
        _OBS.absorb(
            MetricsSnapshot(counters=counters, histograms={"model.bin_size": hist})
        )


def _draw_positive_mask(
    n: int, x: int, pop_rng: np.random.Generator
) -> np.ndarray:
    """The population draw, exactly as :meth:`Population.from_count` makes it."""
    mask = np.zeros(n, dtype=bool)
    if x:
        mask[pop_rng.choice(n, size=x, replace=False)] = True
    return mask


#: Cached ASCII forms of run indices (shared by every cell's seed loop).
_RUN_DIGITS: List[bytes] = []


def _run_digits(lo: int, hi: int) -> List[bytes]:
    """``b"%d" % r`` for ``r`` in ``lo..hi``, from a growing cache."""
    while len(_RUN_DIGITS) < hi:
        _RUN_DIGITS.append(b"%d" % len(_RUN_DIGITS))
    return _RUN_DIGITS[lo:hi]


def _fast_states(
    batch: QueryBatch, names: Sequence[str], raw: Sequence[str] = ()
) -> Optional[Dict[str, Any]]:
    """Bulk-reconstructed PCG64 states for the named per-run streams.

    ``None`` when the batch carries no registry seed contract or this
    numpy defeats :mod:`repro.sim.fastseed`; callers then fall back to
    ``batch.streams``.  Otherwise ``out[name][i]`` is the ``(state,
    inc)`` of run ``run_lo + i``'s stream ``name`` -- exactly the
    generator ``RngRegistry(root).fork(f"{cell}/r{r}").stream(name)``
    would hold, reproduced via the same two SHA-256 derivations.
    Streams listed in ``raw`` come back as :func:`fastseed.pcg64_raw`
    half arrays instead, ready for the bulk output emulation.
    """
    if batch.seed_info is None or not fastseed.available():
        return None
    root, cell = batch.seed_info
    sha = hashlib.sha256
    from_bytes = int.from_bytes
    prefix = sha(f"{root}/fork/{cell}/r".encode("utf-8"))
    suffixes = [("/" + name).encode("utf-8") for name in names]
    seeds: List[List[int]] = [[] for _ in names]
    appends_suffixes = tuple(zip([s.append for s in seeds], suffixes))
    for rb in _run_digits(batch.run_lo, batch.run_hi):
        h = prefix.copy()
        h.update(rb)
        fork = b"%d" % (from_bytes(h.digest()[:8], "big") >> 1)
        for append, suffix in appends_suffixes:
            append(from_bytes(sha(fork + suffix).digest()[:8], "big") >> 1)
    return {
        name: (
            fastseed.pcg64_raw(s) if name in raw else fastseed.pcg64_states(s)
        )
        for name, s in zip(names, seeds)
    }


def _validate_lockstep(batch: QueryBatch, partition_strategy: str) -> int:
    """Common feasibility checks; returns the evidence resolution ``k``."""
    if partition_strategy != "random":
        raise UnsupportedBatch(
            f"partition strategy {partition_strategy!r} is not vectorized"
        )
    spec = batch.model
    if spec.detection_failure is not None:
        raise UnsupportedBatch("detection-failure hooks are not vectorized")
    if spec.kind == "1+":
        return 1
    if spec.kind == "k+":
        if spec.k < 1:
            raise ValueError(f"k must be >= 1, got {spec.k}")
        return spec.k
    if spec.kind == "2+":
        return 1  # capture path ignores k
    raise UnsupportedBatch(f"model kind {spec.kind!r} is not vectorized")


def run_lockstep(
    batch: QueryBatch,
    schedule: Schedule,
    *,
    partition_strategy: str = "random",
    algorithm: str = "vectorized",
) -> BatchDecision:
    """Execute a cell of round-structured exact trials.

    Args:
        batch: The cell description and per-run streams.
        schedule: Pure map from round index to requested bin count; only
            algorithms whose bin policy depends on nothing but the round
            index (2tBins, Exponential Increase) can be expressed this
            way -- adaptive policies stay on the scalar path.
        partition_strategy: Must be ``"random"`` (the only vectorized
            partitioner).
        algorithm: Name used in error messages.

    Returns:
        The per-run decisions and query counts (``exact=True``).

    Raises:
        UnsupportedBatch: If the model or partitioning cannot be
            reproduced bit-exactly.
        ValueError: If the threshold is negative (mirroring ``decide``).
    """
    k = _validate_lockstep(batch, partition_strategy)
    if batch.threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {batch.threshold}")
    spec = batch.model
    tally = _CellTally() if _OBS.enabled else None
    decisions = np.zeros(batch.runs, dtype=bool)
    queries = np.zeros(batch.runs, dtype=np.int64)
    if spec.kind == "2+":
        p_cap = (
            spec.capture_probability
            if spec.capture_probability is not None
            else default_capture_probability
        )
        states = _fast_states(batch, ("pop", "model", "bins"))
        if states is not None:
            _POOL.reserve(3)
        for i in range(batch.runs):
            if states is not None:
                pop_rng = _POOL.load(0, *states["pop"][i])
                model_rng = _POOL.load(1, *states["model"][i])
                bins_rng = _POOL.load(2, *states["bins"][i])
            else:
                pop_rng, model_rng, bins_rng = batch.streams(batch.run_lo + i)
            mask = _draw_positive_mask(batch.n, batch.x, pop_rng)
            decisions[i], queries[i] = _run_one_capture(
                batch.n, batch.threshold, mask, model_rng, bins_rng,
                schedule, p_cap, spec.max_queries, algorithm, tally,
            )
    else:
        _run_counting_batch(
            batch, schedule, k, spec.max_queries, algorithm, tally,
            decisions, queries,
        )
    if tally is not None:
        tally.flush()
    return BatchDecision(decisions=decisions, queries=queries, exact=True)


def _round_layout(
    cand: np.ndarray,
    bins_requested: int,
    bins_rng: np.random.Generator,
    mask: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """One round's partition: the single ``permutation`` draw plus layout.

    Returns ``(perm, starts, sizes, counts, hits)`` where bin ``b`` holds
    the permuted candidates ``perm[starts[b]:starts[b+1]]`` (positions
    into ``cand``), ``counts[b]`` its positive count, and ``hits`` the
    positivity of each permuted slot.  Matches
    :func:`repro.group_testing.binning.partition_random`: balanced
    contiguous chunks of one uniformly random permutation, zero-member
    bins never materialised.
    """
    m = cand.size
    perm = bins_rng.permutation(m)
    effective = min(bins_requested, m)
    base, extra = divmod(m, effective)
    idx = np.arange(effective + 1, dtype=np.int64)
    starts = idx * base + np.minimum(idx, extra)
    sizes = np.diff(starts)
    hits = mask[cand[perm]]
    hit_cum = np.concatenate(([0], np.cumsum(hits, dtype=np.int64)))
    counts = hit_cum[starts[1:]] - hit_cum[starts[:-1]]
    return perm, starts, sizes, counts, hits


def _run_counting_batch(
    batch: QueryBatch,
    schedule: Schedule,
    k: int,
    max_queries: Optional[int],
    algorithm: str,
    tally: Optional[_CellTally],
    decisions: np.ndarray,
    queries: np.ndarray,
) -> None:
    """All 1+/k+ trials of a cell, processed round-major.

    Every run's per-round *draws* stay sequential on its own bins stream
    (run ``r`` consumes exactly what the scalar path would), but all
    *computation* -- layout, counts, termination, elimination -- runs
    once per round over the whole active cohort as 2-D array reductions.
    Runs sit in the rows of a hit-flag matrix padded to the widest
    surviving candidate list; a run's decision depends only on its
    candidate count and hit pattern, so candidate identities are never
    materialised.

    Without captures a round's query-by-query state is a pair of prefix
    sums (cumulative evidence, cumulative eliminations), so both
    termination conditions reduce to per-row first-index searches.
    """
    n, threshold = batch.n, batch.threshold
    runs = batch.runs
    states = _fast_states(
        batch, ("pop", "bins") if batch.x else ("bins",), raw=("pop",)
    )
    # Positive masks double as round-0 hit flags: the candidate list
    # starts as 0..n-1 in order, so flags are indexed by candidate id.
    # The extra always-False sentinel column lets padded permutation
    # slots gather False without any validity masking.
    hit = np.zeros((runs, n + 1), dtype=bool)
    bins_gens: List[np.random.Generator]
    if states is not None:
        _POOL.reserve(1 + runs)
        load = _POOL.load
        if batch.x:
            # The pop stream is consumed by this one draw and nothing
            # else, so result-equality suffices: emulate all the choice
            # calls in lockstep and scatter into the flat hit matrix.
            # Bulk cost grows with the pull count (~2x) while the
            # per-run loop's is nearly flat, so large draws (x beyond
            # ~n/2) stay on the per-run path.
            idx = (
                fastseed.choice_bulk(states["pop"], n, batch.x)
                if 2 * batch.x <= n + 16 and fastseed.choice_available()
                else None
            )
            if idx is not None:
                hit.ravel()[
                    idx + (np.arange(runs, dtype=np.int64) * (n + 1))[:, None]
                ] = True
            else:
                for i, (st, inc) in enumerate(
                    fastseed.pairs_from_raw(states["pop"])
                ):
                    hit[
                        i, load(0, st, inc).choice(n, size=batch.x, replace=False)
                    ] = True
        bins_gens = [
            load(1 + i, st, inc) for i, (st, inc) in enumerate(states["bins"])
        ]
    else:
        bins_gens = []
        for i in range(runs):
            pop_rng, _model_rng, bins_rng = batch.streams(batch.run_lo + i)
            if batch.x:
                hit[i, pop_rng.choice(n, size=batch.x, replace=False)] = True
            bins_gens.append(bins_rng)
    if threshold == 0:
        decisions[:] = True
        return
    if n < threshold:
        return
    active = np.arange(runs, dtype=np.int64)
    m = np.full(runs, n, dtype=np.int64)
    totals = np.zeros(runs, dtype=np.int64)
    for round_index in range(_MAX_ROUNDS):
        if not active.size:
            return
        bins_requested = schedule(round_index)
        if bins_requested < 1:
            raise RuntimeError(f"{algorithm}: bin policy returned {bins_requested}")
        rows = active.size
        width = int(m.max())
        eff = np.minimum(bins_requested, m)
        n_bins = int(eff.max())
        # Flat row offsets: 2-D gathers/scatters below run as 1-D
        # ``take``/fancy assignment on raveled arrays, which skips the
        # python-level index plumbing of ``take_along_axis``.  ``hit``
        # rows are ``width + 1`` wide (sentinel column at ``width``).
        row_i = np.arange(rows, dtype=np.int64)
        off_w1 = (row_i * (width + 1))[:, None]
        off_b = row_i * n_bins
        # The only per-run work: each run's single permutation draw,
        # done as an in-place shuffle of a prefilled 0..m-1 row (same
        # stream consumption as ``permutation``, no per-run arange
        # allocation).  Padded slots point at the sentinel column.
        perm = np.broadcast_to(
            np.arange(width, dtype=np.int64), (rows, width)
        ).copy()
        if width > 1:
            perm[np.arange(width, dtype=np.int64) >= m[:, None]] = width
            act = active.tolist()
            for j, mj in enumerate(m.tolist()):
                bins_gens[act[j]].shuffle(perm[j, :mj])
        # Balanced layout per row: the first ``extra`` bins get
        # ``base + 1`` members, the rest ``base`` (partition_random).
        # ``starts_ext[:, b]``/``starts_ext[:, b + 1]`` bound bin ``b``;
        # clipping at ``m`` collapses the bins a short row doesn't have.
        base = m // eff
        extra = m - base * eff
        ibin_ext = np.arange(n_bins + 1, dtype=np.int64)
        bin_valid = ibin_ext[:n_bins] < eff[:, None]
        starts_ext = np.minimum(
            ibin_ext * base[:, None] + np.minimum(ibin_ext, extra[:, None]),
            m[:, None],
        )
        sizes = starts_ext[:, 1:] - starts_ext[:, :-1]
        hits_slot = hit.ravel().take(perm + off_w1)
        cum = np.zeros((rows, width + 1), dtype=np.int64)
        np.cumsum(hits_slot, axis=1, out=cum[:, 1:])
        cum_at = cum.ravel().take(starts_ext + off_w1)
        counts = cum_at[:, 1:] - cum_at[:, :-1]
        silent = bin_valid & (counts == 0)
        # Evidence after bin b (min_positives = min(count, k), silent
        # adds 0) and surviving candidates after bin b (silent bins
        # eliminate); both prefixes are monotone, so the value at the
        # last real bin says whether each condition fires at all and
        # argmax finds the first firing bin.
        ev_cum = np.cumsum(np.minimum(counts, k), axis=1)
        elim_cum = np.cumsum(sizes * silent, axis=1)
        fire_true = bin_valid & (ev_cum >= threshold)
        fire_false = bin_valid & ((m[:, None] - elim_cum) < threshold)
        idx_last = (eff - 1) + off_b
        i_true = np.where(
            ev_cum.ravel().take(idx_last) >= threshold,
            np.argmax(fire_true, axis=1),
            eff,
        )
        i_false = np.where(
            (m - elim_cum.ravel().take(idx_last)) < threshold,
            np.argmax(fire_false, axis=1),
            eff,
        )
        stop = np.minimum(i_true, i_false)
        resolved = stop < eff
        queried = np.where(resolved, stop + 1, eff)
        totals += queried
        if max_queries is not None and int(totals.max()) > max_queries:
            raise QueryBudgetExceeded(f"query budget of {max_queries} exceeded")
        if tally is not None:
            n_big = np.minimum(queried, extra)
            sil_q = np.cumsum(silent, axis=1).ravel().take(queried - 1 + off_b)
            tally.record_batch(base, queried - n_big, n_big, sil_q)
        if resolved.any():
            done = active[resolved]
            # The True check runs first in the scalar executor, so it
            # wins when both fire on the same query.
            decisions[done] = (i_true <= i_false)[resolved]
            queries[done] = totals[resolved]
        live = ~resolved
        if not live.any():
            return
        # Full round, unresolved: silent bins eliminate their members.
        # Resolved rows drop out *before* the elimination arrays are
        # built -- the cohort shrinks fast, so every op below runs over
        # survivors only.  Map each slot to its bin, mark slots of
        # silent bins, scatter the keep flags back to candidate order
        # (padded slots land in the sentinel/scratch column), then
        # compact rows left.
        if not live.all():
            active = active[live]
            totals = totals[live]
            perm = perm[live]
            silent = silent[live]
            starts_ext = starts_ext[live]
            hit = hit[live]
            rows = active.size
            row_i = np.arange(rows, dtype=np.int64)
            off_w1 = (row_i * (width + 1))[:, None]
            off_b = row_i * n_bins
        # Slot -> bin without per-slot division: scatter a marker at
        # each bin's start and prefix-sum.  Bins below a row's ``eff``
        # are non-empty (``base >= 1``) so markers below ``m`` never
        # collide; clipped starts of absent bins collide at ``m``, and
        # slots there map through the sentinel column anyway.
        bound = np.zeros((rows, width + 1), dtype=np.int16)
        bound.ravel()[starts_ext[:, 1:n_bins] + off_w1] = 1
        bin_of = np.cumsum(bound[:, :width], axis=1)
        slot_keep = ~silent.ravel().take(bin_of + off_b[:, None])
        keep_flat = np.zeros(rows * (width + 1), dtype=bool)
        keep_flat[(perm + off_w1).ravel()] = slot_keep.ravel()
        keep2d = keep_flat.reshape(rows, width + 1)
        keep2d[:, width] = False
        kept_flags = hit[keep2d]
        m = keep2d.sum(axis=1)
        width_next = int(m.max())
        offsets = np.concatenate(([0], np.cumsum(m)[:-1]))
        flat = np.zeros(rows * (width_next + 1), dtype=bool)
        flat[
            np.arange(kept_flags.size)
            + np.repeat(row_i * (width_next + 1) - offsets, m)
        ] = kept_flags
        hit = flat.reshape(rows, width_next + 1)
    raise RuntimeError(
        f"{algorithm}: round safety valve ({_MAX_ROUNDS}) tripped"
    )


def _run_one_capture(
    n: int,
    threshold: int,
    mask: np.ndarray,
    model_rng: np.random.Generator,
    bins_rng: np.random.Generator,
    schedule: Schedule,
    p_cap: Callable[[int], float],
    max_queries: Optional[int],
    algorithm: str,
    tally: Optional[_CellTally],
) -> Tuple[bool, int]:
    """One 2+ trial: vectorized counts, in-order capture draws.

    The capture draws are sequential by contract (bin order on the model
    stream), so the per-bin loop survives -- but it runs over precomputed
    count/positive-position arrays instead of set operations and model
    dispatch, and silent/lone-positive bins consume no randomness.
    """
    if threshold == 0:
        return True, 0
    if n < threshold:
        return False, 0
    cand = np.arange(n, dtype=np.int64)
    confirmed = 0
    total = 0
    for round_index in range(_MAX_ROUNDS):
        bins_requested = schedule(round_index)
        if bins_requested < 1:
            raise RuntimeError(f"{algorithm}: bin policy returned {bins_requested}")
        m = cand.size
        perm, starts, sizes, counts, hits = _round_layout(
            cand, bins_requested, bins_rng, mask
        )
        effective = sizes.size
        # Positions (into the permuted layout) of positive slots; bin b's
        # positives, in membership order, are pos_at[pos_cum[b]:pos_cum[b+1]].
        pos_at = np.flatnonzero(hits)
        pos_cum = np.concatenate(([0], np.cumsum(counts)))
        keep = np.ones(m, dtype=bool)
        alive = m
        evidence = 0
        decision: Optional[bool] = None
        queried = 0
        n_silent = 0
        n_capture = 0
        for b in range(effective):
            total += 1
            queried += 1
            if max_queries is not None and total > max_queries:
                raise QueryBudgetExceeded(
                    f"query budget of {max_queries} exceeded"
                )
            c = int(counts[b])
            if c == 0:
                n_silent += 1
                alive -= int(sizes[b])
                keep[perm[starts[b]:starts[b + 1]]] = False
            elif c == 1:
                # A lone reply is always captured; no draw.
                n_capture += 1
                confirmed += 1
                alive -= 1
                keep[perm[pos_at[pos_cum[b]]]] = False
            else:
                prob = p_cap(c)
                if not 0.0 <= prob <= 1.0:
                    raise ValueError(
                        f"capture probability out of range: {prob}"
                    )
                if model_rng.random() < prob:
                    winner = int(model_rng.integers(c))
                    n_capture += 1
                    confirmed += 1
                    alive -= 1
                    keep[perm[pos_at[pos_cum[b] + winner]]] = False
                else:
                    evidence += 2
            if confirmed + evidence >= threshold:
                decision = True
                break
            if confirmed + alive < threshold:
                decision = False
                break
        if tally is not None:
            tally.record(sizes[:queried], n_silent, n_capture)
        if decision is not None:
            return decision, total
        cand = cand[keep]
    raise RuntimeError(
        f"{algorithm}: round safety valve ({_MAX_ROUNDS}) tripped"
    )


def run_probes(
    batch: QueryBatch,
    *,
    repeats: int,
    inclusion: float,
    midpoint: float,
) -> BatchDecision:
    """Execute a cell of non-adaptive probabilistic trials (Sec VI).

    Each run draws its population, then one ``(repeats, n)`` inclusion
    matrix on the bins stream -- bit-identical to
    :func:`repro.group_testing.binning.sample_bins` -- and decides by
    comparing the non-empty probe count against ``midpoint``.  The model
    stream is untouched (1+/k+ probes draw no model randomness), exactly
    as in the scalar path.

    Raises:
        UnsupportedBatch: For capture-model (2+) probes or
            detection-failure hooks, which draw on the model stream.
    """
    spec = batch.model
    if spec.detection_failure is not None:
        raise UnsupportedBatch("detection-failure hooks are not vectorized")
    if spec.kind not in ("1+", "k+"):
        raise UnsupportedBatch(
            f"model kind {spec.kind!r} draws capture randomness per probe"
        )
    if spec.kind == "k+" and spec.k < 1:
        raise ValueError(f"k must be >= 1, got {spec.k}")
    if batch.threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {batch.threshold}")
    if not 0.0 <= inclusion <= 1.0:
        raise ValueError(
            f"inclusion probability must be in [0,1], got {inclusion}"
        )
    if spec.max_queries is not None and repeats > spec.max_queries:
        raise QueryBudgetExceeded(
            f"query budget of {spec.max_queries} exceeded"
        )
    tally = _CellTally() if _OBS.enabled else None
    decisions = np.zeros(batch.runs, dtype=bool)
    queries = np.full(batch.runs, repeats, dtype=np.int64)
    states = _fast_states(batch, ("pop", "bins"))
    if states is not None:
        _POOL.reserve(2)
    for i in range(batch.runs):
        if states is not None:
            pop_rng = _POOL.load(0, *states["pop"][i])
            bins_rng = _POOL.load(1, *states["bins"][i])
        else:
            pop_rng, _model_rng, bins_rng = batch.streams(batch.run_lo + i)
        mask = _draw_positive_mask(batch.n, batch.x, pop_rng)
        if batch.n == 0 or inclusion == 0.0:
            # sample_bins short-circuits without a draw: all probes empty.
            sizes = np.zeros(repeats, dtype=np.int64)
            nonempty = 0
        else:
            draws = bins_rng.random((repeats, batch.n)) < inclusion
            sizes = draws.sum(axis=1)
            nonempty = int((draws[:, mask].sum(axis=1) > 0).sum())
        decisions[i] = nonempty > midpoint
        if tally is not None:
            tally.record(sizes, repeats - nonempty, 0)
    if tally is not None:
        tally.flush()
    return BatchDecision(decisions=decisions, queries=queries, exact=False)
