"""High-level convenience API.

For exploratory use the full machinery (population, model, algorithm,
separate RNG streams) is overkill; :func:`threshold_query` wires it all
from a few scalars, and :func:`make_algorithm` gives name-based,
keyword-configured access to the whole algorithm family (the examples,
figure runners and benchmark harness go through it too).

The registry (:data:`REGISTRY`) maps canonical names to
:class:`AlgorithmSpec` entries whose factories take **keyword**
configuration -- ``make_algorithm("abns", p0_multiple=2.0)`` -- instead
of the positional ``lambda x:`` table of earlier versions.  Any exact
algorithm can be wrapped in the reliability layer in the same call:
``make_algorithm("2tbins", reliable="chernoff")``.  For sweeps that ship
work to worker processes, :func:`algorithm_factory` returns a picklable
:class:`RegistryFactory` equivalent to the closures the runners used to
build inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Mapping,
    NoReturn,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro.analytic.bimodal import BimodalSpec
from repro.core.abns import Abns, ProbabilisticAbns
from repro.core.base import BatchThresholdDecider, ThresholdDecider
from repro.core.counting import AdaptiveSplittingCounter
from repro.core.exponential import ExponentialIncrease
from repro.core.interval import IntervalQuery
from repro.core.oracle import OracleBins
from repro.core.probabilistic import ProbabilisticThreshold
from repro.core.reliable import (
    ChernoffConfirm,
    KRepeatConfirm,
    ReliableThreshold,
    RetryPolicy,
)
from repro.core.result import ThresholdResult
from repro.core.two_t_bins import TwoTBins
from repro.core.variations import FourFoldIncrease, PauseAndContinue
from repro.faults.plan import FaultPlan
from repro.group_testing.model import (
    ModelSpec,
    OnePlusModel,
    QueryModel,
    TwoPlusModel,
)
from repro.group_testing.population import Population
from repro.group_testing.vectorized import (
    BatchDecision,
    QueryBatch,
    UnsupportedBatch,
)

#: Defaults for the ``reliable=`` string shortcuts; pass a configured
#: policy via ``retry_policy=`` when these do not fit.
_DEFAULT_P_SINGLE = 0.05
_DEFAULT_DELTA = 0.01

#: Prefix resolving ``"reliable-<base>"`` names to a wrapped base.
_RELIABLE_PREFIX = "reliable-"


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registry entry: a keyword-configured algorithm factory.

    Attributes:
        key: Canonical registry name.
        build: Factory taking keyword configuration only (plus ``x=`` for
            oracle-style entries).
        summary: One-line description for listings.
        needs_x: Whether the factory requires the true positive count
            ``x`` (the oracle baseline only).
        decider: Whether instances satisfy
            :class:`~repro.core.base.ThresholdDecider` (the counting and
            interval helpers do not; they expose ``count``/interval
            ``decide`` interfaces instead and cannot be made reliable or
            used by :func:`threshold_query`).
        vectorized: Whether instances satisfy
            :class:`~repro.core.base.BatchThresholdDecider`, i.e. can
            execute whole Monte-Carlo cells on the vectorized kernel
            (:mod:`repro.group_testing.vectorized`).  The sweep engine
            consults this capability when dispatching cells; the
            unwrapped reliability layer and adaptive bin policies stay
            scalar.
    """

    key: str
    build: Callable[..., object]
    summary: str
    needs_x: bool = False
    decider: bool = True
    vectorized: bool = False


def _build_abns(**config: Any) -> Abns:
    """ABNS requires exactly one of ``p0``/``p0_multiple``; default to
    the paper's ``p0 = t`` when the caller pins neither."""
    if "p0" not in config and "p0_multiple" not in config:
        config["p0_multiple"] = 1.0
    return Abns(**config)


def _build_oracle(*, x: int, **config: Any) -> OracleBins:
    return OracleBins(x, **config)


def _build_prob_threshold(**config: Any) -> ProbabilisticThreshold:
    """Default the bimodal spec to the Fig 9/10 family when not given."""
    spec = config.pop("spec", None)
    if spec is None:
        spec = BimodalSpec.symmetric(n=128, d=16.0, sigma=8.0)
    return ProbabilisticThreshold(spec, **config)


#: Canonical algorithm registry.  Every factory takes keyword
#: configuration; see each class's constructor for the accepted keys.
REGISTRY: Dict[str, AlgorithmSpec] = {
    spec.key: spec
    for spec in (
        AlgorithmSpec(
            key="2tbins",
            build=TwoTBins,
            summary="Algorithm 1: fixed 2t bins per round",
            vectorized=True,
        ),
        AlgorithmSpec(
            key="exponential",
            build=ExponentialIncrease,
            summary="Algorithm 2: exponential bin-count increase",
            vectorized=True,
        ),
        AlgorithmSpec(
            key="abns",
            build=_build_abns,
            summary="Algorithm 3: adaptive bin number selection "
            "(p0/p0_multiple/policy/stagnation_limit)",
        ),
        AlgorithmSpec(
            key="prob-abns",
            build=ProbabilisticAbns,
            summary="Sec V-D: sampled probe chooses ABNS's p0",
        ),
        AlgorithmSpec(
            key="pause-and-continue",
            build=PauseAndContinue,
            summary="excluded variation: pause-and-continue",
        ),
        AlgorithmSpec(
            key="four-fold",
            build=FourFoldIncrease,
            summary="excluded variation: four-fold increase",
        ),
        AlgorithmSpec(
            key="oracle",
            build=_build_oracle,
            summary="Sec V-C lower-bound baseline (needs the true x)",
            needs_x=True,
        ),
        AlgorithmSpec(
            key="prob-threshold",
            build=_build_prob_threshold,
            summary="Sec VI: O(1) bimodal probabilistic scheme "
            "(spec/delta/repeats)",
            vectorized=True,
        ),
        AlgorithmSpec(
            key="counting",
            build=AdaptiveSplittingCounter,
            summary="exact positive-count helper (count(), not decide())",
            decider=False,
        ),
        AlgorithmSpec(
            key="interval",
            build=IntervalQuery,
            summary="interval query helper (decide(model, lo, hi, rng))",
            decider=False,
        ),
    )
}

#: Removed spellings (deprecated in the PR-2 registry redesign, deleted
#: here): old name -> the replacement call to name in the error.
_REMOVED_ALIASES: Dict[str, str] = {
    "abns-t": "make_algorithm('abns', p0_multiple=1.0)",
    "abns-2t": "make_algorithm('abns', p0_multiple=2.0)",
}


def _resolve(name: str) -> Tuple[AlgorithmSpec, Dict[str, Any], bool]:
    """Resolve a user-facing name to ``(spec, implied_config, wrapped)``.

    Handles case folding and the ``reliable-`` prefix.  The pre-redesign
    ``abns-t``/``abns-2t`` aliases are gone; naming one raises a
    :class:`KeyError` that spells out the replacement.
    """
    key = name.lower()
    wrapped = key.startswith(_RELIABLE_PREFIX)
    if wrapped:
        key = key[len(_RELIABLE_PREFIX) :]
    if key in _REMOVED_ALIASES:
        raise KeyError(
            f"algorithm name {key!r} was removed; use "
            f"{_REMOVED_ALIASES[key]} instead"
        )
    if key not in REGISTRY:
        raise KeyError(
            f"unknown algorithm {name!r}; valid: {sorted(REGISTRY)} "
            f"(optionally prefixed with {_RELIABLE_PREFIX!r})"
        )
    return REGISTRY[key], {}, wrapped


def _resolve_policy(
    reliable: Union[None, str, RetryPolicy],
    retry_policy: Optional[RetryPolicy],
) -> Optional[RetryPolicy]:
    """Turn the ``reliable=``/``retry_policy=`` pair into one policy."""
    if reliable is not None and retry_policy is not None:
        raise ValueError("pass either reliable= or retry_policy=, not both")
    if retry_policy is not None:
        return retry_policy
    if reliable is None:
        return None
    if isinstance(reliable, RetryPolicy):
        return reliable
    shortcut = str(reliable).lower()
    if shortcut == "krepeat":
        return KRepeatConfirm()
    if shortcut == "chernoff":
        return ChernoffConfirm(_DEFAULT_P_SINGLE, delta=_DEFAULT_DELTA)
    raise ValueError(
        f"unknown reliable= shortcut {reliable!r}; valid: 'krepeat', "
        "'chernoff', or any RetryPolicy instance"
    )


def make_algorithm(
    name: str,
    *,
    x: Optional[int] = None,
    reliable: Union[None, str, RetryPolicy] = None,
    retry_policy: Optional[RetryPolicy] = None,
    **config: Any,
):
    """Instantiate an algorithm by name with keyword configuration.

    Args:
        name: A :data:`REGISTRY` key (case-insensitive), a deprecated
            alias, or ``"reliable-<key>"`` for a wrapped variant with the
            default confirmation policy.
        x: True positive count, required by ``"oracle"`` only (ignored
            elsewhere, so sweep loops can pass it unconditionally).
        reliable: Wrap the algorithm in
            :class:`~repro.core.reliable.ReliableThreshold`: the string
            shortcuts ``"krepeat"`` / ``"chernoff"`` use library
            defaults; a :class:`~repro.core.reliable.RetryPolicy`
            instance is used as-is.
        retry_policy: Explicit confirmation policy (mutually exclusive
            with ``reliable``).
        **config: Forwarded to the algorithm's constructor, e.g.
            ``p0_multiple=2.0`` for ABNS or ``repeats=12`` for the
            probabilistic scheme.

    Raises:
        KeyError: For unknown names (message lists the valid ones).
        ValueError: If ``"oracle"`` is requested without ``x``, both
            ``reliable`` and ``retry_policy`` are given, or a
            non-decider helper (``"counting"``/``"interval"``) is asked
            to be reliable.

    Example:
        >>> make_algorithm("2tbins", reliable="chernoff").name
        'reliable(2tBins)'
    """
    spec, implied, wrapped = _resolve(name)
    implied.update(config)
    if spec.needs_x:
        if x is None:
            raise ValueError("the oracle needs the true positive count x")
        implied["x"] = x
    algo = spec.build(**implied)
    if wrapped and reliable is None and retry_policy is None:
        reliable = "krepeat"
    policy = _resolve_policy(reliable, retry_policy)
    if policy is None:
        return algo
    if not spec.decider:
        raise ValueError(
            f"{spec.key!r} is not a threshold decider and cannot be "
            "wrapped in the reliability layer"
        )
    return ReliableThreshold(algo, policy)


@dataclass(frozen=True)
class RegistryFactory:
    """A picklable ``x -> algorithm`` factory over :data:`REGISTRY`.

    Sweep seams (:class:`repro.experiments.common.SweepEngine`) call
    their algorithm factory once per cell with the cell's true positive
    count; this dataclass carries the registry name plus keyword
    configuration declaratively so the call can be shipped to a worker
    process (closures cannot).  Build via :func:`algorithm_factory`.
    """

    name: str
    x: Optional[int] = None
    reliable: Union[None, str, RetryPolicy] = None
    retry_policy: Optional[RetryPolicy] = None
    config: Mapping[str, Any] = field(default_factory=dict)

    def __call__(self, x: Optional[int] = None):
        """Build the algorithm; a cell-supplied ``x`` wins over the
        pinned one."""
        return make_algorithm(
            self.name,
            x=x if x is not None else self.x,
            reliable=self.reliable,
            retry_policy=self.retry_policy,
            **dict(self.config),
        )


def algorithm_factory(
    name: str,
    *,
    x: Optional[int] = None,
    reliable: Union[None, str, RetryPolicy] = None,
    retry_policy: Optional[RetryPolicy] = None,
    **config: Any,
) -> RegistryFactory:
    """A picklable factory equivalent to a ``make_algorithm`` closure.

    The name (and any alias/shortcut) is validated eagerly so a typo
    fails where the factory is defined, not inside a worker process.
    """
    _resolve(name)
    _resolve_policy(reliable, retry_policy)
    return RegistryFactory(
        name=name,
        x=x,
        reliable=reliable,
        retry_policy=retry_policy,
        config=dict(config),
    )


class _RemovedAlgorithmsTable(Mapping[str, Any]):
    """Tombstone for the pre-redesign positional ``ALGORITHMS`` table.

    The table was deprecated in the PR-2 registry redesign and is now
    removed.  The name stays importable so old code fails with an
    actionable error at the point of *use* rather than an opaque
    ``ImportError``: every mapping operation raises, naming the
    replacement (:func:`make_algorithm` / :func:`algorithm_factory` over
    :data:`REGISTRY`).
    """

    _MESSAGE = (
        "the positional ALGORITHMS table was removed; use "
        "make_algorithm(name, ...) for direct construction or "
        "algorithm_factory(name, ...) for a picklable x -> algorithm "
        "factory over repro.api.REGISTRY"
    )

    def _removed(self) -> NoReturn:
        raise RuntimeError(self._MESSAGE)

    def __getitem__(self, key: str) -> Any:
        self._removed()

    def __contains__(self, key: object) -> bool:
        self._removed()

    def __iter__(self) -> Iterator[str]:
        self._removed()

    def __len__(self) -> int:
        self._removed()

    def __bool__(self) -> bool:
        self._removed()


#: Removed positional registry.  Any access raises with a pointer to
#: :func:`make_algorithm` / :func:`algorithm_factory`.
ALGORITHMS: Mapping[str, Any] = _RemovedAlgorithmsTable()


def threshold_query(
    target: Union[Population, QueryModel],
    threshold: int,
    *,
    algorithm: str = "prob-abns",
    collision_model: str = "1+",
    seed: int = 0,
    x_hint: Optional[int] = None,
    reliable: Union[None, str, RetryPolicy] = None,
    retry_policy: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    algorithm_options: Optional[Mapping[str, Any]] = None,
) -> ThresholdResult:
    """Answer ``x >= threshold`` over a population or an existing model.

    Args:
        target: Either a :class:`Population` (a fresh query model is built
            over it) or a ready :class:`QueryModel`.
        threshold: The threshold ``t``.
        algorithm: Registry name (see :func:`make_algorithm`).
        collision_model: ``"1+"`` or ``"2+"`` -- only used when ``target``
            is a population.
        seed: Root seed for the model and bin randomness.
        x_hint: True positive count for the oracle algorithm (filled in
            automatically when ``target`` is a population).
        reliable: Wrap the session in the reliability layer; see
            :func:`make_algorithm`.
        retry_policy: Explicit confirmation policy (mutually exclusive
            with ``reliable``).
        fault_plan: A :class:`~repro.faults.plan.FaultPlan` to inject
            radio faults into the session.  When ``target`` is a
            population the plan's drop faults become the model's
            ``detection_failure`` hook and its observation-level faults
            wrap the model; when ``target`` is an existing model only
            the observation-level wrap applies (configure the model's
            own hook for drops).
        algorithm_options: Extra keyword configuration forwarded to the
            algorithm constructor (``make_algorithm``'s ``**config``).

    Returns:
        The session's :class:`ThresholdResult`.

    Raises:
        TypeError: If ``algorithm`` names a non-decider helper
            (``"counting"``/``"interval"``).

    Example:
        >>> pop = Population.from_count(64, 20)
        >>> threshold_query(pop, 8, algorithm="2tbins", seed=1).decision
        True
    """
    plan = fault_plan if fault_plan is not None else FaultPlan.none()
    spec, _, _ = _resolve(algorithm)
    if isinstance(target, Population):
        rng = np.random.default_rng(seed)
        hook = plan.detection_hook(None)
        if collision_model == "1+":
            model: QueryModel = OnePlusModel(target, rng, detection_failure=hook)
        elif collision_model == "2+":
            model = TwoPlusModel(target, rng, detection_failure=hook)
        else:
            raise ValueError(
                f"collision_model must be '1+' or '2+', got {collision_model!r}"
            )
        if x_hint is None and spec.needs_x:
            x_hint = target.x
    else:
        model = target
    model = plan.wrap_model(model)
    algo = make_algorithm(
        algorithm,
        x=x_hint,
        reliable=reliable,
        retry_policy=retry_policy,
        **dict(algorithm_options or {}),
    )
    if not isinstance(algo, ThresholdDecider):
        raise TypeError(
            f"algorithm {algorithm!r} is not a threshold decider; use its "
            "dedicated interface instead"
        )
    return algo.decide(model, threshold, np.random.default_rng(seed + 1))


def threshold_query_batch(
    population_size: int,
    x: int,
    threshold: int,
    *,
    runs: int,
    algorithm: str = "2tbins",
    collision_model: str = "1+",
    seed: int = 0,
    max_queries: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    algorithm_options: Optional[Mapping[str, Any]] = None,
) -> BatchDecision:
    """Answer ``x >= threshold`` over ``runs`` random populations at once.

    The batch-first counterpart of :func:`threshold_query`: one call runs
    a whole Monte-Carlo cell.  Per-run randomness comes from
    ``Generator.spawn``-derived streams -- ``default_rng(seed)`` spawns
    one child per run, and each child spawns the run's
    ``(population, model, bins)`` triple -- so run ``r`` is a
    deterministic function of ``(seed, r)`` regardless of batch size.

    When the algorithm is batch-capable
    (:class:`~repro.core.base.BatchThresholdDecider`; see the registry's
    ``vectorized`` flags) and no fault plan is active, the cell executes
    on the vectorized kernel; otherwise every run takes the scalar path
    over the *same* streams, so the two paths are interchangeable
    bit for bit.

    Args:
        population_size: Number of participant nodes ``n``.
        x: True positive count of every run's population.
        threshold: The threshold ``t``.
        runs: Number of Monte-Carlo trials.
        algorithm: Registry name (see :func:`make_algorithm`).
        collision_model: ``"1+"``, ``"2+"`` or ``"k+"``.
        seed: Root seed of the spawn tree.
        max_queries: Optional per-run query budget.
        fault_plan: Optional fault injection; an active plan is not
            vectorizable (:attr:`FaultPlan.vectorizable`) and forces the
            scalar path.
        algorithm_options: Extra keyword configuration for the algorithm.

    Returns:
        The per-run decisions and query counts as a
        :class:`~repro.group_testing.vectorized.BatchDecision`.

    Example:
        >>> out = threshold_query_batch(64, 20, 8, runs=16, seed=1)
        >>> bool(out.decisions.all())
        True
    """
    if runs < 0:
        raise ValueError(f"runs must be >= 0, got {runs}")
    plan = fault_plan if fault_plan is not None else FaultPlan.none()
    spec, _, _ = _resolve(algorithm)
    algo = make_algorithm(
        algorithm,
        x=x if spec.needs_x else None,
        **dict(algorithm_options or {}),
    )
    if not isinstance(algo, ThresholdDecider):
        raise TypeError(
            f"algorithm {algorithm!r} is not a threshold decider; use its "
            "dedicated interface instead"
        )
    hook = plan.detection_hook(None)
    model_spec = ModelSpec(
        kind=collision_model, max_queries=max_queries, detection_failure=hook
    )
    batch = QueryBatch.spawned(
        seed=seed,
        n=population_size,
        x=x,
        threshold=threshold,
        runs=runs,
        model=model_spec,
    )
    if plan.vectorizable and isinstance(algo, BatchThresholdDecider):
        try:
            return algo.decide_batch(batch)
        except UnsupportedBatch:
            pass
    decisions = np.zeros(runs, dtype=bool)
    queries = np.zeros(runs, dtype=np.int64)
    exact = True
    for run in range(runs):
        pop_rng, model_rng, bins_rng = batch.streams(run)
        population = Population.from_count(population_size, x, pop_rng)
        model = plan.wrap_model(model_spec(population, model_rng))
        result = algo.decide(model, threshold, bins_rng)
        decisions[run] = result.decision
        queries[run] = result.queries
        exact = result.exact
    return BatchDecision(decisions=decisions, queries=queries, exact=exact)
