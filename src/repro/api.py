"""High-level convenience API.

For exploratory use the full machinery (population, model, algorithm,
separate RNG streams) is overkill; :func:`threshold_query` wires it all
from a few scalars, and :func:`make_algorithm` gives name-based access to
the algorithm family (used by the examples and benchmark harness too).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.core.abns import Abns, ProbabilisticAbns
from repro.core.exponential import ExponentialIncrease
from repro.core.oracle import OracleBins
from repro.core.result import ThresholdResult
from repro.core.two_t_bins import TwoTBins
from repro.core.variations import FourFoldIncrease, PauseAndContinue
from repro.group_testing.model import OnePlusModel, QueryModel, TwoPlusModel
from repro.group_testing.population import Population

#: Algorithm registry: name -> factory taking the true ``x`` (used only
#: by the oracle; every other factory ignores it).
ALGORITHMS: Dict[str, Callable[[Optional[int]], object]] = {
    "2tbins": lambda x: TwoTBins(),
    "exponential": lambda x: ExponentialIncrease(),
    "abns-t": lambda x: Abns(p0_multiple=1.0),
    "abns-2t": lambda x: Abns(p0_multiple=2.0),
    "prob-abns": lambda x: ProbabilisticAbns(),
    "pause-and-continue": lambda x: PauseAndContinue(),
    "four-fold": lambda x: FourFoldIncrease(),
    "oracle": lambda x: OracleBins(x if x is not None else 0),
}


def make_algorithm(name: str, *, x: Optional[int] = None):
    """Instantiate an algorithm by name.

    Args:
        name: One of :data:`ALGORITHMS` (case-insensitive).
        x: True positive count, required by ``"oracle"`` only.

    Raises:
        KeyError: For unknown names (message lists the valid ones).
        ValueError: If ``"oracle"`` is requested without ``x``.
    """
    key = name.lower()
    if key not in ALGORITHMS:
        raise KeyError(
            f"unknown algorithm {name!r}; valid: {sorted(ALGORITHMS)}"
        )
    if key == "oracle" and x is None:
        raise ValueError("the oracle needs the true positive count x")
    return ALGORITHMS[key](x)


def threshold_query(
    target: Union[Population, QueryModel],
    threshold: int,
    *,
    algorithm: str = "prob-abns",
    collision_model: str = "1+",
    seed: int = 0,
    x_hint: Optional[int] = None,
) -> ThresholdResult:
    """Answer ``x >= threshold`` over a population or an existing model.

    Args:
        target: Either a :class:`Population` (a fresh query model is built
            over it) or a ready :class:`QueryModel`.
        threshold: The threshold ``t``.
        algorithm: Algorithm name from :data:`ALGORITHMS`.
        collision_model: ``"1+"`` or ``"2+"`` -- only used when ``target``
            is a population.
        seed: Root seed for the model and bin randomness.
        x_hint: True positive count for the oracle algorithm.

    Returns:
        The session's :class:`ThresholdResult`.

    Example:
        >>> pop = Population.from_count(64, 20)
        >>> threshold_query(pop, 8, algorithm="2tbins", seed=1).decision
        True
    """
    if isinstance(target, Population):
        rng = np.random.default_rng(seed)
        if collision_model == "1+":
            model: QueryModel = OnePlusModel(target, rng)
        elif collision_model == "2+":
            model = TwoPlusModel(target, rng)
        else:
            raise ValueError(
                f"collision_model must be '1+' or '2+', got {collision_model!r}"
            )
        if x_hint is None and algorithm.lower() == "oracle":
            x_hint = target.x
    else:
        model = target
    algo = make_algorithm(algorithm, x=x_hint)
    return algo.decide(  # type: ignore[attr-defined]
        model, threshold, np.random.default_rng(seed + 1)
    )
