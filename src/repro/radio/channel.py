"""The shared singlehop broadcast medium.

All radios are attached to one :class:`Channel` (the paper's single-hop
assumption).  A transmission occupies the medium for its frame's air time;
overlapping transmissions form a *busy period* (a maximal temporally
connected cluster) that is resolved when its last member ends:

* **Lone frame** -- every listening radio decodes it, except that a lone
  hardware ACK may be *missed* per the radio-irregularity model (the
  testbed's dominant error source).
* **Identical-ACK superposition** -- all cluster members are hardware ACKs
  for the same sequence number: they interfere non-destructively and the
  cluster is decoded as a single ACK with superposition count ``k``,
  missed with probability ``miss(k)`` (decaying in ``k``).
* **Collision** -- anything else: each listening radio independently runs
  the capture model and either decodes the captured frame or observes
  undecodable energy.

Every listening radio is also informed of the busy period itself
(``on_channel_busy``), which is what CCA-based RCD (pollcast) and the
2+ model's "activity but no message" observation are built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Protocol

import numpy as np

from repro.radio.capture import CaptureModel, ProbabilisticCaptureModel
from repro.radio.frames import AckFrame, DataFrame, FrameKind
from repro.radio.irregularity import HackMissModel, IdealRadioModel
from repro.radio.timing import DEFAULT_TIMING, PhyTiming
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.radio.cc2420 import Cc2420Radio


class ChannelListener(Protocol):
    """What the channel requires of an attached radio."""

    @property
    def address(self) -> int:
        """The radio's unique hardware identifier (mote id)."""
        ...

    def is_transmitting(self) -> bool:
        """Whether the radio is currently in TX (half-duplex: deaf)."""
        ...

    def on_frame(
        self, frame: DataFrame | AckFrame, *, superposition: int = 1
    ) -> None:
        """Deliver a successfully decoded frame."""
        ...

    def on_channel_busy(self, start: float, end: float) -> None:
        """Notify of a busy period the radio heard but did not decode into
        this callback (fired for every busy period, decoded or not)."""
        ...


@dataclass
class Transmission:
    """One frame on the air.

    Attributes:
        sender: Hardware id of the transmitting radio.
        frame: The frame being sent.
        start: Air-time start (us).
        end: Air-time end (us).
        power_dbm: Received-power proxy used by power-capture models.
    """

    sender: int
    frame: DataFrame | AckFrame
    start: float
    end: float
    power_dbm: float = 0.0
    _resolved: bool = field(default=False, repr=False)


class Channel:
    """The singlehop broadcast medium.

    Args:
        sim: The discrete-event simulator.
        rng: Randomness for capture and irregularity draws.
        timing: PHY timing (frame air times).
        capture_model: Collision resolution model (default ``1/k``
            probabilistic capture).
        hack_miss: Radio-irregularity model for (superposed) hardware
            ACKs (default ideal -- no misses).
        tracer: Optional structured tracer.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        *,
        timing: PhyTiming = DEFAULT_TIMING,
        capture_model: Optional[CaptureModel] = None,
        hack_miss: Optional[HackMissModel | IdealRadioModel] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._sim = sim
        self._rng = rng
        self._timing = timing
        self._capture = capture_model or ProbabilisticCaptureModel()
        self._hack_miss = hack_miss or IdealRadioModel()
        self._tracer = tracer if tracer is not None else Tracer(enabled=False, name="channel")
        self._radios: List[ChannelListener] = []
        self._active: List[Transmission] = []
        self._cluster: List[Transmission] = []
        self._history: List[tuple[float, float]] = []
        self._frames_sent = 0
        self._hack_deliveries = 0
        self._hack_misses = 0

    @property
    def timing(self) -> PhyTiming:
        """The channel's PHY timing."""
        return self._timing

    @property
    def frames_sent(self) -> int:
        """Total transmissions initiated on this channel."""
        return self._frames_sent

    @property
    def hack_deliveries(self) -> int:
        """(Superposed) HACK clusters successfully latched by a receiver
        -- ground-truth diagnostic for false-negative analysis."""
        return self._hack_deliveries

    @property
    def hack_misses(self) -> int:
        """(Superposed) HACK clusters a receiver failed to latch due to
        radio irregularity -- each one is a potential false negative."""
        return self._hack_misses

    def attach(self, radio: ChannelListener) -> None:
        """Register a radio as a member of the singlehop neighbourhood.

        Raises:
            ValueError: On duplicate hardware ids.
        """
        if any(r.address == radio.address for r in self._radios):
            raise ValueError(f"duplicate radio address {radio.address}")
        self._radios.append(radio)

    def transmit(
        self,
        sender: ChannelListener,
        frame: DataFrame | AckFrame,
        *,
        power_dbm: float = 0.0,
    ) -> Transmission:
        """Put a frame on the air starting now.

        The sender must already be attached.  Returns the transmission
        record; its end-of-air resolution is scheduled automatically.

        Raises:
            ValueError: If the sender is not attached.
        """
        if all(r is not sender for r in self._radios):
            raise ValueError(f"radio {sender.address} is not attached")
        duration = self._timing.frame_airtime_us(frame.mpdu_bytes)
        tx = Transmission(
            sender=sender.address,
            frame=frame,
            start=self._sim.now,
            end=self._sim.now + duration,
            power_dbm=power_dbm,
        )
        self._active.append(tx)
        self._frames_sent += 1
        self._tracer.emit(
            "radio.tx.start",
            f"mote{sender.address}",
            time=self._sim.now,
            kind=frame.kind.value,
            end=tx.end,
        )
        self._sim.schedule_at(tx.end, lambda: self._on_tx_end(tx), label="tx-end")
        return tx

    def cca_busy(self) -> bool:
        """Clear-channel assessment: is any transmission on the air now?"""
        now = self._sim.now
        return any(t.start <= now < t.end for t in self._active)

    def rssi_dbm(self) -> float:
        """Aggregate received power right now (-100 dBm noise floor)."""
        now = self._sim.now
        mw = sum(
            10.0 ** (t.power_dbm / 10.0)
            for t in self._active
            if t.start <= now < t.end
        )
        if mw <= 0:
            return -100.0
        return float(10.0 * np.log10(mw))

    def activity_in(self, t0: float, t1: float) -> bool:
        """Whether any transmission overlapped the window ``[t0, t1)``.

        Considers both completed and in-flight transmissions; used by
        window-based CCA sampling (pollcast's vote phase).
        """
        if t1 < t0:
            raise ValueError(f"empty window: [{t0}, {t1})")
        for s, e in self._history:
            if s < t1 and e > t0:
                return True
        return any(t.start < t1 and t.end > t0 for t in self._active)

    # ------------------------------------------------------------------
    # Busy-period resolution
    # ------------------------------------------------------------------

    def _on_tx_end(self, tx: Transmission) -> None:
        self._active.remove(tx)
        self._cluster.append(tx)
        self._history.append((tx.start, tx.end))
        if len(self._history) > 100_000:
            del self._history[:50_000]
        # The busy period extends while any active transmission overlaps
        # the cluster; with zero propagation delay "overlaps" reduces to
        # "is already on the air".
        if not self._active:
            cluster, self._cluster = self._cluster, []
            self._resolve_cluster(cluster)

    def _resolve_cluster(self, cluster: List[Transmission]) -> None:
        start = min(t.start for t in cluster)
        end = max(t.end for t in cluster)
        senders = {t.sender for t in cluster}
        receivers = [
            r
            for r in self._radios
            if r.address not in senders and not r.is_transmitting()
        ]
        for r in receivers:
            r.on_channel_busy(start, end)

        if len(cluster) == 1:
            self._deliver_single(cluster[0], receivers)
            return

        acks = [t for t in cluster if t.frame.kind is FrameKind.ACK]
        if len(acks) == len(cluster):
            first = acks[0].frame
            assert isinstance(first, AckFrame)
            if all(
                isinstance(t.frame, AckFrame) and first.superposes_with(t.frame)
                for t in cluster
            ):
                self._deliver_superposition(first, len(cluster), receivers)
                return

        # Heterogeneous collision: per-receiver capture.
        powers = [t.power_dbm for t in cluster]
        for r in receivers:
            winner = self._capture.select(powers, self._rng)
            if winner is not None:
                frame = cluster[winner].frame
                self._tracer.emit(
                    "radio.rx.capture",
                    f"mote{r.address}",
                    time=self._sim.now,
                    sender=cluster[winner].sender,
                )
                r.on_frame(frame, superposition=1)
            else:
                self._tracer.emit(
                    "radio.rx.collision",
                    f"mote{r.address}",
                    time=self._sim.now,
                    colliders=len(cluster),
                )

    def _deliver_single(
        self, tx: Transmission, receivers: List[ChannelListener]
    ) -> None:
        frame = tx.frame
        if isinstance(frame, AckFrame) and frame.hardware:
            # A lone HACK may still be missed by radio irregularity; one
            # draw decides the waveform's fate for this busy period.
            self._deliver_superposition(frame, 1, receivers)
            return
        for r in receivers:
            r.on_frame(frame, superposition=1)

    def _deliver_superposition(
        self, frame: AckFrame, k: int, receivers: List[ChannelListener]
    ) -> None:
        """Resolve a (possibly degenerate, ``k = 1``) HACK superposition.

        The irregularity draw happens once per busy period: either the
        waveform is latched by the listeners or it is not.  The counters
        therefore count *events*, which is what the Fig 4 false-negative
        analysis consumes.
        """
        miss = self._hack_miss.miss_probability(k)
        if miss and self._rng.random() < miss:
            self._hack_misses += 1
            self._tracer.emit(
                "radio.rx.hack_miss",
                "channel",
                time=self._sim.now,
                superposition=k,
            )
            return
        self._hack_deliveries += 1
        for r in receivers:
            self._tracer.emit(
                "radio.rx.superposition",
                f"mote{r.address}",
                time=self._sim.now,
                superposition=k,
            )
            r.on_frame(frame, superposition=k)
