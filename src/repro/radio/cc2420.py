"""A CC2420-like radio device.

Models the features the backcast/pollcast primitives rely on:

* a **programmable short address** with hardware address recognition --
  backcast's ephemeral identifiers are short addresses shared by a whole
  bin of receivers;
* **automatic hardware acknowledgements** (HACKs): a frame that passes CRC
  and address recognition, addressed to the radio's short address with the
  ACK-request flag set, triggers an ACK exactly one turnaround after the
  frame ends, with no software in the loop -- which is why simultaneous
  HACKs from different radios are symbol-aligned and superpose;
* **CCA / RSSI** sampling of the medium;
* half-duplex TX/RX with per-state energy accounting.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.radio.channel import Channel
from repro.radio.energy import EnergyLedger, EnergyProfile
from repro.radio.frames import AckFrame, BROADCAST_ADDR, DataFrame
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer


class RadioState(enum.Enum):
    """Radio power/activity state."""

    RX = "rx"
    TX = "tx"
    OFF = "sleep"


FrameCallback = Callable[[DataFrame, int], None]
AckCallback = Callable[[AckFrame, int], None]
BusyCallback = Callable[[float, float], None]


class Cc2420Radio:
    """One radio attached to the shared channel.

    Args:
        sim: The discrete-event simulator.
        channel: The singlehop medium; the radio attaches itself.
        address: Immutable hardware identifier (mote id); also the
            power-on short address.
        tx_power_dbm: Transmit power used as the received-power proxy in
            capture resolution.
        auto_ack: Whether hardware acknowledgement generation is enabled.
        energy_profile: Current-draw profile for the energy ledger.
        tracer: Optional structured tracer.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: Channel,
        address: int,
        *,
        tx_power_dbm: float = 0.0,
        auto_ack: bool = True,
        energy_profile: Optional[EnergyProfile] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not 0 <= address <= 0xFFFE:
            raise ValueError(f"address must be 0..0xFFFE, got {address}")
        self._sim = sim
        self._channel = channel
        self._address = address
        self._short_address = address
        self._tx_power_dbm = tx_power_dbm
        self._auto_ack = auto_ack
        self._state = RadioState.RX
        self._energy = EnergyLedger(energy_profile, initial_state="rx")
        self._tracer = tracer if tracer is not None else Tracer(enabled=False, name="cc2420")
        self.receive_callback: Optional[FrameCallback] = None
        self.ack_callback: Optional[AckCallback] = None
        self.busy_callback: Optional[BusyCallback] = None
        self._frames_received = 0
        self._acks_sent = 0
        channel.attach(self)

    # ------------------------------------------------------------------
    # Identity and configuration
    # ------------------------------------------------------------------

    @property
    def address(self) -> int:
        """Immutable hardware identifier."""
        return self._address

    @property
    def channel(self) -> Channel:
        """The medium this radio is attached to."""
        return self._channel

    @property
    def short_address(self) -> int:
        """Current programmable short address (address recognition)."""
        return self._short_address

    def set_short_address(self, value: int) -> None:
        """Program the short address (backcast's ephemeral identifier).

        Raises:
            ValueError: For non-16-bit or broadcast values.
        """
        if not 0 <= value <= 0xFFFE:
            raise ValueError(f"short address must be 0..0xFFFE, got {value}")
        self._short_address = value

    @property
    def auto_ack(self) -> bool:
        """Whether hardware ACK generation is enabled."""
        return self._auto_ack

    def set_auto_ack(self, enabled: bool) -> None:
        """Enable/disable hardware acknowledgement generation."""
        self._auto_ack = enabled

    @property
    def state(self) -> RadioState:
        """Current radio state."""
        return self._state

    @property
    def energy(self) -> EnergyLedger:
        """The radio's energy ledger."""
        return self._energy

    @property
    def frames_received(self) -> int:
        """Frames delivered to this radio (post address recognition)."""
        return self._frames_received

    @property
    def acks_sent(self) -> int:
        """Hardware ACKs emitted by this radio."""
        return self._acks_sent

    # ------------------------------------------------------------------
    # Medium access
    # ------------------------------------------------------------------

    def is_transmitting(self) -> bool:
        """Half-duplex check used by the channel."""
        return self._state is RadioState.TX

    def cca(self) -> bool:
        """Clear-channel assessment: ``True`` when the medium is clear.

        Raises:
            RuntimeError: If sampled while transmitting or off.
        """
        if self._state is not RadioState.RX:
            raise RuntimeError(f"CCA requires RX state, radio is {self._state}")
        return not self._channel.cca_busy()

    def rssi_dbm(self) -> float:
        """Current RSSI register reading."""
        return self._channel.rssi_dbm()

    def transmit(self, frame: DataFrame) -> float:
        """Send a data frame; returns its end-of-air time.

        The radio enters TX for the frame's duration and automatically
        returns to RX.

        Raises:
            RuntimeError: If the radio is already transmitting or off.
        """
        if self._state is not RadioState.RX:
            raise RuntimeError(
                f"cannot transmit from state {self._state.value}"
            )
        self._enter_state(RadioState.TX)
        tx = self._channel.transmit(self, frame, power_dbm=self._tx_power_dbm)
        self._sim.schedule_at(
            tx.end, lambda: self._enter_state(RadioState.RX), label="tx-done"
        )
        return tx.end

    def power_off(self) -> None:
        """Enter the sleep state (stops receiving)."""
        if self._state is RadioState.TX:
            raise RuntimeError("cannot power off mid-transmission")
        self._enter_state(RadioState.OFF)

    def power_on(self) -> None:
        """Return to RX from sleep."""
        if self._state is RadioState.OFF:
            self._enter_state(RadioState.RX)

    def _enter_state(self, state: RadioState) -> None:
        self._energy.transition(state.value, self._sim.now)
        self._state = state

    # ------------------------------------------------------------------
    # Channel-facing delivery (ChannelListener protocol)
    # ------------------------------------------------------------------

    def on_frame(self, frame: DataFrame | AckFrame, *, superposition: int = 1) -> None:
        """Deliver a decoded frame (called by the channel)."""
        if self._state is not RadioState.RX:
            return
        if isinstance(frame, AckFrame):
            if self.ack_callback is not None:
                self.ack_callback(frame, superposition)
            return
        # Hardware address recognition.
        if frame.dst not in (self._short_address, BROADCAST_ADDR):
            return
        self._frames_received += 1
        if (
            self._auto_ack
            and frame.ack_request
            and frame.dst == self._short_address
            and frame.dst != BROADCAST_ADDR
        ):
            self._schedule_hack(frame.seq)
        if self.receive_callback is not None:
            self.receive_callback(frame, superposition)

    def on_channel_busy(self, start: float, end: float) -> None:
        """Busy-period notification (called by the channel)."""
        if self._state is not RadioState.RX:
            return
        if self.busy_callback is not None:
            self.busy_callback(start, end)

    def _schedule_hack(self, seq: int) -> None:
        turnaround = self._channel.timing.turnaround_us

        def fire() -> None:
            # The radio may have been retasked (rebooted/readdressed) in
            # the meantime; a real CC2420 would abort the pending ACK too
            # if reconfigured, so only send from RX with auto-ack still on.
            if self._state is not RadioState.RX or not self._auto_ack:
                return
            self._enter_state(RadioState.TX)
            ack = AckFrame(seq=seq)
            tx = self._channel.transmit(self, ack, power_dbm=self._tx_power_dbm)
            self._acks_sent += 1
            self._sim.schedule_at(
                tx.end, lambda: self._enter_state(RadioState.RX), label="hack-done"
            )

        self._sim.schedule(turnaround, fire, label="hack")
