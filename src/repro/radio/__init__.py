"""Packet-level radio/PHY substrate (the simulated CC2420/802.15.4 stack).

This package replaces the paper's TelosB hardware testbed:

* :mod:`repro.radio.timing` -- 802.15.4 symbol/byte timing constants.
* :mod:`repro.radio.frames` -- data/ACK frame records with addressing,
  sequence numbers and FCS state.
* :mod:`repro.radio.channel` -- the shared singlehop broadcast medium:
  overlap tracking, CCA/RSSI, collision and superposition resolution.
* :mod:`repro.radio.capture` -- capture-effect models (probabilistic and
  power/SINR based).
* :mod:`repro.radio.irregularity` -- the radio-irregularity model that
  makes single HACKs occasionally miss (the source of the testbed's
  ~1.4 % false-negative runs in Fig 4).
* :mod:`repro.radio.cc2420` -- the radio device: hardware address
  recognition, automatic hardware acknowledgements (HACKs), CCA, state
  machine, energy hooks.
* :mod:`repro.radio.energy` -- per-radio energy accounting.
"""

from repro.radio.capture import PowerCaptureModel, ProbabilisticCaptureModel
from repro.radio.cc2420 import Cc2420Radio, RadioState
from repro.radio.channel import Channel, Transmission
from repro.radio.energy import EnergyLedger, EnergyProfile
from repro.radio.frames import AckFrame, DataFrame, FrameKind, BROADCAST_ADDR
from repro.radio.irregularity import HackMissModel, IdealRadioModel
from repro.radio.timing import PhyTiming

__all__ = [
    "AckFrame",
    "BROADCAST_ADDR",
    "Cc2420Radio",
    "Channel",
    "DataFrame",
    "EnergyLedger",
    "EnergyProfile",
    "FrameKind",
    "HackMissModel",
    "IdealRadioModel",
    "PhyTiming",
    "PowerCaptureModel",
    "ProbabilisticCaptureModel",
    "RadioState",
    "Transmission",
]
