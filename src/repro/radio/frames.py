"""802.15.4-style frame records.

Frames are simulation records rather than byte-exact encodings: they carry
the fields the protocols act on (addresses, sequence number, ACK-request
flag, payload) plus an accurate *length in bytes* so air times are right.
Two ACK frames with the same sequence number are *identical on air* --
the property backcast exploits for non-destructive HACK superposition --
which :meth:`AckFrame.superposes_with` captures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

#: The 802.15.4 broadcast short address.
BROADCAST_ADDR = 0xFFFF

#: MAC header bytes for a data frame in our addressing mode
#: (FCF 2 + seq 1 + PAN 2 + dst 2 + src 2) and the 2-byte FCS.
_DATA_OVERHEAD_BYTES = 9 + 2

#: An 802.15.4 immediate ACK MPDU: FCF 2 + seq 1 + FCS 2 = 5 bytes.
_ACK_MPDU_BYTES = 5


class FrameKind(enum.Enum):
    """MAC frame type."""

    DATA = "data"
    ACK = "ack"


@dataclass(frozen=True)
class DataFrame:
    """A data (or command) frame.

    Attributes:
        src: Sender short address.
        dst: Destination short address (``BROADCAST_ADDR`` for broadcast).
        seq: MAC sequence number (0..255).
        ack_request: Whether the FCF requests an acknowledgement.  Frames
            to the broadcast address must not request ACKs (standard rule;
            backcast's whole point is to request them on *ephemeral
            unicast* addresses shared by many receivers).
        payload: Simulation-level payload fields (e.g. the predicate id
            and bin member list of a tcast announce frame).
        payload_bytes: Modelled payload length on air.
    """

    src: int
    dst: int
    seq: int
    ack_request: bool = False
    payload: Mapping[str, Any] = field(default_factory=dict)
    payload_bytes: int = 0

    kind: FrameKind = field(default=FrameKind.DATA, init=False)

    def __post_init__(self) -> None:
        for label, addr in (("src", self.src), ("dst", self.dst)):
            if not 0 <= addr <= 0xFFFF:
                raise ValueError(f"{label} address must be 16-bit, got {addr}")
        if not 0 <= self.seq <= 255:
            raise ValueError(f"seq must be 0..255, got {self.seq}")
        if self.payload_bytes < 0:
            raise ValueError(
                f"payload_bytes must be >= 0, got {self.payload_bytes}"
            )
        if self.dst == BROADCAST_ADDR and self.ack_request:
            raise ValueError("broadcast frames must not request ACKs")
        max_payload = 127 - _DATA_OVERHEAD_BYTES
        if self.payload_bytes > max_payload:
            raise ValueError(
                f"payload of {self.payload_bytes} B exceeds the "
                f"{max_payload} B maximum MPDU payload"
            )

    @property
    def mpdu_bytes(self) -> int:
        """MPDU length: MAC header + payload + FCS."""
        return _DATA_OVERHEAD_BYTES + self.payload_bytes


@dataclass(frozen=True)
class AckFrame:
    """A hardware acknowledgement (HACK).

    802.15.4 immediate ACKs carry no addresses -- only the sequence number
    of the acknowledged frame -- so every radio acknowledging the same
    frame emits a bit-identical waveform.

    Attributes:
        seq: Sequence number being acknowledged.
        hardware: Whether the radio generated it autonomously (always true
            for HACKs in this substrate; software ACKs would be jittered
            and are modelled as :class:`DataFrame` replies instead).
    """

    seq: int
    hardware: bool = True

    kind: FrameKind = field(default=FrameKind.ACK, init=False)

    def __post_init__(self) -> None:
        if not 0 <= self.seq <= 255:
            raise ValueError(f"seq must be 0..255, got {self.seq}")

    @property
    def mpdu_bytes(self) -> int:
        """MPDU length of an immediate ACK (5 bytes)."""
        return _ACK_MPDU_BYTES

    def superposes_with(self, other: "AckFrame") -> bool:
        """Whether two simultaneous ACKs interfere non-destructively.

        True when both are hardware-generated and acknowledge the same
        sequence number: identical bits, symbol-aligned launch (exactly one
        turnaround after the acked frame), so a receiver can latch onto the
        superposition as if it were a single transmission.
        """
        return self.hardware and other.hardware and self.seq == other.seq
