"""802.15.4 (2.4 GHz O-QPSK) timing constants.

The CC2420 runs the 2.4 GHz PHY: 62.5 ksymbol/s (16 us per symbol), 4 bits
per symbol, hence 32 us per byte on air.  The MAC turnaround time (RX->TX,
the gap before a hardware ACK) is 12 symbols = 192 us.  All simulated
times are in **microseconds**.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PhyTiming:
    """PHY/MAC timing parameters (defaults: 802.15.4 @ 2.4 GHz / CC2420).

    Attributes:
        symbol_us: Duration of one PHY symbol in microseconds.
        symbols_per_byte: Air symbols per payload byte (2 for O-QPSK's
            4-bit symbols).
        preamble_bytes: PHY preamble length (4) plus SFD (1).
        phy_header_bytes: Frame-length byte of the PHY header.
        turnaround_symbols: RX->TX turnaround (``aTurnaroundTime`` = 12
            symbols); hardware ACKs launch exactly this long after the
            end of the acknowledged frame -- which is what makes
            simultaneous HACKs superpose.
        backoff_period_symbols: One CSMA unit backoff period
            (``aUnitBackoffPeriod`` = 20 symbols).
        ack_wait_symbols: How long a transmitter waits for an ACK
            (``macAckWaitDuration`` = 54 symbols).
    """

    symbol_us: float = 16.0
    symbols_per_byte: int = 2
    preamble_bytes: int = 5
    phy_header_bytes: int = 1
    turnaround_symbols: int = 12
    backoff_period_symbols: int = 20
    ack_wait_symbols: int = 54

    def __post_init__(self) -> None:
        if self.symbol_us <= 0:
            raise ValueError(f"symbol_us must be > 0, got {self.symbol_us}")
        if self.symbols_per_byte < 1:
            raise ValueError(
                f"symbols_per_byte must be >= 1, got {self.symbols_per_byte}"
            )

    @property
    def byte_us(self) -> float:
        """On-air duration of one byte in microseconds."""
        return self.symbol_us * self.symbols_per_byte

    @property
    def turnaround_us(self) -> float:
        """RX->TX turnaround in microseconds (192 us by default)."""
        return self.turnaround_symbols * self.symbol_us

    @property
    def backoff_period_us(self) -> float:
        """One CSMA backoff period in microseconds (320 us by default)."""
        return self.backoff_period_symbols * self.symbol_us

    @property
    def ack_wait_us(self) -> float:
        """ACK wait timeout in microseconds (864 us by default)."""
        return self.ack_wait_symbols * self.symbol_us

    def frame_airtime_us(self, mpdu_bytes: int) -> float:
        """On-air duration of a frame whose MPDU is ``mpdu_bytes`` long.

        Includes the synchronisation header (preamble + SFD) and the PHY
        length byte.

        Args:
            mpdu_bytes: MAC protocol data unit length (header + payload +
                FCS), 0..127.

        Raises:
            ValueError: If ``mpdu_bytes`` is outside the PHY's 0..127 range.
        """
        if not 0 <= mpdu_bytes <= 127:
            raise ValueError(f"MPDU must be 0..127 bytes, got {mpdu_bytes}")
        total = self.preamble_bytes + self.phy_header_bytes + mpdu_bytes
        return total * self.byte_us


#: Module-level default timing (802.15.4 @ 2.4 GHz).
DEFAULT_TIMING = PhyTiming()
