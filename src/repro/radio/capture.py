"""Capture-effect models for collided (non-identical) frames.

When two or more *different* frames overlap on air, a receiver may still
lock onto and decode one of them -- the capture effect (Whitehouse et al.,
EmNetS 2005).  Two models are provided:

* :class:`ProbabilisticCaptureModel` -- decode one uniformly-chosen frame
  with probability ``p(k)`` (default ``1/k``), matching the abstract
  2+ model so packet-level and abstract results are directly comparable.
* :class:`PowerCaptureModel` -- decode the strongest frame iff it exceeds
  the power sum of the others by a SINR margin; per-transmission received
  powers carry log-normal fading.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Protocol, Sequence

import numpy as np


class CaptureModel(Protocol):
    """Picks the decodable transmission (if any) out of a collision."""

    def select(
        self,
        powers_dbm: Sequence[float],
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Return the index of the captured transmission, or ``None``.

        Args:
            powers_dbm: Received power of each colliding transmission at
                the receiver in question.
            rng: Randomness source.
        """
        ...


class ProbabilisticCaptureModel:
    """Capture one frame with probability ``p(k)``, uniformly at random.

    Args:
        probability: ``k -> P(capture)`` for ``k >= 2`` colliders; default
            ``1/k`` (the DESIGN.md convention shared with the abstract
            2+ model).  A single transmission is always decodable.
    """

    def __init__(
        self, probability: Callable[[int], float] | None = None
    ) -> None:
        self._probability = probability or (lambda k: 1.0 / k)

    def select(
        self,
        powers_dbm: Sequence[float],
        rng: np.random.Generator,
    ) -> Optional[int]:
        """See :class:`CaptureModel`; powers are ignored by this model."""
        k = len(powers_dbm)
        if k == 0:
            return None
        if k == 1:
            return 0
        p = self._probability(k)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"capture probability out of range: {p}")
        if rng.random() < p:
            return int(rng.integers(k))
        return None


class PowerCaptureModel:
    """SINR-threshold capture with log-normal fading.

    The strongest transmission is decoded iff its power exceeds the sum of
    all other colliding powers by at least ``sinr_threshold_db``.

    Args:
        sinr_threshold_db: Required margin (CC2420-class radios capture at
            roughly 3 dB).
        fading_sigma_db: Standard deviation of an extra per-selection
            log-normal fade applied to each power (models fast fading
            between the sender's nominal RSSI and this packet's
            realisation); 0 disables it.
    """

    def __init__(
        self,
        *,
        sinr_threshold_db: float = 3.0,
        fading_sigma_db: float = 0.0,
    ) -> None:
        if sinr_threshold_db < 0:
            raise ValueError(
                f"sinr_threshold_db must be >= 0, got {sinr_threshold_db}"
            )
        if fading_sigma_db < 0:
            raise ValueError(
                f"fading_sigma_db must be >= 0, got {fading_sigma_db}"
            )
        self._threshold_db = sinr_threshold_db
        self._sigma = fading_sigma_db

    def select(
        self,
        powers_dbm: Sequence[float],
        rng: np.random.Generator,
    ) -> Optional[int]:
        """See :class:`CaptureModel`."""
        k = len(powers_dbm)
        if k == 0:
            return None
        powers = np.asarray(powers_dbm, dtype=np.float64)
        if self._sigma > 0:
            powers = powers + rng.normal(0.0, self._sigma, size=k)
        if k == 1:
            return 0
        mw = np.power(10.0, powers / 10.0)
        strongest = int(np.argmax(mw))
        interference = float(mw.sum() - mw[strongest])
        if interference <= 0:
            return strongest
        sinr_db = 10.0 * math.log10(mw[strongest] / interference)
        return strongest if sinr_db >= self._threshold_db else None
