"""Radio-irregularity models: the source of the testbed's false negatives.

The paper's mote experiments (Sec IV-D) report 102 false-negative runs out
of 7,200 (~1.4 %), no false positives, and note that "majority of the
false-negatives occur when the queried group has only one positive node
... As the number of superposing HACKs increase, the error rate slashes
down."  We model exactly that: the probability that the initiator fails
to latch a HACK superposition of ``k`` identical acknowledgements decays
geometrically in ``k``::

    miss(k) = p_single * decay ** (k - 1)

A missed HACK makes a non-empty bin read **silent** -- the only error mode
(a HACK cannot be fabricated by noise, so false positives are impossible,
matching both the paper and the backcast design).
"""

from __future__ import annotations


class IdealRadioModel:
    """No irregularity: every superposition of ``k >= 1`` HACKs is latched."""

    def miss_probability(self, k: int) -> float:
        """Probability of failing to latch ``k`` superposed HACKs (0 here).

        Raises:
            ValueError: If ``k < 1``.
        """
        if k < 1:
            raise ValueError(f"superposition count must be >= 1, got {k}")
        return 0.0


class HackMissModel:
    """Geometric-decay HACK miss model.

    Args:
        p_single: Probability of missing a *lone* HACK.  The default 0.03
            is calibrated so the paper's 12-mote, ``t in {2,4,6}``
            experiment suite lands near its reported 1.4 % false-negative
            run rate (see EXPERIMENTS.md for the calibration sweep).
        decay: Multiplicative reduction per additional superposed HACK
            (superposition strengthens the signal); default 0.1.
    """

    def __init__(self, *, p_single: float = 0.03, decay: float = 0.1) -> None:
        if not 0.0 <= p_single <= 1.0:
            raise ValueError(f"p_single must be in [0,1], got {p_single}")
        if not 0.0 <= decay <= 1.0:
            raise ValueError(f"decay must be in [0,1], got {decay}")
        self._p_single = p_single
        self._decay = decay

    @property
    def p_single(self) -> float:
        """Miss probability for a lone HACK."""
        return self._p_single

    @property
    def decay(self) -> float:
        """Per-extra-HACK multiplicative miss reduction."""
        return self._decay

    def miss_probability(self, k: int) -> float:
        """``p_single * decay**(k-1)`` for ``k`` superposed HACKs.

        Raises:
            ValueError: If ``k < 1``.
        """
        if k < 1:
            raise ValueError(f"superposition count must be >= 1, got {k}")
        return self._p_single * (self._decay ** (k - 1))
