"""Per-radio energy accounting.

WSN evaluations care about energy as much as latency; the ledger
integrates current draw over the time a radio spends in each state so the
benchmark harness can report per-query energy for tcast vs the baselines.
Defaults are CC2420 datasheet values at 3 V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class EnergyProfile:
    """Current draw per radio state (defaults: CC2420 @ 0 dBm, 3 V).

    Attributes:
        voltage_v: Supply voltage.
        rx_ma: Receive / listen current (18.8 mA).
        tx_ma: Transmit current at 0 dBm (17.4 mA).
        idle_ma: Idle (crystal on, radio off) current (0.426 mA).
        sleep_ma: Power-down current (~1 uA).
    """

    voltage_v: float = 3.0
    rx_ma: float = 18.8
    tx_ma: float = 17.4
    idle_ma: float = 0.426
    sleep_ma: float = 0.001

    def current_ma(self, state: str) -> float:
        """Current draw for a state name (``rx``/``tx``/``idle``/``sleep``).

        Raises:
            KeyError: For unknown state names.
        """
        table = {
            "rx": self.rx_ma,
            "tx": self.tx_ma,
            "idle": self.idle_ma,
            "sleep": self.sleep_ma,
        }
        return table[state]


class EnergyLedger:
    """Integrates a radio's energy use across state changes.

    The owning radio calls :meth:`transition` at every state change; the
    ledger accumulates microjoules per state.

    Args:
        profile: Current-draw profile.
        initial_state: State at time zero.
    """

    def __init__(
        self,
        profile: EnergyProfile | None = None,
        *,
        initial_state: str = "idle",
    ) -> None:
        self._profile = profile or EnergyProfile()
        self._profile.current_ma(initial_state)  # validate
        self._state = initial_state
        self._since_us = 0.0
        self._by_state_uj: Dict[str, float] = {}
        self._time_by_state_us: Dict[str, float] = {}

    @property
    def state(self) -> str:
        """Current accounted state."""
        return self._state

    def transition(self, new_state: str, now_us: float) -> None:
        """Close the current state's interval and enter ``new_state``.

        Args:
            new_state: One of ``rx``/``tx``/``idle``/``sleep``.
            now_us: Current simulated time in microseconds.

        Raises:
            ValueError: If time runs backwards.
            KeyError: For unknown state names.
        """
        self._profile.current_ma(new_state)  # validate before mutating
        self._accumulate(now_us)
        self._state = new_state

    def finalize(self, now_us: float) -> None:
        """Account the tail interval up to ``now_us`` (end of run)."""
        self._accumulate(now_us)

    def _accumulate(self, now_us: float) -> None:
        if now_us < self._since_us:
            raise ValueError(
                f"time ran backwards: {now_us} < {self._since_us}"
            )
        dt_us = now_us - self._since_us
        if dt_us > 0:
            current_ma = self._profile.current_ma(self._state)
            # uJ = mA * V * us / 1000
            energy_uj = current_ma * self._profile.voltage_v * dt_us / 1000.0
            self._by_state_uj[self._state] = (
                self._by_state_uj.get(self._state, 0.0) + energy_uj
            )
            self._time_by_state_us[self._state] = (
                self._time_by_state_us.get(self._state, 0.0) + dt_us
            )
        self._since_us = now_us

    @property
    def total_uj(self) -> float:
        """Total accumulated energy in microjoules."""
        return sum(self._by_state_uj.values())

    def energy_uj(self, state: str) -> float:
        """Accumulated energy for one state (0 if never entered)."""
        return self._by_state_uj.get(state, 0.0)

    def time_us(self, state: str) -> float:
        """Accumulated time in one state (0 if never entered)."""
        return self._time_by_state_us.get(state, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """Per-state energy (microjoules) as a plain dict copy."""
        return dict(self._by_state_uj)
