"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.group_testing.population import Population


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, fixed-seed generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory for independent fixed-seed generators."""

    def make(seed: int = 0) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make


@pytest.fixture
def population_64_20(rng) -> Population:
    """64 nodes, 20 random positives."""
    return Population.from_count(64, 20, rng)
