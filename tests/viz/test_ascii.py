"""Tests for the ASCII rendering helpers."""

from __future__ import annotations

import pytest

from repro.viz.ascii import ascii_chart, histogram, render_table


class TestAsciiChart:
    def test_renders_series_glyphs(self):
        out = ascii_chart([0, 1, 2], {"alpha": [1, 2, 3], "beta": [3, 2, 1]})
        assert "o=alpha" in out and "x=beta" in out
        assert "o" in out and "x" in out

    def test_title_included(self):
        out = ascii_chart([0, 1], {"s": [0, 1]}, title="my chart")
        assert "my chart" in out

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_chart([], {})
        with pytest.raises(ValueError):
            ascii_chart([1], {})

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"s": [1]})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"s": [1, 2]}, width=2, height=2)

    def test_constant_series_does_not_crash(self):
        out = ascii_chart([0, 1, 2], {"flat": [5, 5, 5]})
        assert "flat" in out

    def test_nan_values_skipped(self):
        out = ascii_chart([0, 1, 2], {"s": [1.0, float("nan"), 3.0]})
        assert "s" in out

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"s": [float("nan"), float("nan")]})

    def test_dimensions(self):
        out = ascii_chart([0, 1], {"s": [0, 10]}, width=40, height=10)
        plot_rows = [l for l in out.splitlines() if "|" in l]
        assert len(plot_rows) == 10


class TestHistogram:
    def test_basic(self):
        out = histogram([1, 1, 2, 5, 5, 5], bins=4, title="h")
        assert "h" in out
        assert "#" in out

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            histogram([])

    def test_counts_sum(self):
        out = histogram(list(range(100)), bins=10)
        counts = [
            int(line.split(")")[1].split()[0]) for line in out.splitlines()
        ]
        assert sum(counts) == 100


class TestRenderTable:
    def test_alignment_and_headers(self):
        out = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4

    def test_float_formatting(self):
        out = render_table(["v"], [[3.14159]])
        assert "3.14" in out and "3.14159" not in out

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])
