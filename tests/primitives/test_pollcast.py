"""Tests for the pollcast primitive over the emulated radio stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.motes.participant import ParticipantApp
from repro.primitives.pollcast import PollcastInitiator
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.channel import Channel
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer


def build(n_participants=4, positives=(), seed=0, trace=False):
    sim = Simulator()
    tracer = Tracer(enabled=trace, clock=lambda: sim.now)
    channel = Channel(sim, np.random.default_rng(seed), tracer=tracer)
    init_radio = Cc2420Radio(sim, channel, address=100, tracer=tracer)
    initiator = PollcastInitiator(sim, init_radio, tracer=tracer)
    apps = []
    for i in range(n_participants):
        radio = Cc2420Radio(sim, channel, address=i, tracer=tracer)
        app = ParticipantApp(sim, radio)
        app.boot()
        app.configure(i in positives)
        apps.append(app)
    return sim, initiator, apps, tracer


def test_silent_when_no_positive_members():
    _, initiator, _, _ = build(4, positives=())
    assert not initiator.query([0, 1, 2, 3]).nonempty


def test_nonempty_with_one_positive():
    _, initiator, _, _ = build(4, positives=(1,))
    assert initiator.query([0, 1, 2, 3]).nonempty


def test_nonempty_with_colliding_votes():
    """Multiple simultaneous votes collide -- pollcast still detects the
    energy (RCD's whole point)."""
    _, initiator, apps, _ = build(5, positives=(0, 1, 2, 3, 4))
    assert initiator.query([0, 1, 2, 3, 4]).nonempty
    assert sum(app.votes_sent for app in apps) == 5


def test_positive_nonmember_does_not_vote():
    _, initiator, apps, _ = build(4, positives=(3,))
    assert not initiator.query([0, 1, 2]).nonempty
    assert apps[3].votes_sent == 0


def test_queries_issued_counter():
    _, initiator, _, _ = build(2)
    initiator.query([0])
    initiator.query([0, 1])
    assert initiator.queries_issued == 2


def test_duration_covers_vote_window():
    _, initiator, _, _ = build(2, positives=(0,))
    outcome = initiator.query([0, 1])
    assert outcome.duration_us >= 640.0  # at least the vote window


def test_trace_records():
    _, initiator, _, tracer = build(2, positives=(0,), trace=True)
    initiator.query([0, 1])
    assert tracer.count("pollcast.poll") == 1
    assert tracer.count("pollcast.verdict") == 1


def test_vote_window_validation():
    sim = Simulator()
    channel = Channel(sim, np.random.default_rng(0))
    radio = Cc2420Radio(sim, channel, address=1)
    with pytest.raises(ValueError):
        PollcastInitiator(sim, radio, vote_window_us=0.0)


def test_back_to_back_queries_do_not_bleed():
    """Votes from query 1 must not register as activity in query 2."""
    _, initiator, _, _ = build(4, positives=(0,))
    assert initiator.query([0]).nonempty
    assert not initiator.query([1, 2, 3]).nonempty
