"""Protocol-timing conformance tests.

These pin down the on-air schedule of the primitives against the
802.15.4 timing model: HACKs launch exactly one turnaround after the
acknowledged frame ends, polls follow the announce by turnaround plus
guard, and per-query durations decompose into their documented parts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.motes.participant import ParticipantApp
from repro.primitives.backcast import BackcastInitiator
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.channel import Channel
from repro.radio.timing import DEFAULT_TIMING
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer


def build(n=3, positives=(), guard_us=128.0):
    sim = Simulator()
    tracer = Tracer(enabled=True, clock=lambda: sim.now)
    channel = Channel(sim, np.random.default_rng(0), tracer=tracer)
    init_radio = Cc2420Radio(sim, channel, address=100, tracer=tracer)
    initiator = BackcastInitiator(
        sim, init_radio, tracer=tracer, guard_us=guard_us
    )
    for i in range(n):
        radio = Cc2420Radio(sim, channel, address=i, tracer=tracer)
        app = ParticipantApp(sim, radio)
        app.boot()
        app.configure(i in positives)
    return sim, initiator, tracer


def tx_events(tracer):
    return tracer.records("radio.tx.start")


def test_poll_follows_announce_by_turnaround_plus_guard():
    guard = 200.0
    sim, initiator, tracer = build(2, positives=(0,), guard_us=guard)
    initiator.query([0, 1])
    starts = tx_events(tracer)
    announce, poll = starts[0], starts[1]
    gap = poll.time - announce.detail["end"]
    assert gap == pytest.approx(DEFAULT_TIMING.turnaround_us + guard)


def test_hacks_launch_exactly_one_turnaround_after_poll():
    sim, initiator, tracer = build(3, positives=(0, 1))
    initiator.query([0, 1, 2])
    starts = tx_events(tracer)
    poll = next(r for r in starts if r.source == "mote100" and r is not starts[0])
    hacks = [r for r in starts if r.detail["kind"] == "ack"]
    assert len(hacks) == 2
    for hack in hacks:
        assert hack.time == pytest.approx(
            poll.detail["end"] + DEFAULT_TIMING.turnaround_us
        )
    # Symbol-aligned superposition: identical launch instants.
    assert hacks[0].time == hacks[1].time


def test_hack_arrives_within_ack_wait_window():
    sim, initiator, tracer = build(2, positives=(0,))
    outcome = initiator.query([0, 1])
    assert outcome.nonempty
    starts = tx_events(tracer)
    poll = starts[1]
    hack = next(r for r in starts if r.detail["kind"] == "ack")
    hack_end = hack.detail["end"]
    assert hack_end - poll.detail["end"] < DEFAULT_TIMING.ack_wait_us


def test_round_poll_duration_is_poll_plus_ack_wait():
    sim, initiator, tracer = build(2, positives=(0,))
    initiator.announce_round([[0], [1]])
    outcome = initiator.poll_bin(0)
    poll_mpdu = 11  # data frame with empty payload
    expected = (
        DEFAULT_TIMING.frame_airtime_us(poll_mpdu) + DEFAULT_TIMING.ack_wait_us
    )
    assert outcome.duration_us == pytest.approx(expected)


def test_silent_and_nonempty_polls_cost_the_same_time():
    """The initiator always waits out the full ACK window, so silence is
    not cheaper than activity (matching the slot-based accounting of the
    abstract model)."""
    sim, initiator, _ = build(2, positives=(0,))
    initiator.announce_round([[0], [1]])
    nonempty = initiator.poll_bin(0)
    silent = initiator.poll_bin(1)
    assert nonempty.nonempty and not silent.nonempty
    assert nonempty.duration_us == pytest.approx(silent.duration_us)
