"""Tests for the votecast primitive (packet-level 2+ semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.group_testing.model import ObservationKind
from repro.motes.participant import ParticipantApp
from repro.primitives.votecast import VotecastInitiator
from repro.radio.capture import ProbabilisticCaptureModel
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.channel import Channel
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer


def build(n_participants=5, positives=(), seed=0, capture=None, trace=False):
    sim = Simulator()
    tracer = Tracer(enabled=trace, clock=lambda: sim.now)
    channel = Channel(
        sim, np.random.default_rng(seed), capture_model=capture, tracer=tracer
    )
    init_radio = Cc2420Radio(sim, channel, address=100, tracer=tracer)
    initiator = VotecastInitiator(sim, init_radio, tracer=tracer)
    apps = []
    for i in range(n_participants):
        radio = Cc2420Radio(sim, channel, address=i, tracer=tracer)
        app = ParticipantApp(sim, radio)
        app.boot()
        app.configure(i in positives)
        apps.append(app)
    return sim, initiator, apps, tracer


def test_silent_bin():
    _, initiator, _, _ = build(4, positives=())
    obs = initiator.query([0, 1, 2, 3]).observation
    assert obs.kind is ObservationKind.SILENT
    assert obs.min_positives == 0


def test_single_voter_always_captured():
    _, initiator, _, _ = build(4, positives=(2,))
    obs = initiator.query([0, 1, 2, 3]).observation
    assert obs.kind is ObservationKind.CAPTURE
    assert obs.captured_node == 2
    assert obs.min_positives == 1


def test_collision_without_capture_proves_two():
    _, initiator, _, _ = build(
        5, positives=(1, 3), capture=ProbabilisticCaptureModel(lambda k: 0.0)
    )
    obs = initiator.query([0, 1, 2, 3, 4]).observation
    assert obs.kind is ObservationKind.ACTIVITY
    assert obs.min_positives == 2


def test_forced_capture_identifies_a_real_voter():
    _, initiator, _, _ = build(
        5,
        positives=(1, 3, 4),
        capture=ProbabilisticCaptureModel(lambda k: 1.0),
    )
    obs = initiator.query([0, 1, 2, 3, 4]).observation
    assert obs.kind is ObservationKind.CAPTURE
    assert obs.captured_node in {1, 3, 4}


def test_default_capture_rate_statistics():
    """With the default 1/k capture model, three voters capture ~1/3 of
    the time -- matching the abstract TwoPlusModel.  One testbed is
    queried repeatedly so the draws come from a single RNG stream."""
    _, initiator, _, _ = build(3, positives=(0, 1, 2), seed=42)
    captures = 0
    runs = 400
    for _ in range(runs):
        obs = initiator.query([0, 1, 2]).observation
        assert obs.kind in (ObservationKind.CAPTURE, ObservationKind.ACTIVITY)
        captures += obs.kind is ObservationKind.CAPTURE
    assert captures / runs == pytest.approx(1 / 3, abs=0.06)


def test_positive_nonmember_does_not_vote():
    _, initiator, apps, _ = build(4, positives=(3,))
    obs = initiator.query([0, 1, 2]).observation
    assert obs.kind is ObservationKind.SILENT
    assert apps[3].votes_sent == 0


def test_trace_and_counters():
    _, initiator, _, tracer = build(3, positives=(1,), trace=True)
    initiator.query([0, 1, 2])
    initiator.query([0, 2])
    assert initiator.queries_issued == 2
    assert tracer.count("votecast.poll") == 2
    assert tracer.count("votecast.verdict") == 2


def test_vote_window_validation():
    sim = Simulator()
    channel = Channel(sim, np.random.default_rng(0))
    radio = Cc2420Radio(sim, channel, address=1)
    with pytest.raises(ValueError):
        VotecastInitiator(sim, radio, vote_window_us=0.0)


def test_back_to_back_queries_do_not_bleed():
    _, initiator, _, _ = build(4, positives=(0,))
    assert initiator.query([0]).observation.kind is ObservationKind.CAPTURE
    assert initiator.query([1, 2]).observation.kind is ObservationKind.SILENT
