"""Tests for the backcast primitive over the emulated radio stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.motes.participant import ParticipantApp
from repro.primitives.backcast import BackcastInitiator
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.channel import Channel
from repro.radio.irregularity import HackMissModel
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer


def build(n_participants=4, positives=(), seed=0, hack_miss=None, trace=False):
    sim = Simulator()
    tracer = Tracer(enabled=trace, clock=lambda: sim.now)
    channel = Channel(
        sim, np.random.default_rng(seed), hack_miss=hack_miss, tracer=tracer
    )
    init_radio = Cc2420Radio(sim, channel, address=100, tracer=tracer)
    initiator = BackcastInitiator(sim, init_radio, tracer=tracer)
    apps = []
    for i in range(n_participants):
        radio = Cc2420Radio(sim, channel, address=i, tracer=tracer)
        app = ParticipantApp(sim, radio)
        app.boot()
        app.configure(i in positives)
        apps.append(app)
    return sim, initiator, apps, tracer, channel


class TestVerdicts:
    def test_silent_when_no_positive_members(self):
        _, initiator, _, _, _ = build(4, positives=())
        outcome = initiator.query([0, 1, 2, 3])
        assert not outcome.nonempty
        assert outcome.superposition == 0

    def test_nonempty_with_one_positive(self):
        _, initiator, _, _, _ = build(4, positives=(2,))
        outcome = initiator.query([0, 1, 2, 3])
        assert outcome.nonempty
        assert outcome.superposition == 1

    def test_superposition_counts_all_positives(self):
        _, initiator, _, _, _ = build(5, positives=(0, 2, 4))
        outcome = initiator.query([0, 1, 2, 3, 4])
        assert outcome.nonempty
        assert outcome.superposition == 3

    def test_positive_nonmember_stays_silent(self):
        _, initiator, _, _, _ = build(4, positives=(3,))
        outcome = initiator.query([0, 1, 2])
        assert not outcome.nonempty

    def test_empty_member_list_is_silent(self):
        _, initiator, _, _, _ = build(3, positives=(0, 1, 2))
        outcome = initiator.query([])
        assert not outcome.nonempty

    def test_sequential_queries_reassign_groups(self):
        """Bin membership must reset between queries: a node positive in
        query 1 must not leak a HACK into query 2's different bin."""
        _, initiator, _, _, _ = build(4, positives=(0,))
        assert initiator.query([0, 1]).nonempty
        assert not initiator.query([2, 3]).nonempty
        assert initiator.query([0, 3]).nonempty


class TestFailureModes:
    def test_hack_miss_causes_false_negative_only(self):
        _, initiator, _, _, channel = build(
            4, positives=(1,), hack_miss=HackMissModel(p_single=1.0, decay=1.0)
        )
        outcome = initiator.query([0, 1, 2, 3])
        assert not outcome.nonempty  # false negative
        assert channel.hack_misses == 1

    def test_no_false_positives_under_miss_model(self):
        """A miss model can only suppress HACKs, never fabricate them."""
        _, initiator, _, _, _ = build(
            4, positives=(), hack_miss=HackMissModel(p_single=0.5, decay=0.5)
        )
        for _ in range(20):
            assert not initiator.query([0, 1, 2, 3]).nonempty


class TestProtocol:
    def test_query_duration_is_bounded_and_positive(self):
        sim, initiator, _, _, channel = build(4, positives=(1,))
        outcome = initiator.query([0, 1])
        assert outcome.duration_us > 0
        # announce + gap + poll + ack-wait is well under 10 ms.
        assert outcome.duration_us < 10_000

    def test_queries_issued_counter(self):
        _, initiator, _, _, _ = build(2)
        initiator.query([0])
        initiator.query([1])
        assert initiator.queries_issued == 2

    def test_trace_records_protocol_phases(self):
        _, initiator, _, tracer, _ = build(2, positives=(0,), trace=True)
        initiator.query([0, 1])
        assert tracer.count("backcast.announce") == 1
        assert tracer.count("backcast.poll") == 1
        assert tracer.count("backcast.verdict") == 1

    def test_guard_validation(self):
        sim = Simulator()
        channel = Channel(sim, np.random.default_rng(0))
        radio = Cc2420Radio(sim, channel, address=1)
        with pytest.raises(ValueError):
            BackcastInitiator(sim, radio, guard_us=-1.0)

    def test_many_queries_seq_wraps(self):
        _, initiator, _, _, _ = build(2, positives=(0,))
        for _ in range(300):  # wraps past seq 255
            assert initiator.query([0]).nonempty


class TestRoundOriented:
    def test_round_announce_then_per_bin_polls(self):
        _, initiator, _, _, _ = build(6, positives=(0, 4))
        initiator.announce_round([[0, 1], [2, 3], [4, 5]])
        assert initiator.poll_bin(0).nonempty       # holds positive 0
        assert not initiator.poll_bin(1).nonempty   # all negative
        assert initiator.poll_bin(2).nonempty       # holds positive 4

    def test_poll_order_is_free(self):
        _, initiator, _, _, _ = build(4, positives=(3,))
        initiator.announce_round([[0, 1], [2, 3]])
        assert initiator.poll_bin(1).nonempty
        assert not initiator.poll_bin(0).nonempty

    def test_unannounced_bin_rejected(self):
        _, initiator, _, _, _ = build(2)
        initiator.announce_round([[0, 1]])
        with pytest.raises(IndexError):
            initiator.poll_bin(1)

    def test_duplicate_assignment_rejected(self):
        _, initiator, _, _, _ = build(3)
        with pytest.raises(ValueError):
            initiator.announce_round([[0, 1], [1, 2]])

    def test_round_polls_cheaper_than_one_shot_queries(self):
        """The round-oriented protocol amortises the announce."""
        _, initiator_a, _, _, _ = build(8, positives=(1, 5))
        bins = [[0, 1], [2, 3], [4, 5], [6, 7]]
        initiator_a.announce_round(bins)
        round_cost = sum(
            initiator_a.poll_bin(i).duration_us for i in range(4)
        )
        _, initiator_b, _, _, _ = build(8, positives=(1, 5))
        oneshot_cost = sum(
            initiator_b.query(members).duration_us for members in bins
        )
        assert round_cost < oneshot_cost * 0.75

    def test_stale_binding_cannot_alias_across_rounds(self):
        """Node positive in round 1 bin 0 must not HACK round 2's bin 0
        poll if it is no longer a candidate."""
        _, initiator, _, _, _ = build(4, positives=(0,))
        initiator.announce_round([[0], [1]])
        assert initiator.poll_bin(0).nonempty
        # Round 2 excludes node 0 entirely; bin 0 is now {1}.
        initiator.announce_round([[1], [2, 3]])
        assert not initiator.poll_bin(0).nonempty

    def test_large_round_fragments_announce(self):
        _, initiator, _, tracer, _ = build(
            100, positives=(99,), trace=True
        )
        bins = [list(range(i, i + 10)) for i in range(0, 100, 10)]
        initiator.announce_round(bins)
        fragments = tracer.count("backcast.announce")
        assert fragments >= 2  # 100 entries > one fragment's capacity
        assert initiator.poll_bin(9).nonempty
