"""Tests for interval queries and band classification."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exponential import ExponentialIncrease
from repro.core.interval import IntervalQuery
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population


def make(n, x, seed=0):
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    return pop, OnePlusModel(pop, np.random.default_rng(seed + 1))


class TestInterval:
    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=80),
        seed=st.integers(min_value=0, max_value=2000),
        data=st.data(),
    )
    def test_always_correct(self, n, seed, data):
        x = data.draw(st.integers(min_value=0, max_value=n))
        lo = data.draw(st.integers(min_value=0, max_value=n))
        hi = data.draw(st.integers(min_value=lo + 1, max_value=n + 2))
        _, model = make(n, x, seed)
        result = IntervalQuery().decide(
            model, lo, hi, np.random.default_rng(seed + 2)
        )
        assert result.in_interval == (lo <= x < hi)
        assert result.queries == model.queries_used

    def test_short_circuits_when_below_lo(self):
        """x < lo resolves with the lower session alone."""
        _, model = make(64, 2, seed=1)
        result = IntervalQuery().decide(model, 20, 40, np.random.default_rng(3))
        assert not result.in_interval
        assert not result.at_least_lo
        # One threshold session's worth of queries, not two.
        assert result.queries < 64

    def test_validation(self):
        _, model = make(8, 2)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            IntervalQuery().decide(model, -1, 4, rng)
        with pytest.raises(ValueError):
            IntervalQuery().decide(model, 4, 4, rng)

    def test_custom_algorithm(self):
        _, model = make(64, 30, seed=2)
        result = IntervalQuery(ExponentialIncrease).decide(
            model, 10, 40, np.random.default_rng(5)
        )
        assert result.in_interval


class TestClassify:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=80),
        seed=st.integers(min_value=0, max_value=2000),
        data=st.data(),
    )
    def test_band_always_correct(self, n, seed, data):
        x = data.draw(st.integers(min_value=0, max_value=n))
        k = data.draw(st.integers(min_value=1, max_value=min(5, n)))
        cuts = sorted(
            data.draw(
                st.sets(
                    st.integers(min_value=1, max_value=n),
                    min_size=k,
                    max_size=k,
                )
            )
        )
        _, model = make(n, x, seed)
        result = IntervalQuery().classify(
            model, cuts, np.random.default_rng(seed + 2)
        )
        expected = sum(1 for b in cuts if x >= b)
        assert result.band == expected

    def test_session_count_is_logarithmic(self):
        _, model = make(64, 30, seed=1)
        cuts = [4, 8, 16, 24, 32, 40, 48]  # 8 bands
        result = IntervalQuery().classify(model, cuts, np.random.default_rng(2))
        assert result.sessions <= math.ceil(math.log2(len(cuts) + 1))

    def test_validation(self):
        _, model = make(8, 2)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            IntervalQuery().classify(model, [], rng)
        with pytest.raises(ValueError):
            IntervalQuery().classify(model, [0, 2], rng)
        with pytest.raises(ValueError):
            IntervalQuery().classify(model, [4, 4], rng)
