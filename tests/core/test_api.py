"""Tests for the high-level facade API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import REGISTRY, make_algorithm, threshold_query
from repro.core import KRepeatConfirm
from repro.faults.plan import FaultPlan
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population

DECIDER_NAMES = sorted(key for key, spec in REGISTRY.items() if spec.decider)


class TestMakeAlgorithm:
    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_every_registered_name_instantiates(self, name):
        algo = make_algorithm(name, x=5)
        if REGISTRY[name].decider:
            assert hasattr(algo, "decide")
        else:
            assert hasattr(algo, "decide") or hasattr(algo, "count")

    def test_case_insensitive(self):
        assert make_algorithm("2TBINS").name == "2tBins"

    def test_unknown_name_lists_valid(self):
        with pytest.raises(KeyError, match="2tbins"):
            make_algorithm("nope")

    def test_oracle_requires_x(self):
        with pytest.raises(ValueError, match="oracle"):
            make_algorithm("oracle")


class TestThresholdQuery:
    @pytest.mark.parametrize("name", DECIDER_NAMES)
    def test_correct_over_population(self, name):
        pop = Population.from_count(64, 20, np.random.default_rng(0))
        for t, truth in [(8, True), (20, True), (21, False)]:
            result = threshold_query(pop, t, algorithm=name, seed=3)
            if result.exact:
                assert result.decision == truth, f"{name} at t={t}"
            else:
                assert result.decision in (True, False)

    def test_two_plus_collision_model(self):
        pop = Population.from_count(64, 20, np.random.default_rng(0))
        result = threshold_query(
            pop, 8, algorithm="2tbins", collision_model="2+", seed=1
        )
        assert result.decision

    def test_invalid_collision_model(self):
        pop = Population.from_count(8, 2)
        with pytest.raises(ValueError, match="collision_model"):
            threshold_query(pop, 1, collision_model="3+")

    def test_accepts_prebuilt_model(self):
        pop = Population.from_count(32, 10, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        result = threshold_query(model, 5, algorithm="2tbins", seed=2)
        assert result.decision
        assert model.queries_used == result.queries

    def test_oracle_x_hint_inferred_from_population(self):
        pop = Population.from_count(32, 10, np.random.default_rng(0))
        result = threshold_query(pop, 5, algorithm="oracle", seed=2)
        assert result.decision

    def test_deterministic_for_fixed_seed(self):
        pop = Population.from_count(64, 12, np.random.default_rng(0))
        a = threshold_query(pop, 8, seed=9)
        b = threshold_query(pop, 8, seed=9)
        assert a.queries == b.queries


class TestReliabilityKwargs:
    """threshold_query's retry_policy= / reliable= / fault_plan= seams."""

    def test_reliable_shortcut(self):
        pop = Population.from_count(64, 20, np.random.default_rng(0))
        result = threshold_query(
            pop, 8, algorithm="2tbins", reliable="krepeat", seed=3
        )
        assert result.decision
        assert result.reliability is not None

    def test_retry_policy_instance(self):
        pop = Population.from_count(64, 20, np.random.default_rng(0))
        result = threshold_query(
            pop, 8, algorithm="2tbins",
            retry_policy=KRepeatConfirm(repeats=3), seed=3,
        )
        assert result.decision

    def test_reliable_and_retry_policy_conflict(self):
        pop = Population.from_count(8, 2)
        with pytest.raises(ValueError, match="not both"):
            threshold_query(
                pop, 1, reliable="krepeat", retry_policy=KRepeatConfirm()
            )

    def test_fault_plan_none_matches_default(self):
        pop = Population.from_count(64, 12, np.random.default_rng(0))
        plain = threshold_query(pop, 8, algorithm="2tbins", seed=9)
        explicit = threshold_query(
            pop, 8, algorithm="2tbins", seed=9, fault_plan=FaultPlan.none()
        )
        assert plain.queries == explicit.queries
        assert plain.decision == explicit.decision

    def test_fault_plan_with_retry_policy(self):
        from repro.faults.injectors import VerdictFlip

        pop = Population.from_count(64, 20, np.random.default_rng(0))
        plan = FaultPlan([VerdictFlip(p_drop=0.2, only_single=True)], seed=4)
        result = threshold_query(
            pop, 8, algorithm="2tbins", seed=3,
            fault_plan=plan, reliable="krepeat",
        )
        assert result.decision in (True, False)
