"""Failure-injection properties: the one-sided error structure of RCD.

A detection failure (radio irregularity, interference) can only make a
non-empty bin *read silent*.  Silence eliminates candidates, which can
only bias the verdict toward *false*.  Therefore, under ANY
detection-failure model:

* exact tcast algorithms may return false negatives, but NEVER false
  positives;
* when the truth is already *false*, the verdict is always correct.

These are the abstract-model counterparts of the testbed's Fig 4 error
profile, checked across the whole algorithm family.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Abns,
    ExponentialIncrease,
    ProbabilisticAbns,
    TwoTBins,
)
from repro.core.counting import AdaptiveSplittingCounter
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population

ALGOS = {
    "2tBins": lambda: TwoTBins(),
    "ExpIncrease": lambda: ExponentialIncrease(),
    "ABNS(2t)": lambda: Abns(p0_multiple=2.0),
    "ProbABNS": lambda: ProbabilisticAbns(),
}


@pytest.mark.parametrize("algo_name", sorted(ALGOS))
@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=64),
    miss=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=5000),
    data=st.data(),
)
def test_detection_failures_never_cause_false_positives(
    algo_name, n, miss, seed, data
):
    x = data.draw(st.integers(min_value=0, max_value=n))
    t = data.draw(st.integers(min_value=0, max_value=n))
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    model = OnePlusModel(
        pop,
        np.random.default_rng(seed + 1),
        max_queries=500 * max(n, 1),
        detection_failure=lambda k: miss,
    )
    result = ALGOS[algo_name]().decide(
        model, t, np.random.default_rng(seed + 2)
    )
    if result.decision:
        assert pop.truth(t), (
            f"{algo_name}: false positive with miss={miss} at "
            f"n={n}, x={x}, t={t}"
        )
    if not pop.truth(t):
        assert not result.decision


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=64),
    miss=st.floats(min_value=0.0, max_value=0.9),
    seed=st.integers(min_value=0, max_value=5000),
    data=st.data(),
)
def test_counting_never_overcounts_under_failures(n, miss, seed, data):
    """In ``verify_inferred`` mode the splitting counter's tally is a
    certified lower bound even with lossy detection: every reported
    positive produced real observed activity.

    (The default mode trusts the classic head-silent-implies-tail-nonempty
    inference, which lossy detection can invalidate -- that is why the
    verifying mode exists; see the counter's docstring.)"""
    x = data.draw(st.integers(min_value=0, max_value=n))
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    model = OnePlusModel(
        pop,
        np.random.default_rng(seed + 1),
        max_queries=500 * max(n, 1),
        detection_failure=lambda k: miss,
    )
    result = AdaptiveSplittingCounter(verify_inferred=True).count(
        model, np.random.default_rng(seed + 2)
    )
    assert result.count <= x
    assert all(pop.is_positive(v) for v in result.positives)


def test_high_miss_rate_biases_toward_false():
    """With a 60% miss rate and x barely above t, most runs report false
    (never true-on-false): measured error is one-sided."""
    n, x, t = 64, 20, 16
    pop = Population.from_count(n, x, np.random.default_rng(0))
    false_negatives = 0
    for seed in range(60):
        model = OnePlusModel(
            pop,
            np.random.default_rng(seed),
            max_queries=50_000,
            detection_failure=lambda k: 0.6,
        )
        result = TwoTBins().decide(model, t, np.random.default_rng(seed + 1))
        if not result.decision:
            false_negatives += 1
    assert false_negatives > 30
