"""Unit tests for the online positive-count estimator (Eq 6)."""

from __future__ import annotations

import pytest

from repro.analytic.bins import expected_empty_bins
from repro.core.estimator import PositiveCountEstimator


def test_initial_value():
    est = PositiveCountEstimator(32.0)
    assert est.value == 32.0
    assert est.history == [32.0]


def test_rejects_negative_initial():
    with pytest.raises(ValueError):
        PositiveCountEstimator(-1.0)


def test_update_recovers_true_p_from_expectation():
    est = PositiveCountEstimator(1.0)
    p_true = 12
    b = 16
    e = expected_empty_bins(b, p_true)
    est.update(round(e), b, candidates=1000)
    assert est.value == pytest.approx(p_true, abs=1.5)


def test_update_clamps_to_candidates():
    est = PositiveCountEstimator(5.0)
    est.update(0, 8, candidates=20)  # raw estimate would be large
    assert est.value <= 20


def test_all_empty_estimates_zero():
    est = PositiveCountEstimator(10.0)
    est.update(8, 8, candidates=100)
    assert est.value == 0.0


def test_history_accumulates():
    est = PositiveCountEstimator(4.0)
    est.update(2, 4, candidates=50)
    est.update(1, 4, candidates=50)
    assert len(est.history) == 3


def test_update_validation():
    est = PositiveCountEstimator(4.0)
    with pytest.raises(ValueError):
        est.update(1, 0, candidates=10)
    with pytest.raises(ValueError):
        est.update(5, 4, candidates=10)
    with pytest.raises(ValueError):
        est.update(-1, 4, candidates=10)
    with pytest.raises(ValueError):
        est.update(1, 4, candidates=-1)


def test_escalate_raises_value():
    est = PositiveCountEstimator(4.0)
    est.escalate(10.0)
    assert est.value == 10.0


def test_escalate_never_lowers():
    est = PositiveCountEstimator(12.0)
    est.escalate(5.0)
    assert est.value == 12.0
    assert len(est.history) == 1  # no-op escalations are not recorded


def test_monte_carlo_estimate_converges_near_x():
    """Statistical consistency: across many random rounds, the Eq 6
    estimate centres near the true positive count."""
    import numpy as np

    from repro.group_testing.binning import partition_random
    from repro.group_testing.population import Population

    n, x, b = 256, 24, 40
    rng = np.random.default_rng(0)
    pop = Population.from_count(n, x, rng)
    estimates = []
    for _ in range(300):
        bins = partition_random(list(range(n)), b, rng)
        empty = sum(1 for m in bins if pop.count_positives(m) == 0)
        est = PositiveCountEstimator(1.0)
        estimates.append(est.update(empty, len(bins), candidates=n))
    assert abs(float(np.mean(estimates)) - x) < x * 0.15
