"""Behavioural tests for ABNS and the probabilistic-probe variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic.bins import optimal_bins
from repro.core.abns import Abns, AbnsBinPolicy, ProbabilisticAbns
from repro.core.two_t_bins import TwoTBins
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population


def run(algo, n, x, t, seed=0):
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    model = OnePlusModel(pop, np.random.default_rng(seed + 1))
    return algo.decide(model, t, np.random.default_rng(seed + 2)), pop


class TestConstruction:
    def test_requires_exactly_one_p0_spec(self):
        with pytest.raises(ValueError):
            Abns()
        with pytest.raises(ValueError):
            Abns(p0=4.0, p0_multiple=1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Abns(p0=-1.0)
        with pytest.raises(ValueError):
            Abns(p0_multiple=-0.5)
        with pytest.raises(ValueError):
            Abns(p0=1.0, stagnation_limit=0)

    def test_names(self):
        assert Abns(p0=4.0).name == "ABNS(p0=4)"
        assert Abns(p0_multiple=2.0).name == "ABNS(p0=2t)"

    def test_with_threshold_multiple(self):
        algo = Abns.with_threshold_multiple(1.0)
        assert "1t" in algo.name


class TestBinPolicy:
    def test_first_round_uses_p0_plus_one(self):
        result, _ = run(Abns(p0=6.0), 128, 3, 16, seed=2)
        assert result.history[0].bins_requested == optimal_bins(6.0) == 7

    def test_p0_multiple_resolves_against_threshold(self):
        result, _ = run(Abns(p0_multiple=2.0), 128, 3, 8, seed=2)
        # p0 = 16 -> 17 bins
        assert result.history[0].bins_requested == 17

    def test_p0_clamped_to_population(self):
        result, _ = run(Abns(p0=500.0), 32, 3, 4, seed=2)
        assert result.history[0].bins_requested <= 32

    def test_hybrid_policy_caps_at_2t_in_confirmation_regime(self):
        algo = Abns(p0_multiple=2.0, policy=AbnsBinPolicy.HYBRID)
        result, _ = run(algo, 128, 100, 8, seed=3)
        for rec in result.history:
            assert rec.bins_requested <= 2 * 8

    def test_paper_policy_tracks_p_plus_one(self):
        algo = Abns(p0=4.0, policy=AbnsBinPolicy.PAPER)
        result, _ = run(algo, 128, 60, 8, seed=3)
        # Under the PAPER policy every requested bin count is estimate+1,
        # clamped to the candidate count at the start of that round; the
        # estimate recorded on a round is the one that sized it.
        estimates = [rec.p_estimate for rec in result.history]
        survivors = [128] + [rec.candidates_after for rec in result.history]
        requested = [rec.bins_requested for rec in result.history]
        assert requested[0] == 5
        for est, cand, req in zip(estimates, survivors, requested):
            assert req == min(max(cand, 1), optimal_bins(est))

    def test_estimates_recorded_in_history(self):
        result, _ = run(Abns(p0_multiple=1.0), 128, 10, 16, seed=5)
        assert all(rec.p_estimate is not None for rec in result.history)


class TestAdaptivity:
    def test_estimate_tracks_x_upward(self):
        """Starting with a tiny p0 on a dense population, the estimate
        grows instead of looping."""
        result, pop = run(Abns(p0=1.0), 128, 90, 16, seed=7)
        assert result.decision
        ests = [rec.p_estimate for rec in result.history]
        assert ests[-1] > ests[0]

    def test_stagnation_guard_escalates(self):
        algo = Abns(p0=0.0, stagnation_limit=1)
        result, _ = run(algo, 64, 64, 8, seed=9)
        assert result.decision

    def test_beats_2tbins_for_sparse_populations(self):
        n, t, x = 128, 16, 0
        abns_costs, two_costs = [], []
        for seed in range(30):
            r, _ = run(Abns(p0_multiple=1.0), n, x, t, seed=seed)
            abns_costs.append(r.queries)
            r2, _ = run(TwoTBins(), n, x, t, seed=seed)
            two_costs.append(r2.queries)
        assert np.mean(abns_costs) < np.mean(two_costs)


class TestProbabilisticAbns:
    def test_probe_is_charged(self):
        """Total cost includes the probe query."""
        pop = Population.from_count(64, 0, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        result = ProbabilisticAbns().decide(model, 8, np.random.default_rng(2))
        assert result.queries == model.queries_used
        assert result.history[0].bins_queried == 1  # the probe record

    def test_silent_probe_routes_to_abns_quarter_t(self):
        """With x = 0 the probe is always silent; round 1 after the probe
        must use ABNS(p0=t/4) sized bins = t/4 + 1."""
        t = 16
        result_histories = []
        for seed in range(5):
            pop = Population.from_count(128, 0, np.random.default_rng(seed))
            model = OnePlusModel(pop, np.random.default_rng(seed))
            result = ProbabilisticAbns().decide(
                model, t, np.random.default_rng(seed)
            )
            result_histories.append(result.history)
        for history in result_histories:
            assert history[1].bins_requested == optimal_bins(t / 4.0)

    def test_nonempty_probe_routes_to_2tbins(self):
        """With x = n the probe is (almost surely) non-empty; the rounds
        after the probe must use 2t bins."""
        t = 16
        pop = Population.from_count(128, 128, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        result = ProbabilisticAbns().decide(model, t, np.random.default_rng(2))
        assert result.history[1].bins_requested == 2 * t

    def test_trivial_thresholds(self):
        pop = Population.from_count(16, 4, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        algo = ProbabilisticAbns()
        assert algo.decide(model, 0, np.random.default_rng(2)).decision
        assert not algo.decide(model, 17, np.random.default_rng(2)).decision

    def test_rejects_negative_threshold(self):
        pop = Population.from_count(8, 1, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        with pytest.raises(ValueError):
            ProbabilisticAbns().decide(model, -1, np.random.default_rng(2))

    def test_rounds_include_probe(self):
        pop = Population.from_count(64, 10, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        result = ProbabilisticAbns().decide(model, 8, np.random.default_rng(2))
        assert result.rounds == len(result.history)
