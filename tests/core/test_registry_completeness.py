"""The algorithm registry must cover every decider the package exports.

Guards the api_redesign contract: any threshold-deciding class exported
from :mod:`repro.core` is reachable through :func:`repro.api.make_algorithm`
by name, reliable-wrapping works uniformly, the removed legacy aliases
fail loudly with the replacement spelled out, and the non-decider helpers
(counting, interval) are listed but correctly refuse decider-only
features.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro.core as core
from repro.api import (
    ALGORITHMS,
    REGISTRY,
    RegistryFactory,
    algorithm_factory,
    make_algorithm,
)
from repro.core import (
    Abns,
    AdaptiveSplittingCounter,
    BatchThresholdDecider,
    ChernoffConfirm,
    ExponentialIncrease,
    FourFoldIncrease,
    IntervalQuery,
    KRepeatConfirm,
    OracleBins,
    PauseAndContinue,
    ProbabilisticAbns,
    ProbabilisticThreshold,
    ReliableThreshold,
    ThresholdDecider,
    TwoTBins,
)
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population

#: Every decider class repro.core exports -> the registry name that
#: builds it.  A new exported decider must be added here AND to the
#: registry; the completeness test below enforces the pairing.
DECIDER_CLASSES = {
    TwoTBins: "2tbins",
    ExponentialIncrease: "exponential",
    Abns: "abns",
    ProbabilisticAbns: "prob-abns",
    PauseAndContinue: "pause-and-continue",
    FourFoldIncrease: "four-fold",
    OracleBins: "oracle",
    ProbabilisticThreshold: "prob-threshold",
}

DECIDER_NAMES = sorted(
    key for key, spec in REGISTRY.items() if spec.decider
)
HELPER_NAMES = sorted(
    key for key, spec in REGISTRY.items() if not spec.decider
)


def _instance(name):
    return make_algorithm(name, x=5)


class TestCompleteness:
    @pytest.mark.parametrize(
        "cls,name", sorted(DECIDER_CLASSES.items(), key=lambda kv: kv[1])
    )
    def test_every_exported_decider_is_registered(self, cls, name):
        algo = _instance(name)
        assert isinstance(algo, cls)
        assert isinstance(algo, ThresholdDecider)

    def test_no_unregistered_decider_classes(self):
        """Any core export with a decide() method must be in the map."""
        known = set(DECIDER_CLASSES) | {
            ReliableThreshold,  # reachable via the reliable- prefix
            AdaptiveSplittingCounter,  # helper: count(), not a decider
            IntervalQuery,  # helper: interval decide(), not a decider
        }
        for attr in core.__all__:
            obj = getattr(core, attr)
            if not isinstance(obj, type) or not hasattr(obj, "decide"):
                continue
            if getattr(obj, "_is_protocol", False) or obj.__name__ in (
                "ThresholdAlgorithm",
            ):
                continue  # the structural/abstract contracts themselves
            assert obj in known, (
                f"repro.core exports decider {obj.__name__} but it is "
                "not reachable from the registry"
            )

    def test_helpers_listed_but_not_deciders(self):
        assert HELPER_NAMES == ["counting", "interval"]
        assert isinstance(_instance("counting"), AdaptiveSplittingCounter)
        assert isinstance(_instance("interval"), IntervalQuery)

    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_vectorized_flag_matches_batch_protocol(self, name):
        """spec.vectorized must agree with the instance's batch support."""
        spec = REGISTRY[name]
        algo = _instance(name)
        supports_batch = isinstance(algo, BatchThresholdDecider) and hasattr(
            algo, "decide_batch"
        )
        assert spec.vectorized == supports_batch, (
            f"registry entry {name!r} declares vectorized={spec.vectorized} "
            f"but the instance {'does' if supports_batch else 'does not'} "
            "implement BatchThresholdDecider"
        )


class TestReliableWrapping:
    @pytest.mark.parametrize("name", DECIDER_NAMES)
    def test_reliable_prefix_wraps_every_decider(self, name):
        algo = _instance(f"reliable-{name}")
        assert isinstance(algo, ReliableThreshold)
        assert algo.name.startswith("reliable(")

    def test_reliable_kwarg_shortcuts(self):
        krepeat = make_algorithm("2tbins", reliable="krepeat")
        chernoff = make_algorithm("2tbins", reliable="chernoff")
        assert isinstance(krepeat.policy, KRepeatConfirm)
        assert isinstance(chernoff.policy, ChernoffConfirm)

    def test_retry_policy_instance(self):
        algo = make_algorithm("2tbins", retry_policy=KRepeatConfirm(repeats=3))
        assert isinstance(algo, ReliableThreshold)
        assert algo.policy.repeats == 3

    def test_both_reliable_and_retry_policy_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            make_algorithm(
                "2tbins", reliable="krepeat", retry_policy=KRepeatConfirm()
            )

    def test_unknown_reliable_shortcut_rejected(self):
        with pytest.raises(ValueError, match="krepeat"):
            make_algorithm("2tbins", reliable="bogus")

    @pytest.mark.parametrize("name", HELPER_NAMES)
    def test_helpers_refuse_reliable(self, name):
        with pytest.raises(ValueError, match="not a threshold decider"):
            make_algorithm(name, reliable="krepeat")

    def test_wrapped_algorithm_still_decides(self):
        pop = Population.from_count(64, 20, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        algo = make_algorithm("2tbins", reliable="chernoff")
        result = algo.decide(model, 8, np.random.default_rng(2))
        assert result.decision


class TestRemovedAliases:
    @pytest.mark.parametrize(
        "alias,replacement",
        [
            ("abns-t", "make_algorithm('abns', p0_multiple=1.0)"),
            ("abns-2t", "make_algorithm('abns', p0_multiple=2.0)"),
        ],
    )
    def test_alias_raises_naming_replacement(self, alias, replacement):
        with pytest.raises(KeyError) as excinfo:
            make_algorithm(alias)
        message = str(excinfo.value)
        assert "removed" in message
        assert replacement in message

    def test_unknown_name_lists_registry_only(self):
        with pytest.raises(KeyError) as excinfo:
            make_algorithm("nope")
        message = str(excinfo.value)
        assert "2tbins" in message
        assert "abns-t" not in message

    @pytest.mark.parametrize(
        "access",
        [
            lambda: ALGORITHMS["2tbins"],
            lambda: "2tbins" in ALGORITHMS,
            lambda: list(ALGORITHMS),
            lambda: len(ALGORITHMS),
            lambda: bool(ALGORITHMS),
        ],
        ids=["getitem", "contains", "iter", "len", "bool"],
    )
    def test_legacy_algorithms_table_raises(self, access):
        with pytest.raises(RuntimeError, match="make_algorithm"):
            access()


class TestFactories:
    def test_factory_is_picklable(self):
        factory = algorithm_factory("abns", p0_multiple=2.0)
        clone = pickle.loads(pickle.dumps(factory))
        assert isinstance(clone, RegistryFactory)
        assert clone(3).name == factory(3).name

    def test_factory_validates_eagerly(self):
        with pytest.raises(KeyError):
            algorithm_factory("nope")
        with pytest.raises(ValueError):
            algorithm_factory("2tbins", reliable="bogus")

    def test_factory_call_x_precedence(self):
        factory = algorithm_factory("oracle", x=2)
        assert isinstance(factory(), OracleBins)
        assert factory(7)._x == 7
        assert factory()._x == 2
