"""Unit tests for result records."""

from __future__ import annotations

import pytest

from repro.core.result import RoundRecord, ThresholdResult


def _record(**kw):
    base = dict(
        index=0,
        bins_requested=4,
        bins_queried=4,
        silent_bins=2,
        captured=0,
        evidence=1,
        eliminated=10,
        candidates_after=20,
    )
    base.update(kw)
    return RoundRecord(**base)


class TestThresholdResult:
    def test_summary_true(self):
        r = ThresholdResult(
            decision=True, queries=12, rounds=2, threshold=4, algorithm="2tBins"
        )
        s = r.summary()
        assert "x >= t" in s and "12 queries" in s and "2tBins" in s

    def test_summary_false(self):
        r = ThresholdResult(decision=False, queries=3, rounds=1, threshold=4)
        assert "x < t" in r.summary()

    def test_eliminated_total(self):
        r = ThresholdResult(
            decision=True,
            queries=5,
            rounds=2,
            threshold=2,
            history=(_record(eliminated=10), _record(index=1, eliminated=5)),
        )
        assert r.eliminated_total == 15

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            ThresholdResult(decision=True, queries=-1, rounds=0, threshold=1)
        with pytest.raises(ValueError):
            ThresholdResult(decision=True, queries=0, rounds=-1, threshold=1)

    def test_defaults(self):
        r = ThresholdResult(decision=False, queries=0, rounds=0, threshold=0)
        assert r.exact
        assert r.confirmed_positives == 0
        assert r.history == ()

    def test_frozen(self):
        r = ThresholdResult(decision=True, queries=1, rounds=1, threshold=1)
        with pytest.raises(AttributeError):
            r.queries = 5  # type: ignore[misc]


class TestRoundRecord:
    def test_fields(self):
        rec = _record(p_estimate=3.5)
        assert rec.p_estimate == 3.5
        assert rec.bins_requested == 4

    def test_default_estimate_none(self):
        assert _record().p_estimate is None
