"""Tests for the bimodal probabilistic scheme (Sec VI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic.bimodal import BimodalSpec
from repro.core.probabilistic import ProbabilisticThreshold
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population
from repro.workloads.bimodal import BimodalWorkload

SEPARATED = BimodalSpec(n=128, mu1=16.0, sigma1=0.0, mu2=96.0, sigma2=0.0)


class TestConstruction:
    def test_repeats_from_eq10(self):
        scheme = ProbabilisticThreshold(SEPARATED, delta=0.01)
        assert scheme.repeats == 19

    def test_explicit_repeats_override(self):
        scheme = ProbabilisticThreshold(SEPARATED, repeats=3)
        assert scheme.repeats == 3

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            ProbabilisticThreshold(SEPARATED, repeats=0)

    def test_requires_delta_or_repeats(self):
        with pytest.raises(ValueError):
            ProbabilisticThreshold(SEPARATED, delta=None)

    def test_unseparated_spec_falls_back_to_fixed_budget(self):
        spec = BimodalSpec.symmetric(n=128, d=8, sigma=8)
        scheme = ProbabilisticThreshold(spec, delta=0.05)
        assert scheme.repeats >= 1


class TestDecide:
    def test_cost_is_exactly_r_queries(self, rng):
        pop = Population.from_count(128, 96, rng)
        scheme = ProbabilisticThreshold(SEPARATED, delta=0.05)
        model = OnePlusModel(pop, np.random.default_rng(0))
        result = scheme.decide(model, 64, np.random.default_rng(1))
        assert result.queries == scheme.repeats
        assert result.rounds == scheme.repeats
        assert not result.exact

    def test_cost_independent_of_x(self):
        scheme = ProbabilisticThreshold(SEPARATED, delta=0.05)
        costs = set()
        for x in (0, 16, 64, 96, 128):
            pop = Population.from_count(128, x, np.random.default_rng(0))
            model = OnePlusModel(pop, np.random.default_rng(1))
            costs.add(scheme.decide(model, 64, np.random.default_rng(2)).queries)
        assert costs == {scheme.repeats}

    def test_activity_mode_detected(self):
        scheme = ProbabilisticThreshold(SEPARATED, delta=0.01)
        pop = Population.from_count(128, 96, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        detail = scheme.decide_detailed(model, 64, np.random.default_rng(2))
        assert detail.result.decision
        assert detail.nonempty_probes > detail.midpoint

    def test_quiet_mode_detected(self):
        scheme = ProbabilisticThreshold(SEPARATED, delta=0.01)
        pop = Population.from_count(128, 16, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        detail = scheme.decide_detailed(model, 64, np.random.default_rng(2))
        assert not detail.result.decision

    def test_rejects_negative_threshold(self, rng):
        scheme = ProbabilisticThreshold(SEPARATED, repeats=2)
        pop = Population.from_count(128, 5, rng)
        model = OnePlusModel(pop, np.random.default_rng(0))
        with pytest.raises(ValueError):
            scheme.decide(model, -1, np.random.default_rng(1))


class TestAccuracyGuarantee:
    def test_measured_accuracy_beats_delta_when_separated(self):
        """The Eq 10 guarantee, verified by Monte Carlo: accuracy must
        exceed 1 - delta for a cleanly separated mixture."""
        delta = 0.05
        spec = BimodalSpec.symmetric(n=128, d=48, sigma=8)
        scheme = ProbabilisticThreshold(spec, delta=delta)
        workload = BimodalWorkload(spec)
        rng = np.random.default_rng(3)
        correct = 0
        runs = 400
        for _ in range(runs):
            pop, draw = workload.draw_population(rng)
            model = OnePlusModel(pop, rng)
            result = scheme.decide(model, 64, rng)
            correct += result.decision == draw.activity
        assert correct / runs >= 1 - delta

    def test_accuracy_improves_with_repeats(self):
        spec = BimodalSpec.symmetric(n=128, d=24, sigma=8)
        workload = BimodalWorkload(spec)

        def accuracy(r: int) -> float:
            scheme = ProbabilisticThreshold(spec, repeats=r)
            rng = np.random.default_rng(9)
            hits = 0
            for _ in range(300):
                pop, draw = workload.draw_population(rng)
                model = OnePlusModel(pop, rng)
                hits += scheme.decide(model, 64, rng).decision == draw.activity
            return hits / 300

        assert accuracy(9) >= accuracy(1) - 0.02
