"""Unit tests for the shared round-execution machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import RoundOutcome, SessionState, ThresholdAlgorithm
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population


class OneBinForever(ThresholdAlgorithm):
    """Deliberately stalling policy: a single bin over everyone, always.

    With any positive present and ``t >= 2`` the single bin is non-empty
    every round, nothing is eliminated, and the session can never
    resolve -- exercising the safety valve.
    """

    name = "one-bin-forever"
    max_rounds = 25

    def _bins_for_round(self, state: SessionState) -> int:
        return 1


class BadPolicy(ThresholdAlgorithm):
    """Returns a non-positive bin count."""

    name = "bad-policy"

    def _bins_for_round(self, state: SessionState) -> int:
        return 0


class RecordingAlgorithm(ThresholdAlgorithm):
    """2t-bins behaviour that records every hook invocation."""

    name = "recording"

    def __init__(self) -> None:
        self.resets = 0
        self.observed: list[RoundOutcome] = []

    def _reset(self, state: SessionState) -> None:
        self.resets += 1

    def _bins_for_round(self, state: SessionState) -> int:
        return max(2, 2 * state.threshold)

    def _observe_round(self, state: SessionState, outcome: RoundOutcome) -> None:
        self.observed.append(outcome)


class TestSessionState:
    def test_resolved(self):
        state = SessionState(candidates=[1, 2], threshold=1)
        assert not state.resolved
        state.decision = False
        assert state.resolved

    def test_remaining_needed(self):
        state = SessionState(candidates=[], threshold=5, confirmed=3)
        assert state.remaining_needed == 2
        state.confirmed = 9
        assert state.remaining_needed == 0


class TestSafetyValves:
    def test_stalling_policy_trips_round_valve(self):
        pop = Population.from_count(16, 4, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        with pytest.raises(RuntimeError, match="safety valve"):
            OneBinForever().decide(model, 2, np.random.default_rng(2))

    def test_nonpositive_bin_count_rejected(self):
        pop = Population.from_count(8, 2, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        with pytest.raises(RuntimeError, match="bin policy"):
            BadPolicy().decide(model, 1, np.random.default_rng(2))


class TestHooks:
    def test_reset_called_once_per_session(self):
        algo = RecordingAlgorithm()
        pop = Population.from_count(32, 10, np.random.default_rng(0))
        for _ in range(3):
            model = OnePlusModel(pop, np.random.default_rng(1))
            algo.decide(model, 4, np.random.default_rng(2))
        assert algo.resets == 3

    def test_observe_round_sees_every_round(self):
        algo = RecordingAlgorithm()
        pop = Population.from_count(64, 2, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        result = algo.decide(model, 8, np.random.default_rng(2))
        assert len(algo.observed) == result.rounds
        total_queried = sum(o.bins_queried for o in algo.observed)
        assert total_queried == result.queries

    def test_round_outcome_progress_flag(self):
        algo = RecordingAlgorithm()
        pop = Population.from_count(64, 0, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        algo.decide(model, 4, np.random.default_rng(2))
        assert all(o.progressed for o in algo.observed)  # silence eliminates

    def test_trivial_sessions_skip_hooks(self):
        algo = RecordingAlgorithm()
        pop = Population.from_count(8, 1, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        algo.decide(model, 0, np.random.default_rng(2))
        assert algo.observed == []


class TestCandidateHygiene:
    def test_duplicate_free_candidate_list_preserved_order(self):
        """The surviving candidate list keeps its original id order so
        deterministic partitioning stays deterministic across rounds."""
        algo = RecordingAlgorithm()
        algo.partition_strategy = "deterministic"
        pop = Population(size=12, positives=frozenset({3, 9}))
        model = OnePlusModel(pop, np.random.default_rng(1))
        result = algo.decide(model, 2, np.random.default_rng(2))
        assert result.decision
