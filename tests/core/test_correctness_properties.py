"""Property-based correctness tests for every exact tcast algorithm.

The central invariant of the paper's exact algorithms: under ideal
radios, for **every** population, threshold, collision model and random
seed, the returned decision equals the ground truth ``x >= t``, and the
query cost respects the theoretical upper bound (for 2tBins) and a
generous safety envelope (for the adaptive variants).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.bounds import upper_bound_queries
from repro.core import (
    Abns,
    AbnsBinPolicy,
    ExponentialIncrease,
    FourFoldIncrease,
    OracleBins,
    PauseAndContinue,
    ProbabilisticAbns,
    TwoTBins,
)
from repro.group_testing.model import KPlusModel, OnePlusModel, TwoPlusModel
from repro.group_testing.population import Population

ALGORITHM_FACTORIES = {
    "2tBins": lambda x: TwoTBins(),
    "ExpIncrease": lambda x: ExponentialIncrease(),
    "ABNS(t)": lambda x: Abns(p0_multiple=1.0),
    "ABNS(2t)": lambda x: Abns(p0_multiple=2.0),
    "ABNS-hybrid-policy": lambda x: Abns(
        p0_multiple=2.0, policy=AbnsBinPolicy.HYBRID
    ),
    "ProbABNS": lambda x: ProbabilisticAbns(),
    "Oracle": lambda x: OracleBins(x),
    "PauseAndContinue": lambda x: PauseAndContinue(),
    "FourFold": lambda x: FourFoldIncrease(),
}

MODEL_FACTORIES = {
    "1+": lambda pop, seed: OnePlusModel(
        pop, np.random.default_rng(seed), max_queries=200 * max(pop.size, 1)
    ),
    "2+": lambda pop, seed: TwoPlusModel(
        pop, np.random.default_rng(seed), max_queries=200 * max(pop.size, 1)
    ),
    "k+4": lambda pop, seed: KPlusModel(
        pop,
        np.random.default_rng(seed),
        k=4,
        max_queries=200 * max(pop.size, 1),
    ),
}


@pytest.mark.parametrize("algo_name", sorted(ALGORITHM_FACTORIES))
@pytest.mark.parametrize("model_name", sorted(MODEL_FACTORIES))
@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=96),
    seed=st.integers(min_value=0, max_value=10_000),
    data=st.data(),
)
def test_always_correct(algo_name, model_name, n, seed, data):
    x = data.draw(st.integers(min_value=0, max_value=n))
    t = data.draw(st.integers(min_value=0, max_value=n + 2))
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    model = MODEL_FACTORIES[model_name](pop, seed + 1)
    algo = ALGORITHM_FACTORIES[algo_name](x)
    result = algo.decide(model, t, np.random.default_rng(seed + 2))
    assert result.decision == pop.truth(t), (
        f"{algo_name}/{model_name} wrong at n={n}, x={x}, t={t}, seed={seed}"
    )
    assert result.queries == model.queries_used
    assert result.exact


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=128),
    seed=st.integers(min_value=0, max_value=10_000),
    data=st.data(),
)
def test_two_t_bins_respects_upper_bound(n, seed, data):
    """2tBins never exceeds the Sec IV-A worst-case query bound."""
    x = data.draw(st.integers(min_value=0, max_value=n))
    t = data.draw(st.integers(min_value=1, max_value=max(1, n)))
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    model = OnePlusModel(pop, np.random.default_rng(seed + 1))
    result = TwoTBins().decide(model, t, np.random.default_rng(seed + 2))
    assert result.queries <= upper_bound_queries(n, t)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=96),
    seed=st.integers(min_value=0, max_value=10_000),
    data=st.data(),
)
def test_two_plus_never_costs_more_budget_violation(n, seed, data):
    """The 2+ model's extra information never breaks correctness, and
    confirmed positives are consistent with the ground truth."""
    x = data.draw(st.integers(min_value=0, max_value=n))
    t = data.draw(st.integers(min_value=1, max_value=max(1, n)))
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    model = TwoPlusModel(pop, np.random.default_rng(seed + 1))
    result = TwoTBins().decide(model, t, np.random.default_rng(seed + 2))
    assert result.decision == pop.truth(t)
    assert result.confirmed_positives <= x


@pytest.mark.parametrize("algo_name", sorted(ALGORITHM_FACTORIES))
def test_threshold_zero_is_trivially_true(algo_name, rng):
    pop = Population.from_count(16, 0, rng)
    model = OnePlusModel(pop, np.random.default_rng(0))
    algo = ALGORITHM_FACTORIES[algo_name](0)
    result = algo.decide(model, 0, np.random.default_rng(1))
    assert result.decision
    assert result.queries == 0


@pytest.mark.parametrize("algo_name", sorted(ALGORITHM_FACTORIES))
def test_threshold_above_population_is_trivially_false(algo_name, rng):
    pop = Population.from_count(16, 16, rng)
    model = OnePlusModel(pop, np.random.default_rng(0))
    algo = ALGORITHM_FACTORIES[algo_name](16)
    result = algo.decide(model, 17, np.random.default_rng(1))
    assert not result.decision
    assert result.queries == 0


@pytest.mark.parametrize("algo_name", sorted(ALGORITHM_FACTORIES))
def test_candidate_subset_restriction(algo_name):
    """Restricting candidates answers the threshold over the subset."""
    pop = Population(size=20, positives=frozenset(range(10)))  # x = 10
    subset = list(range(8, 20))  # contains exactly 2 positives (8, 9)
    algo = ALGORITHM_FACTORIES[algo_name](2)
    model = OnePlusModel(pop, np.random.default_rng(0))
    assert algo.decide(
        model, 2, np.random.default_rng(1), candidates=subset
    ).decision
    model = OnePlusModel(pop, np.random.default_rng(0))
    assert not algo.decide(
        model, 3, np.random.default_rng(1), candidates=subset
    ).decision
