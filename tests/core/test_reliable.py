"""Properties of the reliable-query layer (retry policies + wrapper).

The two ISSUE-mandated properties:

* repeating a silent verdict ``r`` times drives the false-negative
  probability down like ``miss(k)**r`` under the
  :class:`~repro.radio.irregularity.HackMissModel`;
* a :class:`~repro.core.reliable.RetryPolicy`-wrapped algorithm keeps
  ``decision == (x >= t)`` exact on ideal radios.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TwoTBins
from repro.core.reliable import (
    ChernoffConfirm,
    ConfirmingModel,
    KRepeatConfirm,
    NoRetry,
    ReliableThreshold,
)
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population
from repro.radio.irregularity import HackMissModel


class TestPolicies:
    def test_no_retry_is_single_read(self):
        policy = NoRetry()
        assert policy.confirmations(1) == policy.confirmations(100) == 1
        assert policy.residual_miss(1) is None  # no assumption held

    def test_k_repeat_validation(self):
        with pytest.raises(ValueError, match="repeats"):
            KRepeatConfirm(0)
        with pytest.raises(ValueError, match="max_bin_size"):
            KRepeatConfirm(2, max_bin_size=0)
        with pytest.raises(ValueError, match="assumed_p_single"):
            KRepeatConfirm(2, assumed_p_single=1.5)

    def test_k_repeat_bin_size_gate(self):
        policy = KRepeatConfirm(3, max_bin_size=4)
        assert policy.confirmations(4) == 3
        assert policy.confirmations(5) == 1

    def test_k_repeat_residual(self):
        policy = KRepeatConfirm(3, assumed_p_single=0.1)
        assert policy.residual_miss(2) == pytest.approx(1e-3)

    @pytest.mark.parametrize(
        "p,delta,expected_repeats",
        [
            (0.1, 0.01, 2),  # 0.1**2 == 0.01
            (0.1, 0.001, 3),
            (0.05, 0.01, 2),
            (0.5, 0.01, 7),  # 0.5**7 ~ 7.8e-3
        ],
    )
    def test_chernoff_sizing_matches_geometric(self, p, delta, expected_repeats):
        """Eq 9 at eps = 2*ln(1/p) is exactly p**r, so the sized repeat
        count is the smallest r with p**r <= delta."""
        policy = ChernoffConfirm(p, delta=delta)
        assert policy.repeats == expected_repeats
        # Float tolerance: 0.1**2 rounds a hair above 1e-2 while the
        # Eq 9 exp/log path rounds a hair below; both mean "equal".
        assert p**policy.repeats <= delta * (1 + 1e-9)
        assert policy.repeats == 1 or p ** (policy.repeats - 1) > delta

    def test_chernoff_validation(self):
        with pytest.raises(ValueError, match="p_single"):
            ChernoffConfirm(0.0)
        with pytest.raises(ValueError, match="delta"):
            ChernoffConfirm(0.1, delta=0.0)
        with pytest.raises(ValueError, match="max_repeats"):
            ChernoffConfirm(0.1, max_repeats=0)

    def test_chernoff_repeat_cap(self):
        policy = ChernoffConfirm(0.9, delta=1e-9, max_repeats=5)
        assert policy.repeats == 5


class TestGeometricDecay:
    """P(accepted silent | k positives) ~ miss(k)**r."""

    @pytest.mark.parametrize("repeats", [1, 2, 3])
    def test_confirmation_decays_like_miss_power_r(self, repeats):
        p_single = 0.4
        trials = 3000
        miss = HackMissModel(p_single=p_single, decay=0.1).miss_probability
        rng = np.random.default_rng(1000 + repeats)
        pop = Population.from_count(4, 1)  # one lone positive
        accepted_silent = 0
        for _ in range(trials):
            model = OnePlusModel(pop, rng, detection_failure=miss)
            confirming = ConfirmingModel(model, KRepeatConfirm(repeats))
            accepted_silent += confirming.query([0, 1, 2, 3]).silent
        rate = accepted_silent / trials
        expected = p_single**repeats
        sigma = np.sqrt(expected * (1 - expected) / trials)
        assert rate == pytest.approx(expected, abs=4 * sigma + 0.005)

    def test_recovered_faults_counted(self):
        """With p=0.4 and 2 confirmations, a substantial share of first
        reads that miss are recovered by the re-query."""
        p_single = 0.4
        miss = HackMissModel(p_single=p_single, decay=0.1).miss_probability
        rng = np.random.default_rng(7)
        pop = Population.from_count(4, 1)
        recovered = 0
        for _ in range(500):
            model = OnePlusModel(pop, rng, detection_failure=miss)
            confirming = ConfirmingModel(model, KRepeatConfirm(2))
            confirming.query([0, 1, 2, 3])
            recovered += confirming.recovered_faults
        # E[recovered] = p*(1-p)*500 = 120; allow wide slack.
        assert 60 <= recovered <= 180


class TestExactOnIdealRadios:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        data=st.data(),
        t=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_wrapped_decision_is_exact(self, n, data, t, seed):
        """On an ideal radio the wrapper preserves exactness: silence is
        truthful, so confirmation can never change an answer."""
        x = data.draw(st.integers(min_value=0, max_value=n))
        pop = Population.from_count(n, x, np.random.default_rng(seed))
        model = OnePlusModel(pop, np.random.default_rng(seed + 1))
        wrapped = ReliableThreshold(TwoTBins(), ChernoffConfirm(0.1, delta=0.001))
        result = wrapped.decide(model, t, np.random.default_rng(seed + 2))
        assert result.decision == (x >= t)
        info = result.reliability
        assert info is not None
        assert info.recovered_faults == 0  # nothing to recover
        assert not info.degraded

    def test_wrapped_run_matches_unwrapped_decision_path(self):
        """Same seeds, ideal radio: wrapped and unwrapped runs agree on
        decision and round structure; only the charged cost grows."""
        pop = Population.from_count(32, 6, np.random.default_rng(3))
        t = 5
        plain_model = OnePlusModel(pop, np.random.default_rng(11))
        plain = TwoTBins().decide(plain_model, t, np.random.default_rng(17))
        wrapped_model = OnePlusModel(pop, np.random.default_rng(11))
        wrapped = ReliableThreshold(TwoTBins(), KRepeatConfirm(3)).decide(
            wrapped_model, t, np.random.default_rng(17)
        )
        assert wrapped.decision == plain.decision
        assert wrapped.rounds == plain.rounds
        assert wrapped.queries > plain.queries  # confirmation is charged


class TestReliableThresholdPlumbing:
    def test_composite_name_and_metadata(self):
        pop = Population.from_count(16, 4)
        model = OnePlusModel(pop, np.random.default_rng(0))
        result = ReliableThreshold(TwoTBins(), KRepeatConfirm(2)).decide(
            model, 3, np.random.default_rng(1)
        )
        assert result.algorithm == "reliable(2tBins)"
        info = result.reliability
        assert info is not None
        assert info.retries >= info.accepted_silent_bins  # r=2: 1 retry each

    def test_true_verdict_residual_bound_is_zero(self):
        pop = Population.from_count(16, 8)
        model = OnePlusModel(pop, np.random.default_rng(0))
        result = ReliableThreshold(
            TwoTBins(), ChernoffConfirm(0.1)
        ).decide(model, 2, np.random.default_rng(1))
        assert result.decision is True
        assert result.reliability.residual_fn_bound == 0.0

    def test_false_verdict_bound_unions_accepted_bins(self):
        pop = Population.from_count(16, 1)
        model = OnePlusModel(pop, np.random.default_rng(0))
        policy = ChernoffConfirm(0.1, delta=0.001)
        result = ReliableThreshold(TwoTBins(), policy).decide(
            model, 4, np.random.default_rng(1)
        )
        assert result.decision is False
        bound = result.reliability.residual_fn_bound
        k = result.reliability.accepted_silent_bins
        assert bound is not None and 0.0 < bound <= k * 0.1**policy.repeats

    def test_no_assumption_means_no_bound(self):
        pop = Population.from_count(16, 1)
        model = OnePlusModel(pop, np.random.default_rng(0))
        result = ReliableThreshold(TwoTBins(), KRepeatConfirm(2)).decide(
            model, 4, np.random.default_rng(1)
        )
        assert result.decision is False
        assert result.reliability.residual_fn_bound is None

    def test_retries_charged_on_underlying_ledger(self):
        pop = Population.from_count(16, 1)
        model = OnePlusModel(pop, np.random.default_rng(0))
        confirming = ConfirmingModel(model, KRepeatConfirm(2))
        confirming.query([4, 5, 6])  # silent bin: 1 + 1 confirmation
        assert model.queries_used == 2
        assert confirming.queries_used == 2


class _RecordingSilentModel:
    """A stub model that records every query and always reads silent."""

    def __init__(self):
        self.calls = []

    @property
    def queries_used(self):
        return len(self.calls)

    @property
    def population_size(self):
        return 8

    def query(self, members):
        from repro.group_testing.model import BinObservation, ObservationKind

        self.calls.append(list(members))
        return BinObservation(kind=ObservationKind.SILENT, min_positives=0)


class TestEmptyBinCost:
    """Sec IV-C: empty bins never occupy a time slot.

    The wrapper must answer a member-less bin locally -- zero charged
    queries, zero confirmation reads -- and the retry policies must never
    even be consulted about a ``bin_size == 0``.
    """

    def test_empty_bin_charges_zero_and_skips_the_model(self):
        stub = _RecordingSilentModel()
        confirming = ConfirmingModel(stub, KRepeatConfirm(3))
        obs = confirming.query([])
        assert obs.silent and obs.min_positives == 0
        assert stub.calls == []  # the substrate never saw the bin
        assert confirming.queries_used == 0
        assert confirming.retries == 0
        assert confirming.accepted_silent_bins == 0

    def test_empty_bin_charges_zero_on_a_real_model(self):
        pop = Population.from_count(8, 2)
        model = OnePlusModel(pop, np.random.default_rng(0))
        confirming = ConfirmingModel(model, ChernoffConfirm(0.1))
        assert confirming.query([]).silent
        assert model.queries_used == 0

    def test_empty_bin_does_not_touch_the_residual_bound(self):
        stub = _RecordingSilentModel()
        confirming = ConfirmingModel(stub, ChernoffConfirm(0.1, delta=0.001))
        confirming.query([])
        # No accepted-silent bin was recorded, so a false decision's
        # union bound stays the empty product (exactly zero).
        assert confirming.residual_fn_bound(False) == 0.0

    def test_nonempty_silent_bins_still_confirm(self):
        stub = _RecordingSilentModel()
        confirming = ConfirmingModel(stub, KRepeatConfirm(3))
        confirming.query([1, 2])
        assert stub.calls == [[1, 2]] * 3  # first read + 2 confirmations
        assert confirming.retries == 2
        assert confirming.accepted_silent_bins == 1

    @pytest.mark.parametrize(
        "policy",
        [NoRetry(), KRepeatConfirm(2), ChernoffConfirm(0.1)],
        ids=["no-retry", "k-repeat", "chernoff"],
    )
    def test_policies_reject_zero_member_consultations(self, policy):
        with pytest.raises(ValueError, match="empty bins"):
            policy.confirmations(0)
        with pytest.raises(ValueError, match="empty bins"):
            policy.residual_miss(0)
        with pytest.raises(ValueError, match="empty bins"):
            policy.confirmations(-1)
