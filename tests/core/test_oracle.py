"""Behavioural tests for the oracle bin-selection baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.abns import Abns
from repro.core.oracle import OracleBins
from repro.core.two_t_bins import TwoTBins
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population


def run(algo, n, x, t, seed=0):
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    model = OnePlusModel(pop, np.random.default_rng(seed + 1))
    return algo.decide(model, t, np.random.default_rng(seed + 2))


def mean_cost(factory, n, x, t, runs=40):
    return float(
        np.mean([run(factory(x), n, x, t, seed=s).queries for s in range(runs)])
    )


def test_rejects_negative_x():
    with pytest.raises(ValueError):
        OracleBins(-1)


def test_x_zero_resolves_in_one_query():
    """b = 1: a single all-candidates bin reveals total silence."""
    result = run(OracleBins(0), 128, 0, 16)
    assert not result.decision
    assert result.queries == 1


def test_x_equals_n_resolves_in_t_queries():
    result = run(OracleBins(128), 128, 128, 16)
    assert result.decision
    assert result.queries == 16


def test_first_round_bins_match_formula():
    result = run(OracleBins(4), 128, 4, 16, seed=1)
    assert result.history[0].bins_requested == 5  # x + 1 regime


def test_oracle_at_most_2tbins_on_average_at_extremes():
    n, t = 128, 16
    for x in (0, 2, 100, 128):
        oracle = mean_cost(lambda x: OracleBins(x), n, x, t)
        two = mean_cost(lambda x: TwoTBins(), n, x, t)
        assert oracle <= two + 1.0, f"x={x}: oracle {oracle} vs 2tBins {two}"


def test_oracle_lower_bounds_abns_for_small_x():
    """Fig 5/6's framing: the oracle is the target the adaptive variants
    chase in the x <= t/2 region."""
    n, t = 128, 16
    for x in (0, 4, 8):
        oracle = mean_cost(lambda x: OracleBins(x), n, x, t)
        abns = mean_cost(lambda x: Abns(p0_multiple=2.0), n, x, t)
        assert oracle <= abns + 2.0, f"x={x}"
