"""Behavioural tests for the Exponential Increase algorithm (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exponential import ExponentialIncrease
from repro.core.two_t_bins import TwoTBins
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population


def run(n, x, t, seed=0, **kwargs):
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    model = OnePlusModel(pop, np.random.default_rng(seed + 1))
    algo = ExponentialIncrease(**kwargs)
    return algo.decide(model, t, np.random.default_rng(seed + 2))


def test_bin_count_doubles_each_round():
    result = run(256, 6, 8, seed=4)
    requested = [rec.bins_requested for rec in result.history]
    assert requested == [2 * 2**i for i in range(len(requested))]


def test_cheap_for_x_much_less_than_t():
    """x=1, t=2 was the paper's motivating example: 2tBins pays >= 2t in
    round one; exponential increase resolves far cheaper on average."""
    n, t, x = 256, 16, 0
    exp_costs, two_costs = [], []
    for seed in range(30):
        exp_costs.append(run(n, x, t, seed=seed).queries)
        pop = Population.from_count(n, x, np.random.default_rng(seed))
        model = OnePlusModel(pop, np.random.default_rng(seed + 1))
        two_costs.append(
            TwoTBins().decide(model, t, np.random.default_rng(seed + 2)).queries
        )
    assert np.mean(exp_costs) < np.mean(two_costs) / 2


def test_worse_than_2tbins_for_x_much_greater_than_t():
    """The initial small rounds are pure overhead when x >> t."""
    n, t, x = 256, 8, 200
    exp_costs, two_costs = [], []
    for seed in range(30):
        exp_costs.append(run(n, x, t, seed=seed).queries)
        pop = Population.from_count(n, x, np.random.default_rng(seed))
        model = OnePlusModel(pop, np.random.default_rng(seed + 1))
        two_costs.append(
            TwoTBins().decide(model, t, np.random.default_rng(seed + 2)).queries
        )
    assert np.mean(exp_costs) > np.mean(two_costs)


def test_custom_initial_bins():
    result = run(128, 3, 4, seed=1, initial_bins=8)
    assert result.history[0].bins_requested == 8


def test_max_bins_cap():
    result = run(256, 100, 8, seed=2, max_bins=32)
    assert all(rec.bins_requested <= 32 for rec in result.history)


def test_max_bins_cap_floored_at_threshold():
    """A cap below t would make true instances undecidable; the runtime
    floor keeps the algorithm complete."""
    result = run(256, 100, 64, seed=2, max_bins=32)
    assert result.decision
    assert all(rec.bins_requested <= 64 for rec in result.history)


def test_growth_factor_four():
    result = run(256, 6, 8, seed=4, growth=4)
    requested = [rec.bins_requested for rec in result.history]
    for a, b in zip(requested, requested[1:]):
        assert b == a * 4


def test_validation():
    with pytest.raises(ValueError):
        ExponentialIncrease(initial_bins=0)
    with pytest.raises(ValueError):
        ExponentialIncrease(growth=1)
    with pytest.raises(ValueError):
        ExponentialIncrease(initial_bins=8, max_bins=4)


def test_state_resets_between_sessions():
    """A reused instance must restart at initial_bins."""
    algo = ExponentialIncrease()
    for seed in range(2):
        pop = Population.from_count(64, 5, np.random.default_rng(seed))
        model = OnePlusModel(pop, np.random.default_rng(seed))
        result = algo.decide(model, 8, np.random.default_rng(seed))
        assert result.history[0].bins_requested == 2
