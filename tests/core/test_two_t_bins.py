"""Behavioural tests for the 2tBins algorithm (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.two_t_bins import TwoTBins
from repro.group_testing.model import OnePlusModel, TwoPlusModel
from repro.group_testing.population import Population


def run(n, x, t, seed=0, model_cls=OnePlusModel):
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    model = model_cls(pop, np.random.default_rng(seed + 1))
    result = TwoTBins().decide(model, t, np.random.default_rng(seed + 2))
    return result, pop


def test_uses_2t_bins_every_round():
    result, _ = run(128, 8, 8)
    for rec in result.history:
        assert rec.bins_requested == 16


def test_degenerate_threshold_one_uses_two_bins():
    result, _ = run(64, 0, 1)
    assert all(rec.bins_requested == 2 for rec in result.history)


def test_all_positive_resolves_in_exactly_t_queries():
    """x == n: the first t bins are all non-empty (Sec IV-C)."""
    result, _ = run(128, 128, 16)
    assert result.decision
    assert result.queries == 16
    assert result.rounds == 1


def test_zero_positives_cost_matches_paper_formula():
    """x == 0: cost ~ (n - t) / (n / 2t) queries (Sec IV-C)."""
    n, t = 128, 16
    result, _ = run(n, 0, t)
    assert not result.decision
    expected = (n - t) / (n / (2 * t))
    assert result.queries == pytest.approx(expected, abs=2)


def test_silent_bins_eliminate_members():
    result, _ = run(128, 2, 8, seed=5)
    for rec in result.history:
        if rec.silent_bins:
            assert rec.eliminated > 0


def test_unresolved_round_at_least_halves_candidates():
    """The Sec IV-A halving argument, observed directly."""
    result, _ = run(512, 4, 16, seed=3)
    prev = 512
    for rec in result.history[:-1]:  # all but the deciding round
        if rec.bins_queried == rec.bins_requested:
            assert rec.candidates_after <= prev // 2 + rec.bins_requested
        prev = rec.candidates_after


def test_two_plus_confirms_positives_near_t():
    """Around x = t-1 most bins hold exactly one positive: the 2+ model
    captures and excludes them (Sec IV-C2)."""
    n, t = 128, 16
    costs_1p, costs_2p, confirmed = [], [], []
    for seed in range(40):
        r1, _ = run(n, t - 1, t, seed=seed, model_cls=OnePlusModel)
        r2, _ = run(n, t - 1, t, seed=seed, model_cls=TwoPlusModel)
        costs_1p.append(r1.queries)
        costs_2p.append(r2.queries)
        confirmed.append(r2.confirmed_positives)
    assert np.mean(costs_2p) < np.mean(costs_1p)
    assert max(confirmed) > 0


def test_queries_counted_from_model_ledger():
    pop = Population.from_count(32, 5, np.random.default_rng(0))
    model = OnePlusModel(pop, np.random.default_rng(1))
    model.query([0])  # pre-existing traffic on the same model
    result = TwoTBins().decide(model, 4, np.random.default_rng(2))
    assert result.queries == model.queries_used - 1


def test_negative_threshold_rejected():
    pop = Population.from_count(8, 2, np.random.default_rng(0))
    model = OnePlusModel(pop, np.random.default_rng(1))
    with pytest.raises(ValueError):
        TwoTBins().decide(model, -1, np.random.default_rng(2))


def test_name():
    assert TwoTBins().name == "2tBins"


def test_history_indices_are_sequential():
    result, _ = run(256, 10, 8, seed=11)
    assert [rec.index for rec in result.history] == list(range(result.rounds))


class TestDeterministicPartitioning:
    """The companion theory paper's deterministic-binning variant."""

    def test_runs_are_identical_regardless_of_rng(self):
        pop = Population.from_count(64, 10)
        costs = set()
        for seed in range(5):
            algo = TwoTBins()
            algo.partition_strategy = "deterministic"
            model = OnePlusModel(pop, np.random.default_rng(0))
            result = algo.decide(model, 4, np.random.default_rng(seed))
            assert result.decision
            costs.add(result.queries)
        assert len(costs) == 1

    def test_still_always_correct(self):
        for seed in range(20):
            rng = np.random.default_rng(seed)
            x = int(rng.integers(0, 49))
            pop = Population.from_count(48, x, rng)
            algo = TwoTBins()
            algo.partition_strategy = "deterministic"
            model = OnePlusModel(pop, np.random.default_rng(seed))
            result = algo.decide(model, 8, np.random.default_rng(seed))
            assert result.decision == pop.truth(8), f"seed={seed}"

    def test_unknown_strategy_rejected(self):
        pop = Population.from_count(8, 2)
        algo = TwoTBins()
        algo.partition_strategy = "zigzag"
        model = OnePlusModel(pop, np.random.default_rng(0))
        with pytest.raises(ValueError, match="partition strategy"):
            algo.decide(model, 2, np.random.default_rng(1))
