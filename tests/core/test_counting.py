"""Tests for the adaptive splitting counter (group-testing baseline)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.counting import AdaptiveSplittingCounter
from repro.core.two_t_bins import TwoTBins
from repro.group_testing.model import OnePlusModel, TwoPlusModel
from repro.group_testing.population import Population


def make(n, x, seed=0, model_cls=OnePlusModel):
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    model = model_cls(pop, np.random.default_rng(seed + 1))
    return pop, model


class TestExactness:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=128),
        seed=st.integers(min_value=0, max_value=5000),
        data=st.data(),
    )
    def test_count_is_exact_one_plus(self, n, seed, data):
        x = data.draw(st.integers(min_value=0, max_value=n))
        pop, model = make(n, x, seed)
        result = AdaptiveSplittingCounter().count(
            model, np.random.default_rng(seed + 2)
        )
        assert result.count == x
        assert result.complete
        assert set(result.positives) == pop.positives

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=96),
        seed=st.integers(min_value=0, max_value=5000),
        data=st.data(),
    )
    def test_count_is_exact_two_plus(self, n, seed, data):
        x = data.draw(st.integers(min_value=0, max_value=n))
        pop, model = make(n, x, seed, model_cls=TwoPlusModel)
        result = AdaptiveSplittingCounter().count(
            model, np.random.default_rng(seed + 2)
        )
        assert result.count == x
        assert set(result.positives) == pop.positives


class TestCost:
    def test_zero_positives_one_query(self):
        _, model = make(128, 0)
        result = AdaptiveSplittingCounter().count(model, np.random.default_rng(0))
        assert result.queries == 1

    def test_cost_scales_with_x_log_n_over_x(self):
        """O(x log(N/x)): doubling x roughly doubles the cost."""
        def mean_cost(x):
            costs = []
            for s in range(20):
                _, model = make(256, x, seed=s)
                costs.append(
                    AdaptiveSplittingCounter()
                    .count(model, np.random.default_rng(s))
                    .queries
                )
            return np.mean(costs)

        c4, c16, c64 = mean_cost(4), mean_cost(16), mean_cost(64)
        assert c4 < c16 < c64
        assert c16 < 16 * np.log2(256 / 16) * 2.5  # generous constant

    def test_capture_accelerates_counting(self):
        one_costs, two_costs = [], []
        for s in range(25):
            _, m1 = make(128, 20, seed=s, model_cls=OnePlusModel)
            _, m2 = make(128, 20, seed=s, model_cls=TwoPlusModel)
            counter = AdaptiveSplittingCounter()
            one_costs.append(counter.count(m1, np.random.default_rng(s)).queries)
            two_costs.append(counter.count(m2, np.random.default_rng(s)).queries)
        assert np.mean(two_costs) < np.mean(one_costs)


class TestStopAt:
    def test_early_exit_certifies_lower_bound(self):
        pop, model = make(128, 50, seed=2)
        result = AdaptiveSplittingCounter().count(
            model, np.random.default_rng(3), stop_at=5
        )
        assert result.count >= 5
        assert not result.complete
        assert all(pop.is_positive(v) for v in result.positives)

    def test_stop_at_zero_costs_nothing(self):
        _, model = make(64, 10)
        result = AdaptiveSplittingCounter().count(
            model, np.random.default_rng(0), stop_at=0
        )
        assert result.queries == 0

    def test_stop_at_validation(self):
        _, model = make(8, 1)
        with pytest.raises(ValueError):
            AdaptiveSplittingCounter().count(
                model, np.random.default_rng(0), stop_at=-1
            )

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=96),
        seed=st.integers(min_value=0, max_value=2000),
        data=st.data(),
    )
    def test_threshold_query_always_correct(self, n, seed, data):
        x = data.draw(st.integers(min_value=0, max_value=n))
        t = data.draw(st.integers(min_value=0, max_value=n))
        pop, model = make(n, x, seed)
        answer = AdaptiveSplittingCounter().threshold_query(
            model, t, np.random.default_rng(seed + 2)
        )
        assert answer == pop.truth(t)


class TestVersusTcast:
    def test_threshold_query_costs_more_than_tcast_when_counting_everything(self):
        """The paper's motivation, quantified: certifying x < t by
        counting costs far more than 2tBins when x is just below t."""
        n, t, x = 256, 24, 20
        count_costs, tcast_costs = [], []
        for s in range(20):
            pop, model = make(n, x, seed=s)
            AdaptiveSplittingCounter().threshold_query(
                model, t, np.random.default_rng(s)
            )
            count_costs.append(model.queries_used)
            _, model2 = make(n, x, seed=s)
            TwoTBins().decide(model2, t, np.random.default_rng(s))
            tcast_costs.append(model2.queries_used)
        # Counting must isolate every one of the 20 positives; tcast only
        # shows >= t non-empty bins cannot be reached.
        assert np.mean(count_costs) > np.mean(tcast_costs)

    def test_verify_inferred_mode_exact_but_costlier(self):
        default_costs, verified_costs = [], []
        for s in range(20):
            pop, model = make(128, 12, seed=s)
            r1 = AdaptiveSplittingCounter().count(
                model, np.random.default_rng(s)
            )
            _, model2 = make(128, 12, seed=s)
            r2 = AdaptiveSplittingCounter(verify_inferred=True).count(
                model2, np.random.default_rng(s)
            )
            assert r1.count == r2.count == 12
            default_costs.append(r1.queries)
            verified_costs.append(r2.queries)
        assert np.mean(verified_costs) >= np.mean(default_costs)

    def test_candidates_subset(self):
        pop = Population(size=20, positives=frozenset(range(10)))
        model = OnePlusModel(pop, np.random.default_rng(0))
        result = AdaptiveSplittingCounter().count(
            model, np.random.default_rng(1), candidates=list(range(8, 20))
        )
        assert result.count == 2
        assert set(result.positives) == {8, 9}
