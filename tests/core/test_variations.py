"""Tests for the pause-and-continue and four-fold ablation variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.variations import FourFoldIncrease, PauseAndContinue
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population


def run(algo, n, x, t, seed=0):
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    model = OnePlusModel(pop, np.random.default_rng(seed + 1))
    return algo.decide(model, t, np.random.default_rng(seed + 2))


class TestPauseAndContinue:
    def test_validation(self):
        with pytest.raises(ValueError):
            PauseAndContinue(initial_bins=0)
        with pytest.raises(ValueError):
            PauseAndContinue(elimination_fraction=0.0)
        with pytest.raises(ValueError):
            PauseAndContinue(elimination_fraction=1.5)

    def test_pauses_after_productive_round(self):
        """x=0: round 1 with 2 bins eliminates everything it queries, so
        the bin count must not double."""
        result = run(PauseAndContinue(), 256, 0, 8, seed=1)
        requested = [rec.bins_requested for rec in result.history]
        if len(requested) >= 2:
            assert requested[1] == requested[0]

    def test_doubles_after_unproductive_round(self):
        """x=n: nothing is ever eliminated, so every round doubles."""
        result = run(PauseAndContinue(), 256, 256, 64, seed=1)
        requested = [rec.bins_requested for rec in result.history]
        for a, b in zip(requested, requested[1:]):
            assert b == 2 * a

    def test_name(self):
        assert PauseAndContinue().name == "PauseAndContinue"


class TestFourFold:
    def test_validation(self):
        with pytest.raises(ValueError):
            FourFoldIncrease(initial_bins=0)

    def test_quadruples_after_all_nonempty_round(self):
        result = run(FourFoldIncrease(), 256, 256, 64, seed=1)
        requested = [rec.bins_requested for rec in result.history]
        for a, b, rec in zip(requested, requested[1:], result.history):
            if rec.silent_bins == 0:
                assert b == 4 * a

    def test_doubles_after_round_with_silence(self):
        result = run(FourFoldIncrease(), 512, 3, 16, seed=2)
        for rec, nxt in zip(result.history, result.history[1:]):
            factor = 4 if rec.silent_bins == 0 else 2
            assert nxt.bins_requested == rec.bins_requested * factor

    def test_reaches_large_x_faster_than_plain_doubling(self):
        """The quad path must reach >= 2t bins in fewer rounds when all
        early rounds are saturated."""
        result = run(FourFoldIncrease(), 512, 512, 64, seed=3)
        assert result.decision
        assert result.rounds <= 5
