"""Tests for the multihop-interference extension."""

from __future__ import annotations

import pytest

from repro.core import TwoTBins
from repro.ext.multihop import InterferenceSource, InterferenceStudy
from repro.motes.testbed import Testbed, TestbedConfig


class TestInterferenceSource:
    def test_injects_frames_over_time(self):
        tb = Testbed(TestbedConfig(num_participants=4, seed=1))
        source = InterferenceSource(tb, rate_per_ms=2.0)
        tb.sim.run(until=20_000.0)  # 20 ms
        assert source.frames_injected > 10

    def test_zero_rate_injects_nothing(self):
        tb = Testbed(TestbedConfig(num_participants=4, seed=1))
        source = InterferenceSource(tb, rate_per_ms=0.0)
        tb.sim.run(until=20_000.0)
        assert source.frames_injected == 0

    def test_rejects_negative_rate(self):
        tb = Testbed(TestbedConfig(num_participants=4, seed=1))
        with pytest.raises(ValueError):
            InterferenceSource(tb, rate_per_ms=-1.0)

    def test_interference_frames_never_trigger_participant_logic(self):
        """Interference traffic is addressed off-net; no HACKs, no votes."""
        tb = Testbed(TestbedConfig(num_participants=4, seed=2))
        tb.configure_positives([0])
        InterferenceSource(tb, rate_per_ms=5.0)
        tb.sim.run(until=50_000.0)
        assert tb.channel.hack_deliveries == 0


class TestInterferenceStudy:
    def test_validation(self):
        with pytest.raises(ValueError):
            InterferenceStudy(participants=0)
        with pytest.raises(ValueError):
            InterferenceStudy(threshold=-1)

    def test_no_interference_no_errors(self):
        study = InterferenceStudy(participants=8, threshold=3, seed=5)
        result = study.run_rate(0.0, runs=15)
        assert result.false_negatives == 0
        assert result.false_positives == 0
        assert result.mean_queries > 0

    def test_never_false_positive_under_interference(self):
        """The backcast asymmetry claim (Sec III-B): interference can
        suppress HACKs but never fabricate them."""
        study = InterferenceStudy(participants=8, threshold=3, seed=6)
        result = study.run_rate(3.0, runs=25)
        assert result.false_positives == 0
        assert result.frames_injected > 0

    def test_sweep_returns_per_rate_results(self):
        study = InterferenceStudy(participants=6, threshold=2, seed=7)
        results = study.sweep([0.0, 1.0], runs=8)
        assert [r.rate_per_ms for r in results] == [0.0, 1.0]

    def test_false_negative_rate_property(self):
        study = InterferenceStudy(participants=6, threshold=2, seed=8)
        result = study.run_rate(0.0, runs=5)
        assert result.false_negative_rate == 0.0
