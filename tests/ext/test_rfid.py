"""Tests for the RFID inventory extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ExponentialIncrease
from repro.ext.rfid import (
    Gen2InventoryBaseline,
    RfidThresholdReader,
    TagPopulation,
)


class TestTagPopulation:
    def test_random_factory(self, rng):
        tags = TagPopulation.random(100, 30, rng)
        assert tags.x == 30
        assert all(0 <= t < 100 for t in tags.matching)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            TagPopulation.random(10, 11, rng)
        with pytest.raises(ValueError):
            TagPopulation(size=5, matching=frozenset({5}))
        with pytest.raises(ValueError):
            TagPopulation(size=-1, matching=frozenset())

    def test_as_population(self, rng):
        tags = TagPopulation.random(50, 10, rng)
        pop = tags.as_population()
        assert pop.size == 50 and pop.x == 10


class TestRfidThresholdReader:
    @settings(max_examples=40, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=1000),
        data=st.data(),
    )
    def test_always_correct(self, size, seed, data):
        x = data.draw(st.integers(min_value=0, max_value=size))
        t = data.draw(st.integers(min_value=0, max_value=size))
        tags = TagPopulation.random(size, x, np.random.default_rng(seed))
        reader = RfidThresholdReader()
        result = reader.threshold_query(tags, t, np.random.default_rng(seed))
        assert result.decision == (x >= t)

    def test_custom_algorithm(self, rng):
        tags = TagPopulation.random(64, 40, rng)
        reader = RfidThresholdReader(ExponentialIncrease())
        result = reader.threshold_query(tags, 8, np.random.default_rng(0))
        assert result.decision


class TestGen2Inventory:
    def test_reads_every_tag(self, rng):
        tags = TagPopulation.random(128, 50, rng)
        outcome = Gen2InventoryBaseline().inventory(tags, np.random.default_rng(0))
        assert outcome.tags_read == 50
        assert outcome.slots >= 50

    def test_empty_population(self, rng):
        tags = TagPopulation.random(64, 0, rng)
        outcome = Gen2InventoryBaseline().inventory(tags, np.random.default_rng(0))
        assert outcome.tags_read == 0
        assert outcome.rounds == 0

    def test_early_exit(self, rng):
        tags = TagPopulation.random(256, 200, rng)
        engine = Gen2InventoryBaseline(early_exit_threshold=10)
        outcome = engine.inventory(tags, np.random.default_rng(0))
        assert 10 <= outcome.tags_read < 200

    def test_threshold_query_correct(self, rng):
        for x, t in [(0, 5), (5, 5), (30, 5), (4, 5)]:
            tags = TagPopulation.random(64, x, np.random.default_rng(x))
            result = Gen2InventoryBaseline().threshold_query(
                tags, t, np.random.default_rng(1)
            )
            assert result.decision == (x >= t)

    def test_validation(self):
        with pytest.raises(ValueError):
            Gen2InventoryBaseline(initial_q=16)
        with pytest.raises(ValueError):
            Gen2InventoryBaseline(max_rounds=0)
        with pytest.raises(ValueError):
            Gen2InventoryBaseline(early_exit_threshold=-1)

    def test_tcast_beats_inventory_for_dense_matches(self, rng):
        """The headline scalability claim of the RFID mapping."""
        tags = TagPopulation.random(512, 400, rng)
        tcast_cost = RfidThresholdReader().threshold_query(
            tags, 20, np.random.default_rng(2)
        ).queries
        gen2_cost = Gen2InventoryBaseline().inventory(
            tags, np.random.default_rng(3)
        ).slots
        assert tcast_cost < gen2_cost / 4
