"""Unit tests for the bimodal separation analysis (Sec VI)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analytic.bimodal import BimodalSpec, analyze_separation


class TestBimodalSpec:
    def test_boundaries(self):
        spec = BimodalSpec(n=128, mu1=16, sigma1=2, mu2=96, sigma2=4)
        assert spec.t_l == 20
        assert spec.t_r == 88
        assert spec.separated

    def test_half_distance(self):
        spec = BimodalSpec.symmetric(n=128, d=32, sigma=8)
        assert spec.half_distance == 32
        assert spec.mu1 == 32 and spec.mu2 == 96

    def test_overlapping_modes_not_separated(self):
        spec = BimodalSpec.symmetric(n=128, d=8, sigma=8)
        # t_l = 64-8+16 = 72, t_r = 64+8-16 = 56 -> not separated
        assert not spec.separated

    def test_boundary_case_d_equals_two_sigma(self):
        spec = BimodalSpec.symmetric(n=128, d=16, sigma=8)
        assert spec.t_l == spec.t_r
        assert not spec.separated

    def test_validation(self):
        with pytest.raises(ValueError):
            BimodalSpec(n=0, mu1=1, sigma1=1, mu2=2, sigma2=1)
        with pytest.raises(ValueError):
            BimodalSpec(n=10, mu1=5, sigma1=-1, mu2=8, sigma2=1)
        with pytest.raises(ValueError):
            BimodalSpec(n=10, mu1=9, sigma1=1, mu2=2, sigma2=1)
        with pytest.raises(ValueError):
            BimodalSpec(n=10, mu1=1, sigma1=1, mu2=2, sigma2=1, weight1=1.5)


class TestAnalyzeSeparation:
    def test_feasible_case(self):
        spec = BimodalSpec(n=128, mu1=16, sigma1=0, mu2=96, sigma2=0)
        a = analyze_separation(spec)
        assert a.feasible
        assert a.bins > 1
        assert 0 < a.q1 < a.q2 < 1
        assert a.eps == pytest.approx((a.q2 - a.q1) / 2)

    def test_paper_example_repeats(self):
        spec = BimodalSpec(n=128, mu1=16, sigma1=0, mu2=96, sigma2=0)
        a = analyze_separation(spec)
        assert a.repeats(0.01) == 19
        assert a.repeats(0.05) == 12

    def test_infeasible_case_still_usable(self):
        spec = BimodalSpec.symmetric(n=128, d=8, sigma=8)
        a = analyze_separation(spec)
        assert not a.feasible
        assert a.bins > 1
        with pytest.raises(ValueError):
            a.repeats(0.05)

    def test_decision_midpoint(self):
        spec = BimodalSpec(n=128, mu1=16, sigma1=0, mu2=96, sigma2=0)
        a = analyze_separation(spec)
        mid = a.decision_midpoint(10)
        assert 10 * a.q1 < mid < 10 * a.q2

    def test_decision_midpoint_rejects_bad_repeats(self):
        spec = BimodalSpec(n=128, mu1=16, sigma1=0, mu2=96, sigma2=0)
        a = analyze_separation(spec)
        with pytest.raises(ValueError):
            a.decision_midpoint(0)

    @given(d=st.floats(min_value=17, max_value=63))
    def test_repeats_shrink_with_separation(self, d):
        sigma = 8.0
        narrow = analyze_separation(BimodalSpec.symmetric(128, d, sigma))
        wide = analyze_separation(BimodalSpec.symmetric(128, 64.0, sigma))
        assert narrow.feasible and wide.feasible
        assert wide.repeats(0.05) <= narrow.repeats(0.05)

    def test_identical_means_degenerate(self):
        spec = BimodalSpec(n=64, mu1=10, sigma1=0, mu2=10, sigma2=0)
        a = analyze_separation(spec)
        assert not a.feasible
        assert a.eps == pytest.approx(0.0, abs=1e-9)
