"""Unit tests for the Eq 9/10 repeat-count analysis, including the
paper's worked example."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.analytic.chernoff import (
    failure_probability,
    hoeffding_repeats,
    mode_nonempty_probs,
    optimal_sampling_bins,
    paper_repeats,
    separation_gap,
)


class TestOptimalSamplingBins:
    def test_interior_optimum(self):
        """The chosen b beats perturbed alternatives on the silent-gap."""
        t_l, t_r = 16.0, 96.0
        b = optimal_sampling_bins(t_l, t_r)

        def gap(bins: float) -> float:
            s = 1 - 1 / bins
            return s**t_l - s**t_r

        assert gap(b) >= gap(b * 1.05)
        assert gap(b) >= gap(b * 0.95)

    def test_rejects_unordered_boundaries(self):
        with pytest.raises(ValueError):
            optimal_sampling_bins(10, 10)
        with pytest.raises(ValueError):
            optimal_sampling_bins(0, 5)
        with pytest.raises(ValueError):
            optimal_sampling_bins(9, 5)

    @given(
        t_l=st.floats(min_value=0.5, max_value=100),
        extra=st.floats(min_value=0.5, max_value=400),
    )
    def test_more_than_one_bin(self, t_l, extra):
        assert optimal_sampling_bins(t_l, t_l + extra) > 1.0


class TestModeProbs:
    def test_ordering(self):
        q1, q2 = mode_nonempty_probs(45.0, 16, 96)
        assert 0 < q1 < q2 < 1

    def test_rejects_degenerate_bin(self):
        with pytest.raises(ValueError):
            mode_nonempty_probs(1.0, 4, 8)


class TestFailureProbability:
    def test_decreases_with_repeats(self):
        assert failure_probability(0.3, 20) < failure_probability(0.3, 5)

    def test_matches_eq9(self):
        assert failure_probability(0.25, 8) == pytest.approx(math.exp(-1.0))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            failure_probability(0.0, 5)
        with pytest.raises(ValueError):
            failure_probability(0.3, 0)


class TestPaperExample:
    """The worked example at the end of Sec VI-A."""

    def setup_method(self):
        self.b = optimal_sampling_bins(16, 96)
        self.eps = separation_gap(self.b, 16, 96)

    def test_delta_one_percent_needs_19_repeats(self):
        assert paper_repeats(0.01, self.eps) == 19

    def test_delta_five_percent_needs_12_repeats(self):
        assert paper_repeats(0.05, self.eps) == 12


class TestPaperRepeats:
    def test_tighter_delta_needs_more_repeats(self):
        assert paper_repeats(0.01, 0.3) >= paper_repeats(0.1, 0.3)

    def test_wider_gap_needs_fewer_repeats(self):
        assert paper_repeats(0.05, 0.5) <= paper_repeats(0.05, 0.1)

    def test_at_least_one(self):
        assert paper_repeats(0.5, 10.0) >= 1

    def test_rejects_bad_args(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                paper_repeats(bad, 0.3)
        with pytest.raises(ValueError):
            paper_repeats(0.05, 0.0)


class TestHoeffdingRepeats:
    def test_monotonicity(self):
        assert hoeffding_repeats(0.01, 0.3) >= hoeffding_repeats(0.1, 0.3)
        assert hoeffding_repeats(0.05, 0.1) >= hoeffding_repeats(0.05, 0.3)

    def test_satisfies_its_own_bound(self):
        delta, eps = 0.05, 0.25
        r = hoeffding_repeats(delta, eps)
        assert 2 * math.exp(-2 * eps * eps * r) <= delta + 1e-9

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            hoeffding_repeats(0.0, 0.3)
        with pytest.raises(ValueError):
            hoeffding_repeats(0.05, 0.0)
