"""Validation of the exact sequential-ordering cost model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.sequential_model import (
    anchor_all_negative,
    anchor_order_statistic,
    expected_slots_sequential,
)
from repro.group_testing.population import Population
from repro.mac.tdma import SequentialOrdering


def simulated_mean(n, x, t, runs=400):
    costs = np.empty(runs)
    for s in range(runs):
        pop = Population.from_count(n, x, np.random.default_rng(s))
        costs[s] = SequentialOrdering().decide(
            pop, t, np.random.default_rng(s + 1)
        ).queries
    return float(costs.mean())


class TestAnchors:
    def test_all_negative_is_exact(self):
        assert expected_slots_sequential(64, 0, 8) == pytest.approx(
            anchor_all_negative(64, 8)
        )

    def test_all_positive_is_t(self):
        assert expected_slots_sequential(64, 64, 8) == pytest.approx(8.0)

    def test_order_statistic_dominates_for_dense_x(self):
        n, x, t = 128, 100, 8
        exact = expected_slots_sequential(n, x, t)
        assert exact == pytest.approx(anchor_order_statistic(n, x, t), rel=0.02)

    def test_anchor_validation(self):
        with pytest.raises(ValueError):
            anchor_all_negative(8, 0)
        with pytest.raises(ValueError):
            anchor_all_negative(8, 9)
        with pytest.raises(ValueError):
            anchor_order_statistic(8, 2, 4)


class TestExactness:
    @pytest.mark.parametrize(
        "n,x,t",
        [
            (32, 0, 8),
            (32, 4, 8),
            (32, 8, 8),
            (32, 20, 8),
            (32, 32, 8),
            (64, 10, 24),
            (64, 50, 24),
        ],
    )
    def test_matches_simulation(self, n, x, t):
        exact = expected_slots_sequential(n, x, t)
        sim = simulated_mean(n, x, t)
        # 400-run Monte Carlo noise only; the model itself is exact.
        assert exact == pytest.approx(sim, rel=0.05)

    def test_trivial_cases(self):
        assert expected_slots_sequential(16, 4, 0) == 0.0
        assert expected_slots_sequential(16, 4, 17) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_slots_sequential(-1, 0, 1)
        with pytest.raises(ValueError):
            expected_slots_sequential(4, 5, 1)
        with pytest.raises(ValueError):
            expected_slots_sequential(4, 1, -1)

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=128),
        data=st.data(),
    )
    def test_bounded_by_n(self, n, data):
        x = data.draw(st.integers(min_value=0, max_value=n))
        t = data.draw(st.integers(min_value=1, max_value=n))
        cost = expected_slots_sequential(n, x, t)
        assert 0.0 <= cost <= n

    def test_monotone_decreasing_in_x_for_dense(self):
        n, t = 64, 8
        costs = [expected_slots_sequential(n, x, t) for x in (8, 16, 32, 64)]
        assert all(a >= b for a, b in zip(costs, costs[1:]))
