"""Unit and property tests for the bin-count mathematics (Sec V-A)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.analytic.bins import (
    elimination_yield,
    estimate_positives,
    expected_empty_bins,
    optimal_bins,
    oracle_bins,
    prob_bin_empty,
)


class TestProbBinEmpty:
    def test_no_positives_means_certainly_empty(self):
        assert prob_bin_empty(10, 0) == 1.0

    def test_single_bin_with_positives_never_empty(self):
        assert prob_bin_empty(1, 3) == 0.0

    def test_single_bin_no_positives(self):
        assert prob_bin_empty(1, 0) == 1.0

    def test_matches_formula(self):
        assert prob_bin_empty(4, 3) == pytest.approx((3 / 4) ** 3)

    def test_monotone_decreasing_in_p(self):
        probs = [prob_bin_empty(8, p) for p in range(0, 20)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_monotone_increasing_in_b(self):
        probs = [prob_bin_empty(b, 5) for b in range(2, 50)]
        assert all(a <= b for a, b in zip(probs, probs[1:]))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            prob_bin_empty(0, 1)
        with pytest.raises(ValueError):
            prob_bin_empty(2, -1)

    @given(
        b=st.floats(min_value=1.0, max_value=1e4),
        p=st.floats(min_value=0.0, max_value=1e4),
    )
    def test_always_a_probability(self, b, p):
        assert 0.0 <= prob_bin_empty(b, p) <= 1.0


class TestEliminationYield:
    def test_matches_eq2(self):
        b, p, n = 5, 4, 100
        expected = (1 - 1 / b) ** p * n / b
        assert elimination_yield(b, p, n) == pytest.approx(expected)

    def test_zero_population(self):
        assert elimination_yield(3, 2, 0) == 0.0

    def test_rejects_negative_population(self):
        with pytest.raises(ValueError):
            elimination_yield(3, 2, -1)

    @given(p=st.integers(min_value=1, max_value=200))
    def test_eq4_optimum_beats_neighbours(self, p):
        """b = p + 1 maximises g(b) over integer b (Eq 4)."""
        n = 1000.0
        best = elimination_yield(p + 1, p, n)
        assert best >= elimination_yield(p, p, n) - 1e-12
        assert best >= elimination_yield(p + 2, p, n) - 1e-12


class TestOptimalBins:
    def test_eq4(self):
        assert optimal_bins(0) == 1
        assert optimal_bins(7) == 8
        assert optimal_bins(2.4) == 3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            optimal_bins(-0.5)


class TestExpectedEmptyBins:
    def test_matches_eq5(self):
        assert expected_empty_bins(8, 5) == pytest.approx((7 / 8) ** 5 * 8)

    def test_all_empty_when_no_positives(self):
        assert expected_empty_bins(6, 0) == 6.0


class TestEstimatePositives:
    def test_round_trips_eq5(self):
        """estimate(e_expected(b, p)) recovers p."""
        for b, p in [(8, 5), (16, 3), (32, 20), (4, 1)]:
            e = expected_empty_bins(b, p)
            assert estimate_positives(e, b) == pytest.approx(p, abs=1e-9)

    def test_all_empty_gives_zero(self):
        assert estimate_positives(8, 8) == 0.0

    def test_zero_empty_bins_guard_gives_large_finite(self):
        est = estimate_positives(0, 8)
        assert math.isfinite(est)
        # Larger than any p whose expectation would round to >= 1 bin.
        assert est > estimate_positives(1, 8)

    def test_clamped_to_max_estimate(self):
        assert estimate_positives(0, 8, max_estimate=10.0) == 10.0

    def test_b_equal_one_guards(self):
        assert estimate_positives(1, 1) == 0.0
        assert estimate_positives(0, 1, max_estimate=50.0) == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            estimate_positives(9, 8)
        with pytest.raises(ValueError):
            estimate_positives(-1, 8)
        with pytest.raises(ValueError):
            estimate_positives(0, 0)

    @given(
        b=st.integers(min_value=2, max_value=256),
        e=st.integers(min_value=0, max_value=256),
    )
    def test_always_nonnegative_finite(self, b, e):
        if e > b:
            return
        est = estimate_positives(e, b)
        assert est >= 0.0
        assert math.isfinite(est)

    @given(b=st.integers(min_value=4, max_value=64))
    def test_monotone_decreasing_in_empty_count(self, b):
        ests = [estimate_positives(e, b) for e in range(0, b + 1)]
        assert all(a >= z for a, z in zip(ests, ests[1:]))


class TestOracleBins:
    def test_elimination_regime(self):
        assert oracle_bins(0, 16, 128) == 1
        assert oracle_bins(8, 16, 128) == 9  # x == t/2 -> x + 1

    def test_hard_regime(self):
        # x == t -> 3t - t = 2t
        assert oracle_bins(16, 16, 128) == 32

    def test_confirmation_regime_endpoint(self):
        # x == n -> exactly t bins
        assert oracle_bins(128, 16, 128) == 16

    def test_confirmation_regime_interpolates(self):
        just_above = oracle_bins(17, 16, 128)
        assert 16 <= just_above <= 32

    def test_piecewise_is_continuous_at_t_over_2(self):
        t, n = 16, 128
        left = oracle_bins(t // 2, t, n)
        right = 3 * (t // 2 + 1) - t
        assert abs(left - right) <= 3  # interpolation seam, small jump ok

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            oracle_bins(-1, 4, 10)
        with pytest.raises(ValueError):
            oracle_bins(11, 4, 10)
        with pytest.raises(ValueError):
            oracle_bins(1, 0, 10)
        with pytest.raises(ValueError):
            oracle_bins(0, 1, 0)

    @given(
        n=st.integers(min_value=1, max_value=512),
        data=st.data(),
    )
    def test_always_at_least_one_bin(self, n, data):
        t = data.draw(st.integers(min_value=1, max_value=n))
        x = data.draw(st.integers(min_value=0, max_value=n))
        assert oracle_bins(x, t, n) >= 1
