"""Unit tests for the query-complexity bounds."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analytic.bounds import (
    lower_bound_queries,
    upper_bound_queries,
    worst_case_rounds,
)


class TestWorstCaseRounds:
    def test_small_population_single_round(self):
        assert worst_case_rounds(10, 8) == 1
        assert worst_case_rounds(16, 8) == 1

    def test_log_growth(self):
        assert worst_case_rounds(64, 8) == 2
        assert worst_case_rounds(128, 8) == 3
        assert worst_case_rounds(256, 8) == 4

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            worst_case_rounds(0, 1)
        with pytest.raises(ValueError):
            worst_case_rounds(1, 0)

    @given(
        n=st.integers(min_value=1, max_value=100_000),
        t=st.integers(min_value=1, max_value=1000),
    )
    def test_at_least_one_round(self, n, t):
        assert worst_case_rounds(n, t) >= 1


class TestUpperBound:
    def test_formula(self):
        # rounds(128, 16) = ceil(log2(4)) = 2 -> 2*16*3 = 96
        assert upper_bound_queries(128, 16) == 96

    @given(
        n=st.integers(min_value=1, max_value=4096),
        t=st.integers(min_value=1, max_value=256),
    )
    def test_dominates_lower_bound(self, n, t):
        assert upper_bound_queries(n, t) >= lower_bound_queries(n, t)

    @given(t=st.integers(min_value=1, max_value=64))
    def test_monotone_in_n(self, t):
        values = [upper_bound_queries(n, t) for n in (64, 256, 1024, 4096)]
        assert all(a <= b for a, b in zip(values, values[1:]))


class TestLowerBound:
    def test_zero_when_threshold_covers_population(self):
        assert lower_bound_queries(8, 8) == 0.0
        assert lower_bound_queries(8, 20) == 0.0

    def test_positive_otherwise(self):
        assert lower_bound_queries(128, 16) > 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            lower_bound_queries(0, 1)
        with pytest.raises(ValueError):
            lower_bound_queries(4, 0)

    def test_t_equals_one_reduces_to_binary_search_floor(self):
        # t=1: t*log2(n)/max(log2(1),1) = log2(n)
        assert lower_bound_queries(1024, 1) == pytest.approx(10.0)
