"""Validation of the mean-field 2tBins cost model against simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.cost_model import (
    anchor_cost_all_negative,
    anchor_cost_all_positive,
    expected_queries_2tbins,
    expected_rounds_2tbins,
)
from repro.core import TwoTBins
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population


def simulated_mean(n, x, t, runs=100):
    costs = np.empty(runs)
    for s in range(runs):
        pop = Population.from_count(n, x, np.random.default_rng(s))
        model = OnePlusModel(pop, np.random.default_rng(s + 1))
        costs[s] = TwoTBins().decide(
            model, t, np.random.default_rng(s + 2)
        ).queries
    return float(costs.mean())


class TestAnchors:
    def test_all_negative_anchor(self):
        assert anchor_cost_all_negative(128, 16) == pytest.approx(28.0)
        assert anchor_cost_all_negative(16, 16) == 0.0

    def test_all_positive_anchor(self):
        assert anchor_cost_all_positive(16) == 16.0

    def test_model_matches_anchors(self):
        assert expected_queries_2tbins(128, 0, 16) == pytest.approx(
            anchor_cost_all_negative(128, 16), rel=0.05
        )
        assert expected_queries_2tbins(128, 128, 16) == pytest.approx(
            anchor_cost_all_positive(16), rel=0.01
        )

    def test_anchor_validation(self):
        with pytest.raises(ValueError):
            anchor_cost_all_negative(0, 1)
        with pytest.raises(ValueError):
            anchor_cost_all_positive(-1)


class TestValidation:
    @pytest.mark.parametrize("n,t", [(128, 16), (64, 8), (256, 24)])
    def test_easy_regimes_within_10_percent(self, n, t):
        for x in (0, 1, 2, t // 4, 4 * t, n // 2, n):
            if not 0 <= x <= n:
                continue
            model = expected_queries_2tbins(n, x, t)
            sim = simulated_mean(n, x, t)
            assert model == pytest.approx(sim, rel=0.12), f"x={x}"

    @pytest.mark.parametrize("n,t", [(128, 16), (64, 8)])
    def test_critical_point_pessimistic_but_bounded(self, n, t):
        """At x ~ t the model over-estimates (no variance benefit) but by
        at most ~2x, and never under-estimates by more than noise."""
        for x in (t - 1, t, t + 1):
            model = expected_queries_2tbins(n, x, t)
            sim = simulated_mean(n, x, t)
            assert 0.85 * sim <= model <= 2.1 * sim, f"x={x}"


class TestShape:
    def test_peak_near_threshold(self):
        n, t = 128, 16
        costs = {x: expected_queries_2tbins(n, x, t) for x in range(0, n + 1, 4)}
        peak_x = max(costs, key=costs.get)
        assert t / 2 <= peak_x <= 2 * t

    def test_cheap_at_extremes(self):
        n, t = 128, 16
        mid = expected_queries_2tbins(n, t, t)
        assert expected_queries_2tbins(n, 0, t) < mid / 2
        assert expected_queries_2tbins(n, n, t) < mid / 2

    def test_trivial_cases_zero(self):
        assert expected_queries_2tbins(16, 4, 0) == 0.0
        assert expected_queries_2tbins(8, 2, 9) == 0.0
        assert expected_rounds_2tbins(16, 4, 0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_queries_2tbins(-1, 0, 1)
        with pytest.raises(ValueError):
            expected_queries_2tbins(4, 5, 1)
        with pytest.raises(ValueError):
            expected_queries_2tbins(4, 1, -1)

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=1024),
        data=st.data(),
    )
    def test_always_finite_nonnegative_and_bounded(self, n, data):
        from repro.analytic.bounds import upper_bound_queries

        x = data.draw(st.integers(min_value=0, max_value=n))
        t = data.draw(st.integers(min_value=1, max_value=n))
        cost = expected_queries_2tbins(n, x, t)
        assert 0.0 <= cost
        # The estimate is clipped to the provable worst-case bound.
        assert cost <= upper_bound_queries(n, t)

    def test_rounds_consistent_with_queries(self):
        n, t = 256, 16
        for x in (0, 8, 64, 256):
            rounds = expected_rounds_2tbins(n, x, t)
            queries = expected_queries_2tbins(n, x, t)
            assert rounds >= 1
            assert queries <= rounds * 2 * t + 1
