"""Tests for the packet-level CSMA/CA collection on the emulated stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mac.csma_packet import CsmaCollector
from repro.motes.testbed import Testbed, TestbedConfig
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.channel import Channel
from repro.sim.kernel import Simulator


def run_session(n, positives, threshold, seed=0, quiet_us=20_000.0):
    tb = Testbed(TestbedConfig(num_participants=n, seed=seed))
    tb.configure_positives(positives)
    outcome = tb.run_csma_collection(threshold, quiet_us=quiet_us)
    return outcome, tb


class TestCollection:
    def test_collects_all_positive_replies(self):
        outcome, _ = run_session(8, [0, 2, 5], threshold=3)
        assert outcome.decision
        assert outcome.replies == 3

    def test_true_at_threshold_before_all_replies(self):
        outcome, _ = run_session(10, list(range(8)), threshold=3)
        assert outcome.decision
        assert 3 <= outcome.replies <= 8

    def test_false_on_quiet_timeout(self):
        outcome, _ = run_session(8, [1], threshold=3)
        assert not outcome.decision
        assert outcome.replies == 1

    def test_no_positives_times_out_quietly(self):
        outcome, _ = run_session(8, [], threshold=1, quiet_us=5_000.0)
        assert not outcome.decision
        assert outcome.replies == 0
        assert outcome.duration_us >= 5_000.0

    def test_threshold_zero_immediate(self):
        outcome, _ = run_session(4, [0], threshold=0)
        assert outcome.decision
        assert outcome.duration_us < 1_000.0

    def test_negative_threshold_rejected(self):
        tb = Testbed(TestbedConfig(num_participants=4, seed=0))
        with pytest.raises(ValueError):
            tb.run_csma_collection(-1)

    def test_quiet_us_validation(self):
        sim = Simulator()
        channel = Channel(sim, np.random.default_rng(0))
        radio = Cc2420Radio(sim, channel, address=1)
        with pytest.raises(ValueError):
            CsmaCollector(sim, radio, quiet_us=0.0)


class TestContention:
    def test_heavy_contention_still_resolves(self):
        """20 simultaneous contenders: BEB + retries must deliver t
        distinct replies despite collisions."""
        outcome, tb = run_session(20, list(range(20)), threshold=10, seed=3)
        assert outcome.decision
        assert outcome.replies >= 10

    def test_duration_grows_with_contention(self):
        sparse, _ = run_session(16, [0, 1], threshold=2, seed=1)
        dense, _ = run_session(16, list(range(16)), threshold=16, seed=1)
        assert dense.duration_us > sparse.duration_us

    def test_collisions_happen_and_are_retried(self):
        """With many contenders, the channel must see more transmissions
        than distinct replies (retries), yet everyone gets through."""
        tb = Testbed(TestbedConfig(num_participants=12, seed=7))
        tb.configure_positives(list(range(12)))
        outcome = tb.run_csma_collection(12)
        assert outcome.decision
        # poll + >= one reply per participant + ACKs.
        assert tb.channel.frames_sent > 1 + 12

    def test_multi_predicate_polls(self):
        tb = Testbed(TestbedConfig(num_participants=8, seed=9))
        tb.configure_positives([0, 1, 2], predicate_id=0)
        tb.configure_positives([5], predicate_id=1)
        first = tb.run_csma_collection(2, predicate_id=0)
        assert first.decision
        second = tb.run_csma_collection(2, predicate_id=1, quiet_us=10_000.0)
        assert not second.decision
        assert second.replies <= 1


class TestContenderRetryBudget:
    def test_gives_up_without_acks(self):
        """With the initiator's auto-ack disabled, no reply is ever
        acknowledged: the contender must exhaust its retries and stop."""
        import numpy as np

        from repro.mac.csma_packet import MAX_FRAME_RETRIES, CsmaContender
        from repro.radio.cc2420 import Cc2420Radio
        from repro.radio.channel import Channel
        from repro.sim.kernel import Simulator

        sim = Simulator()
        channel = Channel(sim, np.random.default_rng(0))
        initiator = Cc2420Radio(sim, channel, address=100, auto_ack=False)
        replier = Cc2420Radio(sim, channel, address=1)
        contender = CsmaContender(
            sim,
            replier,
            dst=100,
            seq=1,
            rng=np.random.default_rng(1),
        )
        sim.run_until_idle()
        assert contender.given_up
        assert not contender.done
        # One transmission per retry round (all CCA-clear on an idle
        # channel), capped by the budget.
        assert channel.frames_sent <= MAX_FRAME_RETRIES + 1

    def test_cancel_stops_future_attempts(self):
        import numpy as np

        from repro.mac.csma_packet import CsmaContender
        from repro.radio.cc2420 import Cc2420Radio
        from repro.radio.channel import Channel
        from repro.sim.kernel import Simulator

        sim = Simulator()
        channel = Channel(sim, np.random.default_rng(0))
        Cc2420Radio(sim, channel, address=100, auto_ack=False)
        replier = Cc2420Radio(sim, channel, address=1)
        contender = CsmaContender(
            sim, replier, dst=100, seq=1, rng=np.random.default_rng(1)
        )
        contender.cancel()
        sim.run_until_idle()
        assert channel.frames_sent == 0
