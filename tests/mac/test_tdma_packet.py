"""Tests for the packet-level TDMA collection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mac.tdma_packet import slot_duration_us
from repro.motes.testbed import Testbed, TestbedConfig
from repro.radio.timing import DEFAULT_TIMING


def run_session(n, positives, threshold, seed=0, schedule=None):
    tb = Testbed(TestbedConfig(num_participants=n, seed=seed))
    tb.configure_positives(positives)
    return tb.run_tdma_collection(threshold, schedule=schedule), tb


class TestVerdicts:
    def test_true_at_tth_reply(self):
        outcome, _ = run_session(8, [0, 1, 2, 3, 4], threshold=3)
        assert outcome.decision
        assert outcome.replies >= 3

    def test_false_when_impossible(self):
        outcome, _ = run_session(8, [5], threshold=3)
        assert not outcome.decision

    def test_trivial_thresholds(self):
        outcome, _ = run_session(4, [0], threshold=0)
        assert outcome.decision and outcome.slots_elapsed == 0
        outcome, _ = run_session(4, [0, 1, 2, 3], threshold=5)
        assert not outcome.decision and outcome.slots_elapsed == 0

    def test_negative_threshold_rejected(self):
        tb = Testbed(TestbedConfig(num_participants=4, seed=0))
        with pytest.raises(ValueError):
            tb.run_tdma_collection(-1)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=500),
        data=st.data(),
    )
    def test_always_matches_ground_truth(self, n, seed, data):
        x = data.draw(st.integers(min_value=0, max_value=n))
        t = data.draw(st.integers(min_value=0, max_value=n))
        rng = np.random.default_rng(seed)
        positives = (
            [int(p) for p in rng.choice(n, size=x, replace=False)] if x else []
        )
        outcome, _ = run_session(n, positives, t, seed=seed)
        assert outcome.decision == (x >= t)


class TestSlotAccounting:
    def test_front_loaded_positives_stop_at_t(self):
        outcome, _ = run_session(10, [0, 1, 2], threshold=3)
        assert outcome.slots_elapsed == 3  # id-order schedule

    def test_all_negative_scans_to_impossibility(self):
        n, t = 10, 4
        outcome, _ = run_session(n, [], threshold=t)
        assert outcome.slots_elapsed == n - t + 1

    def test_duration_matches_slot_arithmetic(self):
        outcome, tb = run_session(6, [0, 1], threshold=2)
        slot = slot_duration_us(DEFAULT_TIMING)
        # schedule frame + turnaround + 2 slots.
        assert outcome.duration_us >= 2 * slot
        assert outcome.duration_us <= 4 * slot + 2_000

    def test_custom_schedule_order(self):
        # Positive node 5 scheduled first: one slot resolves t=1.
        outcome, _ = run_session(
            6, [5], threshold=1, schedule=[5, 0, 1, 2, 3, 4]
        )
        assert outcome.decision
        assert outcome.slots_elapsed == 1

    def test_no_collisions_ever(self):
        """Slots are exclusive: replies never overlap on air, so the
        channel sees exactly one frame per replying participant plus the
        schedule broadcast."""
        outcome, tb = run_session(8, list(range(8)), threshold=8, seed=2)
        assert outcome.decision
        assert tb.channel.frames_sent == 1 + 8
