"""Tests for the sequential-ordering (TDMA) baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.group_testing.population import Population
from repro.mac.tdma import SequentialOrdering


def run(n, x, t, seed=0, shuffle=True):
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    algo = SequentialOrdering(shuffle=shuffle)
    return algo.decide(pop, t, np.random.default_rng(seed + 1)), pop


def test_exactness_flag():
    result, _ = run(32, 5, 4)
    assert result.exact


@settings(max_examples=80, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=5000),
    data=st.data(),
)
def test_always_correct(n, seed, data):
    x = data.draw(st.integers(min_value=0, max_value=n))
    t = data.draw(st.integers(min_value=0, max_value=n + 2))
    result, pop = run(n, x, t, seed=seed)
    assert result.decision == pop.truth(t)


def test_trivial_thresholds_cost_nothing():
    result, _ = run(16, 4, 0)
    assert result.decision and result.queries == 0
    result, _ = run(16, 4, 17)
    assert not result.decision and result.queries == 0


def test_early_true_exit_at_tth_positive():
    """Without shuffle and positives at the front, cost == t."""
    pop = Population.from_count(64, 10)  # deterministic: positives 0..9
    algo = SequentialOrdering(shuffle=False)
    result = algo.decide(pop, 4, np.random.default_rng(0))
    assert result.decision
    assert result.queries == 4


def test_early_false_exit_cost():
    """x = 0: stops once remaining slots cannot reach t, i.e. n - t + 1."""
    n, t = 64, 8
    result, _ = run(n, 0, t)
    assert not result.decision
    assert result.queries == n - t + 1


def test_never_exceeds_n_slots():
    for seed in range(20):
        n = 50
        x = int(np.random.default_rng(seed).integers(0, n + 1))
        result, _ = run(n, x, 10, seed=seed)
        assert result.queries <= n


def test_cost_formula_for_sparse_x():
    """For x << t the scheme must scan until impossibility: it stops at
    slot n - t + s + 1 once all s = x positives have been seen, so the
    cost concentrates at n - t + x + 1 (the Fig 1 left-edge plateau)."""
    n, t, x = 128, 32, 4
    costs = [run(n, x, t, seed=s)[0].queries for s in range(30)]
    assert np.mean(costs) == pytest.approx(n - t + x + 1, abs=4)


def test_rejects_negative_threshold():
    pop = Population.from_count(8, 1, np.random.default_rng(0))
    with pytest.raises(ValueError):
        SequentialOrdering().decide(pop, -1, np.random.default_rng(1))


def test_shuffle_false_is_deterministic():
    pop = Population.from_count(40, 13)
    algo = SequentialOrdering(shuffle=False)
    a = algo.decide(pop, 5, np.random.default_rng(1))
    b = algo.decide(pop, 5, np.random.default_rng(2))
    assert a.queries == b.queries
