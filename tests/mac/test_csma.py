"""Tests for the slotted CSMA baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.group_testing.population import Population
from repro.mac.csma import CsmaBaseline, CsmaConfig


def run(n, x, t, seed=0, config=None):
    pop = Population.from_count(n, x, np.random.default_rng(seed))
    return CsmaBaseline(config).decide(pop, t, np.random.default_rng(seed + 1))


class TestConfig:
    def test_defaults_valid(self):
        cfg = CsmaConfig()
        assert cfg.initial_window == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            CsmaConfig(initial_window=0)
        with pytest.raises(ValueError):
            CsmaConfig(max_window=4, initial_window=8)
        with pytest.raises(ValueError):
            CsmaConfig(quiet_slots=0)
        with pytest.raises(ValueError):
            CsmaConfig(loss_prob=1.0)
        with pytest.raises(ValueError):
            CsmaConfig(max_slots=0)


class TestBehaviour:
    def test_results_are_inexact(self):
        assert not run(32, 5, 4).exact

    def test_threshold_zero_free(self):
        result = run(32, 5, 0)
        assert result.decision
        assert result.queries == 0

    def test_no_positives_costs_quiet_period(self):
        result = run(64, 0, 8)
        assert not result.decision
        assert result.queries == CsmaConfig().quiet_slots

    def test_true_verdict_when_positives_abundant(self):
        result = run(64, 60, 4, seed=3)
        assert result.decision

    def test_cost_grows_with_x(self):
        """The paper's headline CSMA property: cost ~ x."""
        def mean_cost(x):
            return np.mean([run(256, x, 256, seed=s).queries for s in range(30)])

        costs = [mean_cost(x) for x in (4, 16, 64, 128)]
        assert costs == sorted(costs)
        assert costs[-1] > 3 * costs[0]

    def test_negative_threshold_rejected(self):
        pop = Population.from_count(8, 1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            CsmaBaseline().decide(pop, -1, np.random.default_rng(1))

    def test_premature_negatives_possible_with_fixed_quiet(self):
        """Documents the paper's 'impossible to tell with certainty'
        remark: with a fixed quiet period, some true instances are missed
        under heavy contention."""
        wrong = 0
        for seed in range(120):
            result = run(64, 40, 32, seed=seed)
            if not result.decision:
                wrong += 1
        assert wrong > 0

    def test_adaptive_quiet_makes_negative_verdicts_sound(self):
        """With the adaptive drain rule and no losses, every verdict must
        match the ground truth."""
        cfg = CsmaConfig(adaptive_quiet=True)
        for seed in range(60):
            x = int(np.random.default_rng(seed).integers(0, 64))
            pop = Population.from_count(64, x, np.random.default_rng(seed))
            result = CsmaBaseline(cfg).decide(
                pop, 16, np.random.default_rng(seed + 1)
            )
            assert result.decision == pop.truth(16), f"seed={seed}, x={x}"

    def test_adaptive_quiet_costs_more_in_contention(self):
        cfg = CsmaConfig(adaptive_quiet=True)
        fixed = np.mean([run(64, 10, 16, seed=s).queries for s in range(30)])
        adaptive = np.mean(
            [run(64, 10, 16, seed=s, config=cfg).queries for s in range(30)]
        )
        assert adaptive >= fixed

    def test_loss_prob_drops_replies(self):
        """With certain loss... near-1 loss, few successes arrive."""
        cfg = CsmaConfig(loss_prob=0.99)
        result = run(32, 20, 4, seed=5, config=cfg)
        assert not result.decision

    def test_lossless_matches_truth_for_large_margin(self):
        for seed in range(20):
            result = run(64, 50, 8, seed=seed)
            assert result.decision
