"""Unit tests for the metrics registry (repro.obs)."""

from __future__ import annotations

import pickle

import pytest

from repro.obs import (
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    TimerSnapshot,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    reset_metrics,
    snapshot_metrics,
)


@pytest.fixture
def reg():
    r = MetricsRegistry()
    r.enable()
    return r


class TestCounter:
    def test_starts_at_zero_and_increments(self, reg):
        c = reg.counter("a")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_same_name_same_object(self, reg):
        assert reg.counter("a") is reg.counter("a")

    def test_disabled_is_noop(self, reg):
        c = reg.counter("a")
        reg.disable()
        c.inc(100)
        assert c.value == 0
        reg.enable()
        c.inc()
        assert c.value == 1


class TestHistogram:
    def test_bucketing(self, reg):
        h = reg.histogram("h", edges=(1, 2, 4))
        for v in (0.5, 1.0, 1.5, 3.0, 99.0):
            h.observe(v)
        # Buckets: <=1, <=2, <=4, overflow.
        assert h.counts == [2, 1, 1, 1]
        assert h.total == 5
        assert h.min == 0.5 and h.max == 99.0
        assert h.sum == pytest.approx(105.0)

    def test_edges_must_be_increasing(self, reg):
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("bad", edges=(1, 1, 2))
        with pytest.raises(ValueError, match="non-empty"):
            reg.histogram("empty", edges=())

    def test_same_name_requires_same_edges(self, reg):
        reg.histogram("h", edges=(1, 2))
        assert reg.histogram("h", edges=(1, 2)) is reg.histogram("h", (1, 2))
        with pytest.raises(ValueError, match="already exists"):
            reg.histogram("h", edges=(1, 3))

    def test_disabled_is_noop(self, reg):
        h = reg.histogram("h", edges=(1,))
        reg.disable()
        h.observe(0.5)
        assert h.total == 0


class TestTimer:
    def test_context_manager_records_span(self, reg):
        t = reg.timer("t")
        with t.time():
            pass
        assert t.calls == 1
        assert t.total_seconds >= 0.0
        assert t.max_seconds >= 0.0

    def test_add_seconds_and_max(self, reg):
        t = reg.timer("t")
        t.add_seconds(0.25)
        t.add_seconds(1.5)
        assert t.calls == 2
        assert t.total_seconds == pytest.approx(1.75)
        assert t.max_seconds == pytest.approx(1.5)

    def test_disabled_span_reads_no_clock(self, reg):
        t = reg.timer("t")
        reg.disable()
        with t.time():
            pass
        t.add_seconds(9.0)
        assert t.calls == 0 and t.total_seconds == 0.0


class TestSnapshotAndMerge:
    def _loaded(self):
        r = MetricsRegistry()
        r.enable()
        r.counter("c").inc(3)
        h = r.histogram("h", edges=(1, 2))
        h.observe(0.5)
        h.observe(5.0)
        r.timer("t").add_seconds(0.5)
        return r

    def test_snapshot_omits_unfired_instruments(self, reg):
        reg.counter("never")
        reg.histogram("empty", edges=(1,))
        reg.timer("idle")
        snap = reg.snapshot()
        assert snap.counters == {}
        assert snap.histograms == {}
        assert snap.timers == {}

    def test_snapshot_is_picklable_and_immutable(self):
        snap = self._loaded().snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert clone == snap
        with pytest.raises(AttributeError):
            snap.counters = {}

    def test_merge_sums_exactly(self):
        a = self._loaded().snapshot()
        b = self._loaded().snapshot()
        merged = a.merge(b)
        assert merged.counter("c") == 6
        hist = merged.histograms["h"]
        assert hist.counts == (2, 0, 2)
        assert hist.total == 4
        assert hist.sum == pytest.approx(11.0)
        assert hist.min == 0.5 and hist.max == 5.0
        timer = merged.timers["t"]
        assert timer.calls == 2
        assert timer.total_seconds == pytest.approx(1.0)
        assert timer.max_seconds == pytest.approx(0.5)

    def test_merge_all_matches_sequential_merges(self):
        snaps = [self._loaded().snapshot() for _ in range(4)]
        folded = MetricsSnapshot.merge_all(snaps)
        assert folded.counter("c") == 12
        assert folded.histograms["h"].total == 8

    def test_merge_rejects_mismatched_edges(self):
        a = HistogramSnapshot(
            edges=(1.0,), counts=(1, 0), total=1, sum=0.5, min=0.5, max=0.5
        )
        b = HistogramSnapshot(
            edges=(2.0,), counts=(1, 0), total=1, sum=0.5, min=0.5, max=0.5
        )
        with pytest.raises(ValueError, match="different edges"):
            a.merge(b)

    def test_disjoint_names_union(self):
        a = MetricsSnapshot(counters={"x": 1})
        b = MetricsSnapshot(counters={"y": 2})
        merged = a.merge(b)
        assert merged.counter("x") == 1 and merged.counter("y") == 2

    def test_timer_snapshot_merge(self):
        a = TimerSnapshot(calls=1, total_seconds=1.0, max_seconds=1.0)
        b = TimerSnapshot(calls=2, total_seconds=3.0, max_seconds=2.5)
        m = a.merge(b)
        assert m.calls == 3
        assert m.total_seconds == pytest.approx(4.0)
        assert m.max_seconds == pytest.approx(2.5)

    def test_roundtrip_dict_and_json(self):
        snap = self._loaded().snapshot()
        assert MetricsSnapshot.from_dict(snap.to_dict()) == snap
        import json

        assert MetricsSnapshot.from_dict(json.loads(snap.to_json())) == snap


class TestRegistryLifecycle:
    def test_reset_zeroes_but_keeps_flag(self, reg):
        reg.counter("c").inc(5)
        reg.reset()
        assert reg.counter("c").value == 0
        assert reg.enabled

    def test_absorb_sums_into_registry(self, reg):
        reg.counter("c").inc(1)
        worker = MetricsRegistry()
        worker.enable()
        worker.counter("c").inc(2)
        worker.histogram("h", edges=(1,)).observe(0.5)
        worker.timer("t").add_seconds(0.1)
        reg.absorb(worker.snapshot())
        snap = reg.snapshot()
        assert snap.counter("c") == 3
        assert snap.histograms["h"].total == 1
        assert snap.timers["t"].calls == 1

    def test_absorb_applies_even_while_disabled(self):
        parent = MetricsRegistry()
        assert not parent.enabled
        parent.absorb(MetricsSnapshot(counters={"c": 7}))
        assert parent.counter("c").value == 7

    def test_absorb_rejects_mismatched_edges(self, reg):
        reg.histogram("h", edges=(1,))
        snap = MetricsSnapshot(
            histograms={
                "h": HistogramSnapshot(
                    edges=(2.0,),
                    counts=(1, 0),
                    total=1,
                    sum=0.5,
                    min=0.5,
                    max=0.5,
                )
            }
        )
        with pytest.raises(ValueError, match="already exists"):
            reg.absorb(snap)

    def test_set_enabled(self, reg):
        reg.set_enabled(False)
        assert not reg.enabled
        reg.set_enabled(True)
        assert reg.enabled


class TestModuleLevelHelpers:
    def test_default_registry_helpers(self):
        registry = get_registry()
        assert registry is get_registry()
        was_enabled = metrics_enabled()
        try:
            enable_metrics()
            assert metrics_enabled()
            registry.counter("helper.test").inc()
            assert snapshot_metrics().counter("helper.test") == 1
            disable_metrics()
            assert not metrics_enabled()
        finally:
            reset_metrics()
            registry.set_enabled(was_enabled)
        assert snapshot_metrics().counter("helper.test") == 0


class TestSpanExceptionSemantics:
    """A span must record exactly once however its block unwinds."""

    def test_exception_unwind_records_exactly_once(self, reg):
        timer = reg.timer("t")
        with pytest.raises(RuntimeError):
            with timer.time():
                raise RuntimeError("boom")
        assert timer.calls == 1
        assert timer.total_seconds >= 0.0

    def test_second_exit_is_a_noop(self, reg):
        timer = reg.timer("t")
        span = timer.time()
        with pytest.raises(RuntimeError):
            with span:
                raise RuntimeError("boom")
        span.__exit__(None, None, None)  # stray extra exit
        assert timer.calls == 1

    def test_reentering_a_span_starts_a_fresh_measurement(self, reg):
        timer = reg.timer("t")
        span = timer.time()
        with span:
            pass
        with pytest.raises(RuntimeError):
            with span:
                raise RuntimeError("boom")
        assert timer.calls == 2

    def test_disabled_reentry_cannot_replay_a_stale_start(self, reg):
        timer = reg.timer("t")
        span = timer.time()
        span.__enter__()  # enabled: start mark armed, never exited
        reg.disable()
        span.__enter__()  # disabled re-entry must clear the stale mark
        span.__exit__(None, None, None)
        assert timer.calls == 0

    def test_exception_while_disabled_records_nothing(self, reg):
        timer = reg.timer("t")
        reg.disable()
        with pytest.raises(RuntimeError):
            with timer.time():
                raise RuntimeError("boom")
        assert timer.calls == 0
