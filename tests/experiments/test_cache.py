"""On-disk result cache: keys, invalidation, and round-trips."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cache import ResultCache, cache_key, code_fingerprint
from repro.experiments.registry import run_experiment


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestCacheKey:
    def test_stable_for_identical_params(self):
        assert cache_key("fig01", {"runs": 5, "seed": 1}) == cache_key(
            "fig01", {"runs": 5, "seed": 1}
        )

    def test_insensitive_to_param_order(self):
        assert cache_key("fig01", {"a": 1, "b": 2}) == cache_key(
            "fig01", {"b": 2, "a": 1}
        )

    def test_sensitive_to_exp_id_and_values(self):
        base = cache_key("fig01", {"runs": 5})
        assert cache_key("fig02", {"runs": 5}) != base
        assert cache_key("fig01", {"runs": 6}) != base

    def test_backend_knobs_excluded(self):
        """jobs/cache/backend change *how* we compute, never *what*."""
        assert cache_key("fig01", {"runs": 5, "jobs": 4}) == cache_key(
            "fig01", {"runs": 5, "jobs": 1}
        )
        assert cache_key("fig01", {"runs": 5, "jobs": 4}) == cache_key(
            "fig01", {"runs": 5}
        )
        assert cache_key("fig01", {"runs": 5, "backend": "farm"}) == cache_key(
            "fig01", {"runs": 5, "backend": "local"}
        )

    def test_code_fingerprint_is_stable_hex(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)


class TestResultCache:
    def test_round_trip(self, cache):
        result, hit = run_experiment("fig01", cache=cache, runs=3)
        assert not hit
        again, hit = run_experiment("fig01", cache=cache, runs=3)
        assert hit
        assert again == result

    def test_param_change_misses(self, cache):
        run_experiment("fig01", cache=cache, runs=3)
        _, hit = run_experiment("fig01", cache=cache, runs=4)
        assert not hit

    def test_jobs_hits_same_entry(self, cache):
        serial, _ = run_experiment("fig01", cache=cache, runs=3, jobs=1)
        parallel, hit = run_experiment("fig01", cache=cache, runs=3, jobs=2)
        assert hit
        assert parallel == serial

    def test_no_cache_recomputes(self):
        result, hit = run_experiment("fig01", cache=None, runs=3)
        assert not hit
        assert result.exp_id == "fig01"

    def test_corrupt_entry_is_a_miss(self, cache):
        run_experiment("fig01", cache=cache, runs=3)
        for path in cache.directory.glob("*.json"):
            path.write_text("{not json")
        _, hit = run_experiment("fig01", cache=cache, runs=3)
        assert not hit

    def test_repeated_corruption_quarantines_every_generation(self, cache):
        """A recomputed entry that is corrupted *again* is quarantined
        under a fresh unique name -- no clobbering, no loops."""
        for generation in range(3):
            _, hit = run_experiment("fig01", cache=cache, runs=3)
            assert not hit  # each prior entry was corrupt, never served
            for path in cache.directory.glob("*.json"):
                path.write_text(f"garbage generation {generation}")
        assert cache.load("fig01", {"runs": 3}) is None
        assert cache.quarantine_count() == 3
        names = sorted(p.name for p in cache.quarantine_dir.iterdir())
        assert len(names) == 3
        assert names[1] == f"{names[0]}.1"
        assert names[2] == f"{names[0]}.2"
        contents = {p.read_text() for p in cache.quarantine_dir.iterdir()}
        assert contents == {f"garbage generation {g}" for g in range(3)}

    def test_code_change_invalidates(self, cache, monkeypatch):
        """The fingerprint is part of the key: new code, new entry."""
        import repro.experiments.cache as cache_mod

        run_experiment("fig01", cache=cache, runs=3)
        monkeypatch.setattr(cache_mod, "_FINGERPRINT", "0" * 64)
        _, hit = run_experiment("fig01", cache=cache, runs=3)
        assert not hit

    def test_clear_empties_directory(self, cache):
        run_experiment("fig01", cache=cache, runs=3)
        assert cache.entry_count() >= 1
        removed = cache.clear()
        assert removed >= 1
        assert cache.entry_count() == 0

    def test_stats_and_hit_rate(self, cache):
        assert cache.hit_rate == 0.0
        run_experiment("fig01", cache=cache, runs=3)
        run_experiment("fig01", cache=cache, runs=3)
        hits, misses = cache.stats()
        assert (hits, misses) == (1, 1)
        assert cache.hit_rate == 0.5
