"""Tests for the irregularity-model calibration (EXPERIMENTS.md C1)."""

from __future__ import annotations

import pytest

from repro.experiments.calibration import (
    PAPER_TARGET_RATE,
    calibrate,
    measure_false_negative_rate,
)


def test_zero_miss_gives_zero_rate():
    rate, total = measure_false_negative_rate(
        0.0, runs_per_cell=3, participants=6, thresholds=(2,), seed=1
    )
    assert rate == 0.0
    assert total == 3 * 7  # runs x (participants + 1) x thresholds


def test_certain_miss_gives_high_rate():
    rate, _ = measure_false_negative_rate(
        1.0,
        decay=1.0,
        runs_per_cell=3,
        participants=6,
        thresholds=(2,),
        seed=1,
    )
    # Every true instance (x >= 2, i.e. 5 of 7 x values) is missed.
    assert rate > 0.5


def test_rate_monotone_in_p_single():
    rates = []
    for p in (0.0, 0.2, 0.8):
        rate, _ = measure_false_negative_rate(
            p, runs_per_cell=4, participants=6, thresholds=(2, 4), seed=2
        )
        rates.append(rate)
    assert rates[0] <= rates[1] <= rates[2]


def test_calibrate_selects_nearest_to_target():
    result = calibrate(
        grid=(0.0, 0.8),
        participants=6,
        runs_per_cell=3,
        seed=3,
    )
    # Target ~1.4%: the zero-miss point (0%) is far closer than 0.8.
    assert result.best_p_single == 0.0
    assert len(result.table) == 2
    assert result.target_rate == PAPER_TARGET_RATE


def test_calibrate_report_renders():
    result = calibrate(
        grid=(0.0,), participants=4, runs_per_cell=2, seed=4
    )
    text = result.report()
    assert "selected" in text
    assert "102/7200" in text


def test_empty_grid_rejected():
    with pytest.raises(ValueError):
        calibrate(grid=())


@pytest.mark.slow
def test_shipped_default_lands_near_paper_rate():
    """The (0.05, 0.1) default used by fig04 must land within a factor of
    ~2.5 of the paper's 1.4% on a reduced suite."""
    rate, _ = measure_false_negative_rate(
        0.05, decay=0.1, runs_per_cell=10, seed=5
    )
    assert 0.004 <= rate <= 0.04
