"""Shape tests for the extension experiments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ext_interference, ext_latency


@pytest.fixture(scope="session")
def latency():
    return ext_latency.run(runs=15, seed=1)


@pytest.fixture(scope="session")
def interference():
    return ext_interference.run(runs=20, seed=2, rates=(0.0, 2.0, 6.0))


class TestLatency:
    def test_series_present(self, latency):
        labels = {s.label for s in latency.series}
        assert labels == {"tcast/backcast", "CSMA", "Sequential"}

    def test_all_latencies_positive(self, latency):
        for s in latency.series:
            assert all(y > 0 for y in s.ys)

    def test_tcast_beats_sequential_for_sparse_x(self, latency):
        """The RCD advantage at the sparse end (x << t), where sequential
        must scan nearly the whole schedule."""
        tcast = latency.get_series("tcast/backcast")
        seq = latency.get_series("Sequential")
        assert tcast.y_at(0) < seq.y_at(0)

    def test_tcast_competitive_with_csma_for_dense_x(self, latency):
        """Measured CSMA terminates at the t-th reply, so it stays flat
        past x = t; tcast must stay within a small factor of it there
        (and, unlike CSMA, certifies its verdicts)."""
        n = latency.parameters["participants"]
        tcast = latency.get_series("tcast/backcast")
        csma = latency.get_series("CSMA")
        assert tcast.y_at(n) < csma.y_at(n) * 1.5

    def test_csma_negative_verdicts_pay_the_quiet_floor(self, latency):
        """With x = 0 the CSMA initiator can only time out: its latency
        is pinned at the quiet period (8 ms in this experiment)."""
        csma = latency.get_series("CSMA")
        assert csma.y_at(0) == pytest.approx(8.0, abs=0.5)

    def test_notes_report_energy_and_calibration(self, latency):
        text = " ".join(latency.notes)
        assert "initiator energy per session" in text
        assert "tcast" in text and "CSMA" in text and "sequential" in text
        assert "reply slot" in text


class TestInterference:
    def test_zero_rate_zero_errors(self, interference):
        fn = interference.get_series("false-negative rate")
        assert fn.y_at(0.0) == 0.0

    def test_errors_grow_with_interference(self, interference):
        fn = interference.get_series("false-negative rate")
        assert fn.ys[-1] >= fn.ys[0]

    def test_no_false_positives_ever(self, interference):
        note = next(n for n in interference.notes if "false positives" in n)
        assert note.split(":")[1].strip().split()[0] == "0"

    def test_queries_reported(self, interference):
        q = interference.get_series("mean queries")
        assert all(y > 0 for y in q.ys)


class TestScaling:
    @pytest.fixture(scope="class")
    def scaling(self):
        from repro.experiments import ext_scaling

        return ext_scaling.run(runs=40, seed=1, ns=(32, 128, 512))

    def test_sequential_linear_in_n(self, scaling):
        seq = scaling.get_series("Sequential")
        # x = 0: exactly n - t + 1 slots, i.e. slope ~ 1 in N.
        assert seq.y_at(512) / seq.y_at(32) > 10

    def test_tcast_logarithmic_in_n(self, scaling):
        two = scaling.get_series("2tBins")
        # 16x growth in N buys only ~log growth in queries.
        assert two.y_at(512) / two.y_at(32) < 4

    def test_bound_dominates_measurements(self, scaling):
        two = scaling.get_series("2tBins")
        bound = scaling.get_series("2t(log2(N/2t)+1) bound")
        for y, b in zip(two.ys, bound.ys):
            assert y <= b

    def test_crossover_tcast_wins_at_scale(self, scaling):
        two = scaling.get_series("2tBins")
        seq = scaling.get_series("Sequential")
        assert two.y_at(512) < seq.y_at(512) / 5


class TestFaults:
    @pytest.fixture(scope="class")
    def faults(self):
        from repro.experiments import ext_faults

        return ext_faults.run(runs=60, seed=5, p_singles=(0.0, 0.1, 0.2))

    def test_series_present(self, faults):
        labels = {s.label for s in faults.series}
        assert labels == {
            "2tBins FN rate",
            "reliable FN rate",
            "2tBins mean queries",
            "reliable mean queries",
            "mean retries",
        }

    def test_fault_free_cell_is_exact_for_both_arms(self, faults):
        assert faults.get_series("2tBins FN rate").y_at(0.0) == 0.0
        assert faults.get_series("reliable FN rate").y_at(0.0) == 0.0
        assert faults.get_series("mean retries").y_at(0.0) == 0.0

    def test_reliable_arm_beats_plain_under_faults(self, faults):
        plain = faults.get_series("2tBins FN rate")
        rel = faults.get_series("reliable FN rate")
        assert plain.y_at(0.2) > 0.0
        assert rel.y_at(0.2) < plain.y_at(0.2)

    def test_retries_cost_queries(self, faults):
        qp = faults.get_series("2tBins mean queries")
        qr = faults.get_series("reliable mean queries")
        retries = faults.get_series("mean retries")
        assert retries.y_at(0.2) > 0.0
        assert qr.y_at(0.2) > qp.y_at(0.2)

    def test_cost_multiplier_note_present(self, faults):
        assert any("cost multipliers" in n for n in faults.notes)
