"""Reproducibility guarantees of the experiment harness.

Every runner must be a pure function of its ``(runs, seed, parameters)``
arguments: identical inputs produce byte-identical CSV output, and a
different seed produces different draws.  This is what makes the
EXPERIMENTS.md numbers re-checkable.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig01_one_plus,
    fig03_threshold_sweep,
    fig09_accuracy,
    fig11_distributions,
)

FAST_RUNNERS = {
    "fig01": lambda seed: fig01_one_plus.run(runs=8, seed=seed),
    "fig03": lambda seed: fig03_threshold_sweep.run(runs=8, seed=seed),
    "fig09": lambda seed: fig09_accuracy.run(
        runs=20, seed=seed, repeat_counts=(1, 3), d_grid=(8, 32)
    ),
    "fig11": lambda seed: fig11_distributions.run(runs=500, seed=seed),
}


@pytest.mark.parametrize("name", sorted(FAST_RUNNERS))
def test_same_seed_same_csv(name):
    runner = FAST_RUNNERS[name]
    assert runner(7).to_csv() == runner(7).to_csv()


@pytest.mark.parametrize("name", sorted(FAST_RUNNERS))
def test_different_seed_different_csv(name):
    runner = FAST_RUNNERS[name]
    assert runner(7).to_csv() != runner(8).to_csv()


def test_testbed_experiment_reproducible():
    from repro.experiments import fig04_testbed

    a = fig04_testbed.run(runs=3, seed=5, thresholds=(2,))
    b = fig04_testbed.run(runs=3, seed=5, thresholds=(2,))
    assert a.to_csv() == b.to_csv()
    assert a.notes == b.notes


def test_extension_experiment_reproducible():
    from repro.experiments import ext_interference

    a = ext_interference.run(runs=5, seed=5, rates=(0.0, 2.0))
    b = ext_interference.run(runs=5, seed=5, rates=(0.0, 2.0))
    assert a.to_csv() == b.to_csv()
