"""Ctrl-C at the CLI boundary: exit 130, no traceback.

Regression suite for the PR-9 bugfix: a ``KeyboardInterrupt`` raised
anywhere inside a subcommand used to escape :func:`repro.experiments.cli.main`
and spray a traceback; it is now caught at the ``main()`` boundary and
converted to the conventional ``128 + SIGINT`` exit status.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.experiments import cli, report


class TestInProcessBoundary:
    @pytest.mark.parametrize(
        "argv, target, attr",
        [
            (["list"], cli, "list_experiments"),
            (["report"], report, "generate_report"),
        ],
    )
    def test_keyboard_interrupt_becomes_130(
        self, monkeypatch, capsys, argv, target, attr
    ):
        def _interrupt(*args: object, **kwargs: object) -> None:
            raise KeyboardInterrupt

        monkeypatch.setattr(target, attr, _interrupt)
        assert cli.main(argv) == 130
        err = capsys.readouterr().err
        assert "[interrupted]" in err
        assert "Traceback" not in err

    def test_other_exceptions_still_propagate(self, monkeypatch):
        def _boom(*args: object, **kwargs: object) -> None:
            raise RuntimeError("not an interrupt")

        monkeypatch.setattr(cli, "list_experiments", _boom)
        with pytest.raises(RuntimeError, match="not an interrupt"):
            cli.main(["list"])


class TestSubprocessBoundary:
    def test_interrupted_subcommand_exits_130(self, tmp_path):
        """A real child process must exit 130 with a clean stderr."""
        script = textwrap.dedent(
            """
            from repro.experiments import cli

            def _interrupt(*args, **kwargs):
                raise KeyboardInterrupt

            cli.list_experiments = _interrupt
            raise SystemExit(cli.main(["list"]))
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[2] / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
            cwd=tmp_path,
        )
        assert proc.returncode == 130, proc.stderr
        assert "[interrupted]" in proc.stderr
        assert "Traceback" not in proc.stderr
