"""Round-trip tests for the JSON serialisation layer."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TwoTBins
from repro.core.result import RoundRecord, ThresholdResult
from repro.experiments.common import ExperimentResult, Series
from repro.experiments.serialization import (
    experiment_result_from_dict,
    experiment_result_from_json,
    experiment_result_to_dict,
    experiment_result_to_json,
    threshold_result_from_dict,
    threshold_result_to_dict,
)
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population


class TestThresholdResultRoundTrip:
    def test_real_session_round_trips(self):
        pop = Population.from_count(64, 20, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        result = TwoTBins().decide(model, 8, np.random.default_rng(2))
        restored = threshold_result_from_dict(threshold_result_to_dict(result))
        assert restored == result

    def test_dict_is_json_safe(self):
        pop = Population.from_count(32, 5, np.random.default_rng(0))
        model = OnePlusModel(pop, np.random.default_rng(1))
        result = TwoTBins().decide(model, 4, np.random.default_rng(2))
        json.dumps(threshold_result_to_dict(result))  # must not raise

    @settings(max_examples=30)
    @given(
        decision=st.booleans(),
        queries=st.integers(min_value=0, max_value=10_000),
        rounds=st.integers(min_value=0, max_value=100),
        threshold=st.integers(min_value=0, max_value=1000),
        confirmed=st.integers(min_value=0, max_value=100),
        exact=st.booleans(),
        p_estimate=st.one_of(st.none(), st.floats(min_value=0, max_value=1e6)),
    )
    def test_arbitrary_results_round_trip(
        self, decision, queries, rounds, threshold, confirmed, exact, p_estimate
    ):
        record = RoundRecord(
            index=0,
            bins_requested=4,
            bins_queried=3,
            silent_bins=1,
            captured=0,
            evidence=2,
            eliminated=5,
            candidates_after=10,
            p_estimate=p_estimate,
        )
        result = ThresholdResult(
            decision=decision,
            queries=queries,
            rounds=rounds,
            threshold=threshold,
            confirmed_positives=confirmed,
            exact=exact,
            history=(record,),
            algorithm="test",
        )
        assert threshold_result_from_dict(threshold_result_to_dict(result)) == result

    def test_missing_field_raises(self):
        with pytest.raises(KeyError):
            threshold_result_from_dict({"decision": True})


class TestExperimentResultRoundTrip:
    def _result(self):
        return ExperimentResult(
            exp_id="figXX",
            title="demo",
            parameters={"n": 4, "thresholds": (2, 4), "label": "x"},
            series=(
                Series(
                    label="a",
                    xs=(0.0, 1.0),
                    ys=(1.5, 2.5),
                    stderr=(0.1, 0.2),
                ),
            ),
            notes=("hello",),
        )

    def test_round_trip_via_dict(self):
        r = self._result()
        restored = experiment_result_from_dict(experiment_result_to_dict(r))
        assert restored.exp_id == r.exp_id
        assert restored.series == r.series
        assert restored.notes == r.notes

    def test_round_trip_via_json(self):
        r = self._result()
        restored = experiment_result_from_json(experiment_result_to_json(r))
        assert restored.get_series("a").ys == (1.5, 2.5)
        assert restored.parameters["n"] == 4

    def test_numpy_scalars_coerced(self):
        r = ExperimentResult(
            exp_id="f",
            title="t",
            parameters={"n": np.int64(4), "sigma": np.float64(2.5)},
            series=(Series(label="s", xs=(0.0,), ys=(1.0,)),),
        )
        text = experiment_result_to_json(r)
        parsed = json.loads(text)
        assert parsed["parameters"]["n"] == 4
        assert parsed["parameters"]["sigma"] == 2.5

    def test_real_figure_round_trips(self):
        from repro.experiments import fig11_distributions

        result = fig11_distributions.run(runs=500, seed=1)
        restored = experiment_result_from_json(
            experiment_result_to_json(result)
        )
        assert restored.series == result.series

    def test_malformed_json_raises(self):
        with pytest.raises(json.JSONDecodeError):
            experiment_result_from_json("{not json")
