"""Crash-safe execution layer: journal, supervision, cache integrity.

In-process coverage of :mod:`repro.experiments.resilience` and its
integration with the sweep engine: CRC-framed journal round-trips and
torn-tail repair, resume bit-identity (including across *different*
shard boundaries), supervised requeue/quarantine on killed and hung
workers, worker-side error reporting with remote tracebacks, result
cache checksums and quarantine, and graceful-shutdown signal handling.
Whole-process chaos scenarios (SIGINT a live CLI run, resume, ``cmp``
the CSVs) live in ``tests/integration/chaos/``.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.api import algorithm_factory
from repro.experiments import resilience
from repro.experiments.atomicio import (
    atomic_write_bytes,
    atomic_write_text,
    checksum_line,
    parse_checksum_line,
)
from repro.experiments.cache import ResultCache
from repro.experiments.common import (
    ExperimentResult,
    Series,
    SweepEngine,
    shutdown_executors,
)
from repro.experiments.resilience import (
    GracefulExit,
    GracefulShutdown,
    RunContext,
    ShardExecutionError,
    ShardJournal,
    ShardOutcome,
    SupervisionPolicy,
    run_supervised,
)
from repro.group_testing.model import ModelSpec
from repro.obs import get_registry


@pytest.fixture(scope="module", autouse=True)
def _fake_multicore():
    """Pretend the host has >= 4 CPUs (see test_parallel.py)."""
    real = os.cpu_count
    mp = pytest.MonkeyPatch()
    mp.setattr(os, "cpu_count", lambda: max(4, real() or 1))
    yield
    mp.undo()


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_executors()


# ---------------------------------------------------------------------------
# atomicio
# ---------------------------------------------------------------------------


class TestAtomicIO:
    def test_write_bytes_and_no_tmp_left_behind(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"payload", fsync=False)
        assert target.read_bytes() == b"payload"
        assert list(tmp_path.glob(".*.tmp")) == []

    def test_write_text_replaces_existing(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new", fsync=False)
        assert target.read_text() == "new"

    def test_checksum_line_roundtrip(self):
        line = checksum_line('{"a":1}')
        assert line.endswith("\n")
        assert parse_checksum_line(line) == '{"a":1}'

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "short",
            "zzzzzzzz {}",  # non-hex checksum
            "00000000 {}",  # wrong checksum
            checksum_line("{}").replace("{", "["),  # flipped payload byte
        ],
    )
    def test_corrupt_lines_rejected(self, line):
        assert parse_checksum_line(line.rstrip("\n")) is None


# ---------------------------------------------------------------------------
# ShardJournal
# ---------------------------------------------------------------------------


def _journal(path, **kwargs):
    kwargs.setdefault("exp_id", "figX")
    kwargs.setdefault("key", "k" * 64)
    kwargs.setdefault("fsync", False)
    return ShardJournal(path, **kwargs)


class TestShardJournal:
    def test_record_lookup_roundtrip(self, tmp_path):
        j = _journal(tmp_path / "j")
        j.record("algo", 4, 0, 3, [1.0, 2.0, 3.0])
        assert j.lookup("algo", 4, 0, 3) == [1.0, 2.0, 3.0]
        assert j.lookup("algo", 4, 0, 4) is None  # run 3 missing
        assert j.lookup("algo", 5, 0, 3) is None
        j.close()

    def test_lookup_spans_shard_boundaries(self, tmp_path):
        """Per-run merging: any block covered by records is answerable."""
        j = _journal(tmp_path / "j")
        j.record("algo", 4, 0, 4, [0.0, 1.0, 2.0, 3.0])
        j.record("algo", 4, 4, 8, [4.0, 5.0, 6.0, 7.0])
        assert j.lookup("algo", 4, 2, 6) == [2.0, 3.0, 4.0, 5.0]
        assert j.lookup("algo", 4, 0, 8) == [float(i) for i in range(8)]
        j.close()

    def test_resume_replays_records(self, tmp_path):
        path = tmp_path / "j"
        j1 = _journal(path)
        j1.record("algo", 4, 0, 2, [1.5, 2.5])
        j1.close()
        j2 = _journal(path, resume=True)
        assert j2.resumed_records == 1
        assert j2.lookup("algo", 4, 0, 2) == [1.5, 2.5]
        j2.close()

    def test_torn_tail_dropped_and_compacted(self, tmp_path):
        path = tmp_path / "j"
        j1 = _journal(path)
        j1.record("algo", 4, 0, 2, [1.0, 2.0])
        j1.record("algo", 8, 0, 2, [3.0, 4.0])
        j1.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('deadbeef {"label":"algo","x":12,"lo":0,"hi')  # torn
        j2 = _journal(path, resume=True)
        assert j2.resumed_records == 2
        assert j2.dropped_records == 1
        assert j2.lookup("algo", 12, 0, 2) is None
        j2.close()
        # Compaction rewrote a fully valid file.
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # header + 2 records
        assert all(parse_checksum_line(line) is not None for line in lines)

    def test_key_mismatch_starts_fresh(self, tmp_path):
        path = tmp_path / "j"
        j1 = _journal(path, key="a" * 64)
        j1.record("algo", 4, 0, 2, [1.0, 2.0])
        j1.close()
        j2 = _journal(path, key="b" * 64, resume=True)
        assert j2.resumed_records == 0
        assert j2.lookup("algo", 4, 0, 2) is None
        j2.close()

    def test_no_resume_discards_existing(self, tmp_path):
        path = tmp_path / "j"
        j1 = _journal(path)
        j1.record("algo", 4, 0, 2, [1.0, 2.0])
        j1.close()
        j2 = _journal(path, resume=False)
        assert j2.lookup("algo", 4, 0, 2) is None
        j2.close()

    def test_discard_removes_file(self, tmp_path):
        path = tmp_path / "j"
        j = _journal(path)
        j.record("algo", 4, 0, 2, [1.0, 2.0])
        j.discard()
        assert not path.exists()


class TestJournalQuarantineRecords:
    def test_quarantine_counted_and_retried_on_resume(self, tmp_path):
        """Quarantine records survive resume as documentation but never
        satisfy a lookup: the resumed run retries the shard."""
        path = tmp_path / "j"
        j1 = _journal(path)
        j1.record("algo", 1, 0, 2, [1.0, 2.0])
        j1.record_quarantine("algo", 2, 0, 2, "worker died twice")
        assert j1.quarantined_records == 1
        j1.close()
        j2 = _journal(path, resume=True)
        assert j2.resumed_records == 1
        assert j2.quarantined_records == 1
        assert j2.dropped_records == 0
        assert j2.lookup("algo", 1, 0, 2) == [1.0, 2.0]
        assert j2.lookup("algo", 2, 0, 2) is None  # retried, not skipped
        j2.close()

    def test_quarantine_survives_compaction(self, tmp_path):
        """A torn tail triggers compaction; the quarantine record must
        be preserved in the rewritten file."""
        path = tmp_path / "j"
        j1 = _journal(path)
        j1.record("algo", 1, 0, 2, [1.0, 2.0])
        j1.record_quarantine("algo", 2, 0, 2, "hung pool")
        j1.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('deadbeef {"label":"algo","x":9,"lo":0,"hi')  # torn
        j2 = _journal(path, resume=True)
        assert j2.dropped_records == 1
        assert j2.quarantined_records == 1
        j2.close()
        j3 = _journal(path, resume=True)
        assert j3.quarantined_records == 1
        assert j3.dropped_records == 0
        j3.close()

    def test_mark_degraded_journals_quarantine(self, tmp_path):
        ctx = RunContext(journal=_journal(tmp_path / "j"))
        ctx.mark_degraded(_Task("algo", 3, 0, 2), "gave up after 2 attempts")
        assert len(ctx.degraded) == 1
        assert ctx.journal.quarantined_records == 1

    def test_journal_summary_counts(self, tmp_path):
        path = tmp_path / "j"
        j = _journal(path)
        j.record("algo", 1, 0, 2, [1.0, 2.0])
        j.record("algo", 2, 0, 3, [1.0, 2.0, 3.0])
        j.record_quarantine("algo", 3, 0, 2, "sick host")
        j.close()
        info = resilience.journal_summary(path)
        assert info is not None
        assert info["exp_id"] == "figX"
        assert info["shard_records"] == 2
        assert info["quarantined_records"] == 1
        assert info["cells"] == 2
        assert info["runs"] == 5
        assert info["corrupt_records"] == 0

    def test_journal_summary_unreadable_is_none(self, tmp_path):
        assert resilience.journal_summary(tmp_path / "missing") is None
        bad = tmp_path / "bad"
        bad.write_text("not a header\n")
        assert resilience.journal_summary(bad) is None


# ---------------------------------------------------------------------------
# ResultCache integrity
# ---------------------------------------------------------------------------


def _result():
    return ExperimentResult(
        exp_id="figX",
        title="test",
        parameters={"runs": 2},
        series=(Series(label="s", xs=(1.0, 2.0), ys=(3.0, 4.0)),),
    )


class TestCacheIntegrity:
    def test_roundtrip_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("figX", {"runs": 2}, _result())
        assert cache.load("figX", {"runs": 2}) == _result()
        assert cache.quarantine_count() == 0

    def test_tampered_payload_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store("figX", {"runs": 2}, _result())
        data = json.loads(path.read_text())
        data["result"]["title"] = "tampered"  # checksum now stale
        path.write_text(json.dumps(data))
        assert cache.load("figX", {"runs": 2}) is None
        assert not path.exists()
        assert cache.quarantine_count() == 1
        # The quarantined entry never comes back.
        assert cache.load("figX", {"runs": 2}) is None

    def test_truncated_entry_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store("figX", {"runs": 2}, _result())
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])
        assert cache.load("figX", {"runs": 2}) is None
        assert cache.quarantine_count() == 1

    def test_missing_checksum_field_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.store("figX", {"runs": 2}, _result())
        data = json.loads(path.read_text())
        del data["checksum"]
        path.write_text(json.dumps(data))
        assert cache.load("figX", {"runs": 2}) is None
        assert cache.quarantine_count() == 1


# ---------------------------------------------------------------------------
# run_supervised (module-level workers: picklable under fork)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Task:
    label: str
    x: int
    run_lo: int
    run_hi: int
    sentinel: str = ""


def _echo(task):
    return ShardOutcome(
        costs=[float(task.x)] * (task.run_hi - task.run_lo)
    )


def _error(task):
    return ShardOutcome(
        error_type="ValueError",
        remote_traceback="Traceback (most recent call last): boom",
    )


def _kill_self(task):
    os.kill(os.getpid(), signal.SIGKILL)
    return ShardOutcome(costs=[])  # pragma: no cover - never reached


def _kill_once(task):
    """Kill the worker the first time only (exclusive-create sentinel)."""
    try:
        open(task.sentinel, "x").close()
    except FileExistsError:
        return _echo(task)
    os.kill(os.getpid(), signal.SIGKILL)
    return ShardOutcome(costs=[])  # pragma: no cover - never reached


def _hang_once(task):
    """Hang the worker the first time only."""
    try:
        open(task.sentinel, "x").close()
    except FileExistsError:
        return _echo(task)
    time.sleep(60)
    return ShardOutcome(costs=[])  # pragma: no cover - killed first


def _policy(**kwargs):
    kwargs.setdefault("max_retries", 2)
    kwargs.setdefault("poll_interval", 0.05)
    kwargs.setdefault("backoff_base", 0.0)
    kwargs.setdefault("drain_grace", 1.0)
    return SupervisionPolicy(**kwargs)


def _supervise(fn, tasks, policy, jobs=2):
    completed, quarantined = {}, {}
    run_supervised(
        fn,
        list(enumerate(tasks)),
        jobs=jobs,
        context=RunContext(policy=policy),
        on_complete=lambda i, t, o: completed.__setitem__(i, o.costs),
        on_quarantine=lambda i, t, r: quarantined.__setitem__(i, r),
    )
    return completed, quarantined


class TestRunSupervised:
    def test_all_shards_complete(self):
        tasks = [_Task("a", x, 0, 2) for x in range(6)]
        completed, quarantined = _supervise(_echo, tasks, _policy())
        assert quarantined == {}
        assert completed == {i: [float(i)] * 2 for i in range(6)}

    def test_in_shard_error_aborts_with_coordinates(self):
        tasks = [_Task("algo", 7, 3, 9)]
        with pytest.raises(ShardExecutionError) as ei:
            _supervise(_error, tasks, _policy())
        err = ei.value
        assert (err.label, err.x, err.run_lo, err.run_hi) == ("algo", 7, 3, 9)
        assert err.error_type == "ValueError"
        assert "boom" in str(err)

    def test_killed_worker_is_requeued_then_succeeds(self, tmp_path):
        tasks = [_Task("a", 3, 0, 2, sentinel=str(tmp_path / "s"))]
        completed, quarantined = _supervise(
            _kill_once, tasks, _policy(), jobs=1
        )
        assert quarantined == {}
        assert completed == {0: [3.0, 3.0]}

    def test_repeatedly_killed_worker_is_quarantined(self):
        tasks = [_Task("a", 3, 0, 2)]
        completed, quarantined = _supervise(
            _kill_self, tasks, _policy(max_retries=1), jobs=1
        )
        assert completed == {}
        assert list(quarantined) == [0]
        assert "gave up after 2 attempts" in quarantined[0]

    def test_hung_worker_detected_and_requeued(self, tmp_path):
        tasks = [_Task("a", 5, 0, 2, sentinel=str(tmp_path / "s"))]
        completed, quarantined = _supervise(
            _hang_once, tasks, _policy(stall_timeout=1.0), jobs=1
        )
        assert quarantined == {}
        assert completed == {0: [5.0, 5.0]}

    def test_stall_deadline_from_policy_and_observations(self):
        assert _policy(stall_timeout=7.0).stall_deadline(100.0) == 7.0
        p = _policy()
        assert p.stall_deadline(0.0) == p.stall_default
        assert p.stall_deadline(10.0) == p.stall_factor * 10.0
        assert p.stall_deadline(0.001) == p.stall_floor


class TestStallColdStart:
    """Satellite 1: the cold-start fallback is an explicit, documented
    constant and is logged exactly once per process."""

    @pytest.fixture(autouse=True)
    def _fresh_flag(self, monkeypatch):
        monkeypatch.setattr(resilience, "_stall_cold_start_logged", False)

    def test_default_is_the_documented_constant(self):
        p = SupervisionPolicy()
        assert p.stall_default == resilience.STALL_COLD_START_DEFAULT
        assert p.stall_deadline(0.0) == resilience.STALL_COLD_START_DEFAULT

    def test_cold_start_logged_exactly_once(self, caplog):
        p = _policy()
        with caplog.at_level(
            logging.INFO, logger="repro.experiments.resilience"
        ):
            assert p.stall_deadline(0.0) == p.stall_default
            assert p.stall_deadline(0.0) == p.stall_default  # second hit
        hits = [r for r in caplog.records if "cold start" in r.message]
        assert len(hits) == 1

    def test_observed_branch_does_not_log(self, caplog):
        p = _policy()
        with caplog.at_level(
            logging.INFO, logger="repro.experiments.resilience"
        ):
            assert p.stall_deadline(10.0) == p.stall_factor * 10.0
        assert not [r for r in caplog.records if "cold start" in r.message]

    def test_histogram_observation_ends_cold_start(self):
        """Once any shard duration lands in ``sweep.shard_seconds``, the
        deadline adapts even with no supervisor-local observation."""
        from repro.experiments import common

        reg = get_registry()
        reg.reset()
        reg.enable()
        try:
            common._S_SHARD_SECONDS.observe(12.0)
            p = _policy()
            assert p.stall_deadline(0.0) == p.stall_factor * 12.0
        finally:
            reg.disable()
            reg.reset()


# ---------------------------------------------------------------------------
# Engine integration: resume bit-identity, degraded runs, error reporting
# ---------------------------------------------------------------------------


class _BoomAlgo:
    def decide(self, model, threshold, rng):
        raise ValueError("boom inside worker")


def _boom_factory(x):
    return _BoomAlgo()


def _engine(jobs, runs=8):
    return SweepEngine(64, 8, runs=runs, seed=77, jobs=jobs)


def _curve(engine):
    return engine.query_curve(
        "2tBins",
        [0, 4, 8],
        algorithm_factory("2tbins"),
        ModelSpec(kind="1+", max_queries=64 * 50),
    )


class TestEngineResume:
    def test_serial_resume_skips_everything_and_matches(self, tmp_path):
        path = tmp_path / "j"
        ctx1 = RunContext(journal=_journal(path))
        with resilience.activate(ctx1):
            baseline = _curve(_engine(1))
        assert ctx1.journal.appended_records == 3  # one shard per x
        ctx2 = RunContext(journal=_journal(path, resume=True), resumed=True)
        with resilience.activate(ctx2):
            resumed = _curve(_engine(1))
        assert ctx2.journal.appended_records == 0
        assert resumed == baseline

    def test_partial_resume_recomputes_only_missing(self, tmp_path):
        path = tmp_path / "j"
        ctx1 = RunContext(journal=_journal(path))
        with resilience.activate(ctx1):
            baseline = _curve(_engine(1))
        # Truncate to header + first record: a crash after one shard.
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:2]))
        ctx2 = RunContext(journal=_journal(path, resume=True), resumed=True)
        with resilience.activate(ctx2):
            resumed = _curve(_engine(1))
        assert ctx2.journal.resumed_records == 1
        assert ctx2.journal.appended_records == 2
        assert resumed == baseline

    def test_resume_across_different_shard_boundaries(self, tmp_path):
        """A serial journal must satisfy a parallel resume (and back)."""
        path = tmp_path / "j"
        ctx1 = RunContext(journal=_journal(path))
        with resilience.activate(ctx1):
            baseline = _curve(_engine(1))
        ctx2 = RunContext(journal=_journal(path, resume=True), resumed=True)
        with resilience.activate(ctx2):
            resumed = _curve(_engine(4))
        assert ctx2.journal.appended_records == 0  # every block covered
        assert resumed == baseline

    def test_supervised_parallel_matches_serial(self, tmp_path):
        plain = _curve(_engine(2))
        ctx = RunContext(journal=_journal(tmp_path / "j"))
        with resilience.activate(ctx):
            supervised = _curve(_engine(2))
        assert supervised == plain
        assert ctx.degraded == []

    @pytest.mark.parametrize("with_context", [False, True])
    def test_worker_error_reports_coordinates(self, tmp_path, with_context):
        engine = _engine(2)
        spec = ModelSpec(kind="1+", max_queries=64 * 50)
        if with_context:
            ctx = RunContext(
                journal=_journal(tmp_path / "j"), policy=_policy()
            )
            with resilience.activate(ctx):
                with pytest.raises(ShardExecutionError) as ei:
                    engine.query_curve(
                        "boom", [0, 4], _boom_factory, spec,
                        check_exactness=False,
                    )
        else:
            with pytest.raises(ShardExecutionError) as ei:
                engine.query_curve(
                    "boom", [0, 4], _boom_factory, spec,
                    check_exactness=False,
                )
        err = ei.value
        assert err.label == "boom"
        assert err.error_type == "ValueError"
        assert "boom inside worker" in err.remote_traceback
        assert "ValueError" in str(err)

    def test_metrics_survive_repeated_arm_disarm_cycles(self, tmp_path):
        """Counters and pools stay sane across enable/run/disable loops."""
        reg = get_registry()
        for cycle in range(3):
            reg.reset()
            reg.enable()
            ctx = RunContext(journal=_journal(tmp_path / f"j{cycle}"))
            with resilience.activate(ctx):
                _curve(_engine(2))
            snap = reg.snapshot()
            # 3 xs x 3 run-blocks per cell at jobs=2 (oversubscription).
            assert snap.counters.get("resilience.journal_records", 0) == 9
            reg.disable()
            reg.reset()
            shutdown_executors()
        from repro.experiments import common

        assert common._EXECUTORS == {}
        assert resilience._POOLS == {}


# ---------------------------------------------------------------------------
# Graceful shutdown
# ---------------------------------------------------------------------------


class TestGracefulShutdown:
    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_first_signal_raises_graceful_exit(self, signum):
        before = signal.getsignal(signum)
        with pytest.raises(GracefulExit) as ei:
            with GracefulShutdown():
                os.kill(os.getpid(), signum)
                time.sleep(5)  # pragma: no cover - signal interrupts
        assert ei.value.signum == signum
        assert signal.getsignal(signum) is before  # handler restored

    def test_exit_restores_handlers_without_signal(self):
        before = {s: signal.getsignal(s) for s in GracefulShutdown.SIGNALS}
        with GracefulShutdown() as gs:
            assert gs.requested is None
        after = {s: signal.getsignal(s) for s in GracefulShutdown.SIGNALS}
        assert before == after
