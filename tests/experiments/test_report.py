"""Tests for the consolidated claim-grading report."""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentResult, Series
from repro.experiments.report import (
    CHECKERS,
    generate_report,
    run_shape_checks,
)
from repro.experiments.registry import EXPERIMENTS


def test_every_checker_targets_a_registered_experiment():
    assert set(CHECKERS) <= set(EXPERIMENTS)


def test_checks_skip_missing_figures():
    assert run_shape_checks({}) == []


def test_fig01_checker_grades_claims():
    from repro.experiments import fig01_one_plus

    result = fig01_one_plus.run(runs=20, seed=1)
    checks = CHECKERS["fig01"](result)
    assert len(checks) == 5
    assert all(c.figure == "fig01" for c in checks)
    assert all(c.passed for c in checks)


def test_failing_claim_is_reported():
    """A doctored result must FAIL its check, not pass silently."""
    flat = Series(
        label="2tBins", xs=(0.0, 16.0, 128.0), ys=(10.0, 10.0, 10.0)
    )
    doctored = ExperimentResult(
        exp_id="fig01",
        title="doctored",
        parameters={"n": 128, "t": 16, "runs": 1, "seed": 0},
        series=(
            flat,
            Series(label="ExpIncrease", xs=flat.xs, ys=(10.0, 10.0, 10.0)),
            Series(label="CSMA", xs=flat.xs, ys=(10.0, 10.0, 10.0)),
            Series(label="Sequential", xs=flat.xs, ys=(10.0, 10.0, 10.0)),
        ),
    )
    checks = run_shape_checks({"fig01": doctored})
    assert any(not c.passed for c in checks)


def test_generate_report_single_figure():
    text = generate_report(runs=300, seed=2, figures=["fig11"])
    assert "fig11" in text
    assert "PASS" in text
    assert "claims reproduced" in text


def test_cli_report_subcommand(capsys, tmp_path):
    from repro.experiments.cli import main

    out = tmp_path / "report.txt"
    # fig11 alone is too narrow for the CLI (it runs all figures), so this
    # test exercises parser wiring with a tiny run budget via fig10/fig11
    # analytics-heavy figures only when targeted through generate_report;
    # the full CLI path is covered by the artefact run in benchmarks.
    from repro.experiments.report import generate_report as gen

    text = gen(runs=300, seed=2, figures=["fig10", "fig11"])
    out.write_text(text)
    assert out.read_text().count("PASS") >= 2
