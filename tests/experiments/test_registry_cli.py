"""Tests for the experiment registry and CLI."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.registry import get_experiment, list_experiments


class TestRegistry:
    def test_all_paper_figures_registered(self):
        figures = {
            "fig01", "fig02", "fig03", "fig04", "fig05", "fig06",
            "fig07", "fig08", "fig09", "fig10", "fig11",
        }
        extensions = {
            "ext_latency", "ext_interference", "ext_scaling", "ext_faults",
        }
        assert set(list_experiments()) == figures | extensions

    def test_lookup(self):
        runner = get_experiment("fig01")
        assert callable(runner)

    def test_unknown_id_lists_valid_ones(self):
        with pytest.raises(KeyError, match="fig01"):
            get_experiment("fig99")


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "fig11" in out

    def test_run_single_experiment(self, capsys, tmp_path):
        code = main(
            ["run", "fig11", "--runs", "500", "--seed", "3",
             "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert (tmp_path / "fig11.csv").exists()
        assert (tmp_path / "fig11.txt").exists()
        csv = (tmp_path / "fig11.csv").read_text()
        assert csv.splitlines()[0].startswith("x (positive nodes)")

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
