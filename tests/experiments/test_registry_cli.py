"""Tests for the experiment registry and CLI."""

from __future__ import annotations

import shlex

import pytest

from repro.experiments.cli import _resume_command, build_parser, main
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.resilience import ShardJournal


class TestRegistry:
    def test_all_paper_figures_registered(self):
        figures = {
            "fig01", "fig02", "fig03", "fig04", "fig05", "fig06",
            "fig07", "fig08", "fig09", "fig10", "fig11",
        }
        extensions = {
            "ext_latency", "ext_interference", "ext_scaling", "ext_faults",
        }
        assert set(list_experiments()) == figures | extensions

    def test_lookup(self):
        runner = get_experiment("fig01")
        assert callable(runner)

    def test_unknown_id_lists_valid_ones(self):
        with pytest.raises(KeyError, match="fig01"):
            get_experiment("fig99")


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "fig11" in out

    def test_run_single_experiment(self, capsys, tmp_path):
        code = main(
            ["run", "fig11", "--runs", "500", "--seed", "3",
             "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert (tmp_path / "fig11.csv").exists()
        assert (tmp_path / "fig11.txt").exists()
        csv = (tmp_path / "fig11.csv").read_text()
        assert csv.splitlines()[0].startswith("x (positive nodes)")

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestFarmCli:
    def test_farm_backend_requires_journal(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["run", "fig01", "--backend", "farm", "--no-journal"])
        assert ei.value.code == 2
        assert "requires the run journal" in capsys.readouterr().err

    def test_run_farm_backend_end_to_end(self, capsys, tmp_path):
        """A small sweep through real subprocess workers matches the
        serial backend byte-for-byte and cleans up after itself."""
        serial = tmp_path / "serial"
        farm = tmp_path / "farm"
        common = [
            "run", "fig11", "--runs", "40", "--seed", "7", "--no-cache",
            "--journal-dir", str(tmp_path / "journal"),
        ]
        assert main(common + ["--jobs", "1", "--out", str(serial)]) == 0
        code = main(
            common
            + [
                "--jobs", "2", "--backend", "farm",
                "--spool-dir", str(tmp_path / "spool"),
                "--out", str(farm),
            ]
        )
        assert code == 0
        assert (farm / "fig11.csv").read_bytes() == (
            serial / "fig11.csv"
        ).read_bytes()
        # Success leaves neither a spool nor a journal behind.
        spool_root = tmp_path / "spool"
        assert not spool_root.exists() or not any(spool_root.iterdir())
        assert not list((tmp_path / "journal").glob("*.journal"))

    def test_resume_command_is_shell_quoted(self, tmp_path):
        out = tmp_path / "my results"
        spool = tmp_path / "spool dir"
        args = build_parser().parse_args(
            [
                "run", "fig01", "--runs", "5",
                "--out", str(out),
                "--backend", "farm",
                "--spool-dir", str(spool),
            ]
        )
        cmd = _resume_command(args)
        assert f"'{out}'" in cmd  # space-y paths survive quoting
        parts = shlex.split(cmd)
        assert parts[:3] == ["tcast-experiments", "run", "fig01"]
        assert str(out) in parts  # round-trips through a shell verbatim
        assert str(spool) in parts
        idx = parts.index("--backend")
        assert parts[idx + 1] == "farm"
        assert parts[-1] == "--resume"


class TestJournalInfoCli:
    def test_reports_quarantined_and_record_counts(self, capsys, tmp_path):
        journal = ShardJournal(
            tmp_path / "figX-abc.journal",
            exp_id="figX",
            key="k" * 64,
            fsync=False,
        )
        journal.record("a", 1, 0, 2, [1.0, 2.0])
        journal.record("a", 2, 0, 2, [3.0, 4.0])
        journal.record_quarantine("a", 3, 0, 2, "worker died twice")
        journal.close()
        assert main(["journal", "info", "--journal-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "figX-abc.journal" in out
        assert "2 shard record(s)" in out
        assert "4 run(s)" in out
        assert "2 cell(s)" in out
        assert "1 quarantined" in out

    def test_unreadable_journal_is_flagged(self, capsys, tmp_path):
        (tmp_path / "bad.journal").write_text("not a journal header")
        assert main(["journal", "info", "--journal-dir", str(tmp_path)]) == 0
        assert "unreadable header" in capsys.readouterr().out
