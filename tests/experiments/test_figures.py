"""Shape tests for every reproduced figure.

Each figure is regenerated once per test session at a reduced run count
and its *qualitative* claims -- who wins, where the peak sits, where the
crossover falls -- are asserted.  Absolute values are not compared with
the paper (our substrate is a simulator), but these shapes are exactly
what the paper's evaluation argues from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    fig01_one_plus,
    fig02_two_plus,
    fig03_threshold_sweep,
    fig04_testbed,
    fig05_abns,
    fig06_prob_abns,
    fig07_prob_abns_vs_csma,
    fig09_accuracy,
    fig10_repeats,
    fig11_distributions,
)


# ---------------------------------------------------------------------------
# Session-scoped figure results (computed once, asserted many times).
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def fig01():
    return fig01_one_plus.run(runs=60, seed=1)


@pytest.fixture(scope="session")
def fig02():
    return fig02_two_plus.run(runs=60, seed=2)


@pytest.fixture(scope="session")
def fig03():
    return fig03_threshold_sweep.run(runs=60, seed=3)


@pytest.fixture(scope="session")
def fig04():
    return fig04_testbed.run(runs=12, seed=4)


@pytest.fixture(scope="session")
def fig05():
    return fig05_abns.run(runs=60, seed=5)


@pytest.fixture(scope="session")
def fig06():
    return fig06_prob_abns.run(runs=60, seed=6)


@pytest.fixture(scope="session")
def fig07():
    return fig07_prob_abns_vs_csma.run(runs=60, seed=7)


@pytest.fixture(scope="session")
def fig09():
    return fig09_accuracy.run(runs=150, seed=9)


@pytest.fixture(scope="session")
def fig10():
    return fig10_repeats.run(runs=0, seed=10)  # analytic series only


@pytest.fixture(scope="session")
def fig11():
    return fig11_distributions.run(runs=8000, seed=11)


def peak_x(series):
    return series.xs[int(np.argmax(series.ys))]


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------


class TestFig01:
    def test_all_series_present(self, fig01):
        labels = {s.label for s in fig01.series}
        assert labels == {"2tBins", "ExpIncrease", "CSMA", "Sequential"}

    def test_tcast_peaks_near_threshold(self, fig01):
        t = fig01.parameters["t"]
        for label in ("2tBins", "ExpIncrease"):
            peak = peak_x(fig01.get_series(label))
            assert t / 2 <= peak <= 2 * t, f"{label} peaks at {peak}"

    def test_tcast_cheap_at_extremes(self, fig01):
        t = fig01.parameters["t"]
        n = fig01.parameters["n"]
        for label in ("2tBins", "ExpIncrease"):
            s = fig01.get_series(label)
            assert s.y_at(0) < s.y_at(t) / 2
            assert s.y_at(n) < s.y_at(t) / 2

    def test_exp_beats_2tbins_for_sparse(self, fig01):
        two = fig01.get_series("2tBins")
        exp = fig01.get_series("ExpIncrease")
        assert exp.y_at(0) < two.y_at(0) / 3

    def test_exp_loses_to_2tbins_for_dense(self, fig01):
        n = fig01.parameters["n"]
        two = fig01.get_series("2tBins")
        exp = fig01.get_series("ExpIncrease")
        assert exp.y_at(n) > two.y_at(n)

    def test_csma_grows_with_x(self, fig01):
        csma = fig01.get_series("CSMA")
        n = fig01.parameters["n"]
        assert csma.y_at(n) > 3 * csma.y_at(4)

    def test_csma_crossover(self, fig01):
        """CSMA is competitive below t and loses badly above it."""
        t = fig01.parameters["t"]
        n = fig01.parameters["n"]
        two = fig01.get_series("2tBins")
        csma = fig01.get_series("CSMA")
        assert csma.y_at(1) < two.y_at(1)
        assert csma.y_at(n) > 5 * two.y_at(n)

    def test_sequential_left_edge_plateau(self, fig01):
        n, t = fig01.parameters["n"], fig01.parameters["t"]
        seq = fig01.get_series("Sequential")
        assert seq.y_at(0) == pytest.approx(n - t + 1, abs=2)

    def test_sequential_only_acceptable_for_dense(self, fig01):
        n = fig01.parameters["n"]
        seq = fig01.get_series("Sequential")
        assert seq.y_at(n) < seq.y_at(0) / 4


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------


class TestFig02:
    def test_two_plus_never_much_worse(self, fig02):
        """2+ sits at or below 1+ across the sweep (small noise slack)."""
        for base in ("2tBins", "ExpIncrease"):
            one = fig02.get_series(f"{base} 1+")
            two = fig02.get_series(f"{base} 2+")
            for x, y1, y2 in zip(one.xs, one.ys, two.ys):
                assert y2 <= y1 * 1.15 + 2.0, f"{base} at x={x}"

    def test_two_plus_advantage_near_t_minus_one(self, fig02):
        t = fig02.parameters["t"]
        one = fig02.get_series("2tBins 1+")
        two = fig02.get_series("2tBins 2+")
        assert two.y_at(t - 1) < one.y_at(t - 1) * 0.85


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------


class TestFig03:
    def test_peak_near_x(self, fig03):
        x = fig03.parameters["x"]
        for s in fig03.series:
            peak_t = peak_x(s)
            assert x / 2 <= peak_t <= 4 * x, f"{s.label} peaks at t={peak_t}"

    def test_declines_toward_large_t(self, fig03):
        for s in fig03.series:
            assert s.ys[-1] < max(s.ys) / 2

    def test_two_plus_at_or_below_one_plus(self, fig03):
        one = fig03.get_series("2tBins 1+")
        two = fig03.get_series("2tBins 2+")
        for x, y1, y2 in zip(one.xs, one.ys, two.ys):
            assert y2 <= y1 * 1.15 + 2.0, f"t={x}"


# ---------------------------------------------------------------------------
# Figure 4 (packet-level testbed)
# ---------------------------------------------------------------------------


class TestFig04:
    def test_one_series_per_threshold(self, fig04):
        assert {s.label for s in fig04.series} == {"t=2", "t=4", "t=6"}

    def test_query_counts_peak_near_threshold(self, fig04):
        for s in fig04.series:
            t = int(s.label.split("=")[1])
            peak = peak_x(s)
            assert t - 1 <= peak <= 3 * t, f"{s.label} peaks at x={peak}"

    def test_no_false_positives_note(self, fig04):
        fp_note = next(n for n in fig04.notes if "false-positive" in n)
        assert "0" in fp_note.split(":")[1]

    def test_false_negative_rate_small(self, fig04):
        fn_note = next(n for n in fig04.notes if "false-negative" in n)
        # e.g. "false-negative runs: 5/468 (1.1%; paper: ...)"
        counts = fn_note.split(":")[1].strip().split()[0]
        fn, total = (int(v) for v in counts.split("/"))
        assert fn / total < 0.08

    def test_costs_bounded_by_abstract_model_scale(self, fig04):
        """12 participants, t<=6: every mean must stay in the low tens."""
        for s in fig04.series:
            assert max(s.ys) < 40


# ---------------------------------------------------------------------------
# Figures 5 and 6
# ---------------------------------------------------------------------------


class TestFig05:
    def test_oracle_is_the_floor(self, fig05):
        """The oracle's interpolated bin formula is a heuristic lower
        envelope, not a proven optimum, so a modest slack is allowed
        (around x ~ t the 2t-bin choice occasionally edges it out)."""
        oracle = fig05.get_series("Oracle")
        for label in ("2tBins", "ABNS(p0=t)", "ABNS(p0=2t)"):
            s = fig05.get_series(label)
            for x, y, o in zip(s.xs, s.ys, oracle.ys):
                assert y >= o * 0.75 - 3.0, f"{label} below oracle at x={x}"

    def test_2tbins_tracks_oracle_above_half_t(self, fig05):
        t = fig05.parameters["t"]
        two = fig05.get_series("2tBins")
        oracle = fig05.get_series("Oracle")
        for x, y, o in zip(two.xs, two.ys, oracle.ys):
            if x > t / 2:
                assert y <= o * 1.6 + 4.0, f"x={x}"

    def test_abns_t_narrows_left_edge_gap(self, fig05):
        two = fig05.get_series("2tBins")
        abns = fig05.get_series("ABNS(p0=t)")
        assert abns.y_at(0) < two.y_at(0)

    def test_abns_t_pays_above_t(self, fig05):
        """The paper's stated trade-off: p0=t adds overhead for x >> t."""
        t = fig05.parameters["t"]
        two = fig05.get_series("2tBins")
        abns = fig05.get_series("ABNS(p0=t)")
        xs_above = [x for x in two.xs if t < x <= 2 * t]
        assert any(abns.y_at(x) > two.y_at(x) for x in xs_above)


class TestFig06:
    def test_prob_abns_fixes_left_edge(self, fig06):
        prob = fig06.get_series("ProbABNS")
        abns2t = fig06.get_series("ABNS(p0=2t)")
        assert prob.y_at(0) < abns2t.y_at(0)

    def test_prob_abns_fixes_mid_band(self, fig06):
        """ProbABNS avoids ABNS(p0=t)'s t<x<2t overhead."""
        t = fig06.parameters["t"]
        prob = fig06.get_series("ProbABNS")
        abns_t = fig06.get_series("ABNS(p0=t)")
        mid = [x for x in prob.xs if t < x <= 2 * t]
        prob_mid = np.mean([prob.y_at(x) for x in mid])
        abns_mid = np.mean([abns_t.y_at(x) for x in mid])
        assert prob_mid <= abns_mid * 1.05

    def test_prob_abns_tracks_oracle(self, fig06):
        prob = fig06.get_series("ProbABNS")
        oracle = fig06.get_series("Oracle")
        ratio = np.mean(np.array(prob.ys) / np.maximum(np.array(oracle.ys), 1))
        assert ratio < 1.8


# ---------------------------------------------------------------------------
# Figure 7
# ---------------------------------------------------------------------------


class TestFig07:
    def test_parameters_match_paper(self, fig07):
        assert fig07.parameters["n"] == 32
        assert fig07.parameters["t"] == 8

    def test_comparable_below_t(self, fig07):
        t = fig07.parameters["t"]
        prob = fig07.get_series("ProbABNS")
        csma = fig07.get_series("CSMA")
        for x in range(0, t):
            assert prob.y_at(x) <= csma.y_at(x) * 3 + 10

    def test_prob_abns_wins_big_above_t(self, fig07):
        n = fig07.parameters["n"]
        prob = fig07.get_series("ProbABNS")
        csma = fig07.get_series("CSMA")
        assert prob.y_at(n) < csma.y_at(n) / 2


# ---------------------------------------------------------------------------
# Figures 9-11
# ---------------------------------------------------------------------------


class TestFig09:
    def test_accuracy_in_unit_range(self, fig09):
        for s in fig09.series:
            assert all(0.0 <= y <= 1.0 for y in s.ys)

    def test_more_repeats_more_accuracy_when_separated(self, fig09):
        r1 = fig09.get_series("r=1")
        r19 = fig09.get_series("r=19")
        for d in (32.0, 48.0, 64.0):
            assert r19.y_at(d) >= r1.y_at(d) - 0.03

    def test_nine_repeats_exceed_90pct_past_d32(self, fig09):
        r9 = fig09.get_series("r=9")
        for d, y in zip(r9.xs, r9.ys):
            if d > 32:
                assert y > 0.9, f"d={d}: {y}"

    def test_overlapping_modes_hard(self, fig09):
        """d ~ 8 is hard for every repeat budget (paper: ~70%)."""
        for s in fig09.series:
            assert s.y_at(8.0) < 0.9

    def test_accuracy_improves_with_separation(self, fig09):
        r9 = fig09.get_series("r=9")
        assert r9.y_at(64.0) > r9.y_at(8.0)


class TestFig10:
    def test_repeats_decrease_with_separation(self, fig10):
        s = fig10.get_series("Eq10 (delta=0.05)")
        finite = [y for y in s.ys if np.isfinite(y)]
        assert all(a >= b for a, b in zip(finite, finite[1:]))

    def test_blows_up_near_boundary(self, fig10):
        s = fig10.get_series("Eq10 (delta=0.05)")
        assert s.ys[0] > 3 * s.ys[-1]


class TestFig11:
    def test_densities_normalised(self, fig11):
        for s in fig11.series:
            assert sum(s.ys) == pytest.approx(1.0, abs=1e-6)

    def test_d16_is_bimodal(self, fig11):
        s = fig11.get_series("d=16")
        ys = np.array(s.ys)
        n = fig11.parameters["n"]
        centre = ys[n // 2 - 2 : n // 2 + 3].mean()
        left_peak = ys[n // 2 - 16 - 4 : n // 2 - 16 + 5].max()
        right_peak = ys[n // 2 + 16 - 4 : n // 2 + 16 + 5].max()
        assert left_peak > 2 * centre and right_peak > 2 * centre

    def test_d8_is_unimodal_blur(self, fig11):
        s = fig11.get_series("d=8")
        ys = np.array(s.ys)
        n = fig11.parameters["n"]
        centre = ys[n // 2 - 4 : n // 2 + 5].mean()
        left_peak = ys[n // 2 - 8 - 3 : n // 2 - 8 + 4].max()
        assert left_peak < 2 * centre


class TestFig04Variants:
    """The fig04 runner generalises over the RCD primitive."""

    def test_pollcast_variant_has_no_misses(self):
        result = fig04_testbed.run(
            runs=6, seed=44, thresholds=(2,), primitive="pollcast"
        )
        fn_note = next(n for n in result.notes if "false-negative" in n)
        counts = fn_note.split(":")[1].strip().split()[0]
        fn, _total = (int(v) for v in counts.split("/"))
        # The HACK-miss model only affects backcast; pollcast's CCA-based
        # votes are untouched by it.
        assert fn == 0
        assert result.parameters["primitive"] == "pollcast"


class TestFig10Analytics:
    """Direct unit coverage of fig10's analytic helper."""

    def test_inapplicable_below_two_sigma(self):
        from repro.experiments.fig10_repeats import analytic_repeats

        assert analytic_repeats(128, 10.0, 8.0, 0.05) is None
        assert analytic_repeats(128, 16.0, 8.0, 0.05) is None  # boundary

    def test_applicable_above_two_sigma(self):
        from repro.experiments.fig10_repeats import analytic_repeats

        r = analytic_repeats(128, 32.0, 8.0, 0.05)
        assert r is not None and r >= 1

    def test_tighter_delta_needs_more(self):
        from repro.experiments.fig10_repeats import analytic_repeats

        assert analytic_repeats(128, 32.0, 8.0, 0.01) >= analytic_repeats(
            128, 32.0, 8.0, 0.10
        )


class TestFig08:
    """The gap schematic, computed (exact analytics)."""

    def test_gap_grows_with_separation(self):
        from repro.experiments import fig08_gap

        result = fig08_gap.run()
        eps = result.get_series("eps = (q2-q1)/2").ys
        assert all(a <= b for a, b in zip(eps, eps[1:]))

    def test_mode_probabilities_diverge(self):
        from repro.experiments import fig08_gap

        result = fig08_gap.run()
        q1 = result.get_series("q1 (quiet mode)").ys
        q2 = result.get_series("q2 (activity mode)").ys
        assert all(a < b for a, b in zip(q1, q2))
        # q1 falls and q2 rises as the modes separate (the schematic's
        # "m1 moves leftwards ... m2 moves rightwards").
        assert q1[-1] < q1[0]
        assert q2[-1] > q2[0]

    def test_registered(self):
        from repro.experiments.registry import get_experiment

        assert get_experiment("fig08") is not None
