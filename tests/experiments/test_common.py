"""Tests for the sweep engine and result containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TwoTBins
from repro.experiments.common import ExperimentResult, Series, SweepEngine
from repro.group_testing.model import OnePlusModel
from repro.mac import SequentialOrdering


def one_plus(pop, rng):
    return OnePlusModel(pop, rng)


def two_t_bins(x):
    return TwoTBins()


class TestSeries:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            Series(label="s", xs=(1.0, 2.0), ys=(1.0,))
        with pytest.raises(ValueError):
            Series(label="s", xs=(1.0,), ys=(1.0,), stderr=(0.1, 0.2))

    def test_y_at(self):
        s = Series(label="s", xs=(1.0, 2.0), ys=(10.0, 20.0))
        assert s.y_at(2.0) == 20.0
        with pytest.raises(KeyError):
            s.y_at(3.0)


class TestSweepEngine:
    def test_validation(self):
        with pytest.raises(ValueError):
            SweepEngine(10, 2, runs=0, seed=0)

    def test_query_curve_deterministic(self):
        def curve():
            engine = SweepEngine(32, 4, runs=10, seed=42)
            return engine.query_curve(
                "2tBins", [0, 4, 16], two_t_bins, one_plus
            )

        assert curve().ys == curve().ys

    def test_seed_changes_results(self):
        def curve(seed):
            engine = SweepEngine(32, 4, runs=10, seed=seed)
            return engine.query_curve(
                "2tBins", [4], two_t_bins, one_plus
            )

        assert curve(1).ys != curve(2).ys

    def test_exactness_check_catches_wrong_algorithms(self):
        class Liar:
            exact = True

            def decide(self, model, t, rng):
                from repro.core.result import ThresholdResult

                model.query([0])
                return ThresholdResult(
                    decision=True, queries=1, rounds=1, threshold=t
                )

        engine = SweepEngine(16, 8, runs=2, seed=0)
        with pytest.raises(AssertionError, match="wrong answer"):
            engine.query_curve(
                "liar",
                [0],
                lambda x: Liar(),  # tcast-lint: disable=TCL003 -- serial engine; Liar is test-local by design
                one_plus,
            )

    def test_stderr_computed(self):
        engine = SweepEngine(32, 4, runs=20, seed=0)
        s = engine.query_curve("2tBins", [4], two_t_bins, one_plus)
        assert len(s.stderr) == 1
        assert s.stderr[0] >= 0

    def test_baseline_curve(self):
        engine = SweepEngine(32, 4, runs=10, seed=0)
        s = engine.baseline_curve("Seq", [0, 32], SequentialOrdering)
        assert s.y_at(0) == 32 - 4 + 1
        assert s.y_at(32) == 4


class TestModuleLevelWrappers:
    def test_mean_query_curve_wrapper(self):
        from repro.experiments.common import mean_query_curve

        s = mean_query_curve(
            "2tBins",
            [0, 8],
            two_t_bins,
            one_plus,
            n=32,
            threshold=4,
            runs=5,
            seed=1,
        )
        assert s.label == "2tBins"
        assert len(s.ys) == 2

    def test_baseline_curve_wrapper(self):
        from repro.experiments.common import baseline_curve

        s = baseline_curve(
            "Seq",
            [0],
            SequentialOrdering,
            n=32,
            threshold=4,
            runs=5,
            seed=1,
        )
        assert s.y_at(0) == 32 - 4 + 1

    def test_threshold_override_in_query_curve(self):
        engine = SweepEngine(32, 4, runs=5, seed=0)
        low = engine.query_curve(
            "a", [16], two_t_bins, one_plus, threshold=2
        )
        high = engine.query_curve(
            "b", [16], two_t_bins, one_plus, threshold=12
        )
        # x=16 >= both thresholds; higher t needs more evidence.
        assert high.ys[0] > low.ys[0]


class TestExperimentResult:
    def _result(self):
        s1 = Series(label="a", xs=(0.0, 1.0), ys=(1.0, 2.0))
        s2 = Series(label="b", xs=(0.0, 1.0), ys=(3.0, 4.0))
        return ExperimentResult(
            exp_id="figXX",
            title="demo",
            parameters={"n": 4},
            series=(s1, s2),
            notes=("hello",),
        )

    def test_get_series(self):
        r = self._result()
        assert r.get_series("b").ys == (3.0, 4.0)
        with pytest.raises(KeyError):
            r.get_series("c")

    def test_chart_and_table_render(self):
        r = self._result()
        assert "figXX" in r.chart()
        assert "a" in r.table() and "b" in r.table()

    def test_csv(self):
        csv = self._result().to_csv()
        lines = csv.splitlines()
        assert lines[0].endswith("a,b")
        assert lines[1] == "0,1,3"

    def test_report_includes_notes_and_params(self):
        rep = self._result().report()
        assert "note: hello" in rep
        assert "n=4" in rep
