"""Metrics must observe without perturbing: identical bytes, exact merges.

The observability layer's whole contract is that turning it on changes
*measurements*, never *results*.  These tests pin that contract on real
figure runs (serial and process-pool parallel), check that worker
snapshots merge into exactly the serial totals, reconcile the
model-layer query counters against the figure's own mean-cost curves,
and exercise the ``--metrics out.json`` CLI surface.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.experiments import cli, fig01_one_plus
from repro.experiments.common import shutdown_executors
from repro.obs import get_registry

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

RUNS = 6


@pytest.fixture(scope="module", autouse=True)
def _fake_multicore():
    """Pretend the host has >= 4 CPUs so jobs=2 survives the clamp."""
    real = os.cpu_count
    mp = pytest.MonkeyPatch()
    mp.setattr(os, "cpu_count", lambda: max(4, real() or 1))
    yield
    mp.undo()


@pytest.fixture(scope="module", autouse=True)
def _reap_executors():
    yield
    shutdown_executors()


@pytest.fixture(autouse=True)
def _pristine_registry():
    """Every test starts and ends with a disabled, zeroed registry."""
    registry = get_registry()
    registry.disable()
    registry.reset()
    yield registry
    registry.disable()
    registry.reset()


def _fig01(jobs):
    return fig01_one_plus.run(runs=RUNS, jobs=jobs)


class TestBitExactness:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_enabling_metrics_never_changes_the_csv(self, jobs):
        registry = get_registry()
        baseline = _fig01(jobs)
        registry.enable()
        instrumented = _fig01(jobs)
        assert registry.snapshot().counter("model.queries") > 0
        assert instrumented.series == baseline.series
        assert instrumented.to_csv() == baseline.to_csv()


class TestCrossProcessMerge:
    def test_parallel_snapshot_equals_serial_snapshot(self):
        registry = get_registry()
        registry.enable()

        _fig01(1)
        serial = registry.snapshot()
        registry.reset()
        _fig01(2)
        parallel = registry.snapshot()

        # Model- and fault-layer totals are workload properties: sharding
        # the trials over worker processes must not change a single count.
        for name in (
            "model.queries",
            "model.verdict.silent",
            "model.verdict.activity",
            "sweep.runs",
        ):
            assert parallel.counter(name) == serial.counter(name), name
        assert (
            parallel.histograms["model.bin_size"].counts
            == serial.histograms["model.bin_size"].counts
        )
        # The parallel run really took the pool path.
        assert parallel.counter("sweep.parallel_batches") > 0
        assert serial.counter("sweep.parallel_batches") == 0


class TestReconciliation:
    def test_query_counter_matches_fig01_mean_cost_curves(self):
        registry = get_registry()
        registry.enable()
        result = _fig01(1)
        snapshot = registry.snapshot()

        # The two model-backed curves (the baselines never construct a
        # QueryModel) plot mean queries per trial; mean * runs summed
        # over the grid must equal the layer's own query counter.
        expected = 0.0
        for label in ("2tBins", "ExpIncrease"):
            expected += sum(y * RUNS for y in result.get_series(label).ys)
        assert snapshot.counter("model.queries") == pytest.approx(expected)


class TestCliMetricsFlag:
    def test_run_writes_snapshot_json_and_identical_csv(self, tmp_path):
        plain = tmp_path / "plain"
        metered = tmp_path / "metered"
        metrics_path = tmp_path / "m.json"
        common = ["--runs", str(RUNS), "--no-cache", "--jobs", "2"]

        assert cli.main(
            ["run", "fig01", *common, "--out", str(plain)]
        ) == 0
        assert cli.main(
            [
                "run",
                "fig01",
                *common,
                "--out",
                str(metered),
                "--metrics",
                str(metrics_path),
            ]
        ) == 0

        payload = json.loads(metrics_path.read_text())
        assert payload["counters"]["model.queries"] > 0
        assert payload["counters"]["sweep.parallel_batches"] >= 1
        assert "model.bin_size" in payload["histograms"]
        assert (metered / "fig01.csv").read_text() == (
            plain / "fig01.csv"
        ).read_text()

    def test_flag_leaves_registry_disarmed(self, tmp_path):
        metrics_path = tmp_path / "m.json"
        assert cli.main(
            [
                "run",
                "fig01",
                "--runs",
                "2",
                "--no-cache",
                "--metrics",
                str(metrics_path),
            ]
        ) == 0
        registry = get_registry()
        assert not registry.enabled
        assert registry.snapshot().counter("model.queries") == 0
        assert metrics_path.exists()
