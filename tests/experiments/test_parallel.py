"""Parallel sweeps must be bit-identical to serial execution.

The sweep engine derives every trial's randomness statelessly from
``(seed, label, x, run)``, so sharding the runs across worker processes
cannot change any number.  These tests pin that contract on the raw
engine and on whole figure runners (fig01's multi-x curves, fig03's
single-x-per-engine shape) at reduced trial counts.
"""

from __future__ import annotations

import logging
import os
import pickle
import warnings

import pytest

from repro.api import algorithm_factory
from repro.experiments import fig01_one_plus, fig03_threshold_sweep
from repro.experiments.common import (
    SweepEngine,
    resolve_jobs,
    shutdown_executors,
)
from repro.group_testing.model import ModelSpec
from repro.mac import CsmaBaseline

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module", autouse=True)
def _fake_multicore():
    """Pretend the host has >= 4 CPUs.

    ``resolve_jobs`` clamps explicit ``jobs`` to the CPU count; on a
    single-core runner that would silently downgrade every parallel test
    here to the serial path.  Faking the count keeps the process-pool
    code genuinely exercised everywhere (the pool itself runs fine on
    one core -- it is merely slower).
    """
    real = os.cpu_count
    mp = pytest.MonkeyPatch()
    mp.setattr(os, "cpu_count", lambda: max(4, real() or 1))
    yield
    mp.undo()


@pytest.fixture(scope="module", autouse=True)
def _reap_executors():
    yield
    shutdown_executors()


def _engine(jobs):
    return SweepEngine(64, 8, runs=12, seed=77, jobs=jobs)


class TestEngineIdentity:
    def test_query_curve_matches_serial(self):
        factory = algorithm_factory("2tbins")
        spec = ModelSpec(kind="1+", max_queries=64 * 50)
        xs = [0, 4, 8, 16]
        serial = _engine(1).query_curve("2tBins", xs, factory, spec)
        parallel = _engine(2).query_curve("2tBins", xs, factory, spec)
        assert serial == parallel

    def test_baseline_curve_matches_serial(self):
        xs = [0, 4, 8, 16]
        serial = _engine(1).baseline_curve("CSMA", xs, CsmaBaseline)
        parallel = _engine(2).baseline_curve("CSMA", xs, CsmaBaseline)
        assert serial == parallel

    def test_single_x_curve_still_shards(self):
        """fig03-style curves (one x, many runs) must also parallelize."""
        factory = algorithm_factory("2tbins")
        spec = ModelSpec(kind="1+", max_queries=64 * 50)
        serial = _engine(1).query_curve("one-x", [8], factory, spec)
        parallel = _engine(4).query_curve("one-x", [8], factory, spec)
        assert serial == parallel

    def test_unpicklable_factory_falls_back_to_serial(self):
        spec = ModelSpec(kind="1+", max_queries=64 * 50)
        local = algorithm_factory("2tbins")
        closure = lambda x: local(x)  # noqa: E731 - deliberately unpicklable
        with pytest.raises(Exception):
            pickle.dumps(closure)
        with pytest.warns(RuntimeWarning, match="serial"):
            curve = _engine(2).query_curve("closure", [0, 8], closure, spec)  # tcast-lint: disable=TCL003 -- the fallback under test
        assert curve == _engine(1).query_curve("closure", [0, 8], closure, spec)  # tcast-lint: disable=TCL003 -- the fallback under test


class TestFigureIdentity:
    def test_fig01_parallel_identical(self):
        serial = fig01_one_plus.run(runs=10, jobs=1)
        parallel = fig01_one_plus.run(runs=10, jobs=2)
        assert serial.series == parallel.series
        assert serial.to_csv() == parallel.to_csv()

    def test_fig03_parallel_identical(self):
        serial = fig03_threshold_sweep.run(runs=10, jobs=1)
        parallel = fig03_threshold_sweep.run(runs=10, jobs=2)
        assert serial.series == parallel.series
        assert serial.to_csv() == parallel.to_csv()


class TestResolveJobs:
    def test_default_is_cpu_count(self):
        expected = os.cpu_count() or 1
        assert resolve_jobs(None) == expected
        assert resolve_jobs(0) == expected

    def test_explicit_passthrough(self):
        # The module fixture fakes >= 4 CPUs, so 3 is within budget.
        assert resolve_jobs(3) == 3

    def test_clamped_to_cpu_count(self, caplog):
        cpus = os.cpu_count() or 1
        with caplog.at_level(logging.WARNING, logger="repro.experiments.common"):
            assert resolve_jobs(cpus + 61) == cpus
        assert any("clamping" in r.message for r in caplog.records)

    def test_clamp_applies_to_engine(self):
        cpus = os.cpu_count() or 1
        engine = SweepEngine(16, 2, runs=2, seed=0, jobs=cpus + 7)
        assert engine.jobs == cpus

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)
