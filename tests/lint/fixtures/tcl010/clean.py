"""Fixture: worker code keeps state local and returns it."""

_LIMITS = {"cells": 64}


def _run_sweep_cell(task):
    seen = {}
    seen[task.cell] = task.seed
    log = []
    log.append(task.cell)
    return _helper(task, seen)


def _helper(task, seen):
    seen.update({task.cell: task.seed})
    return task.seed


def submit_side_only():
    _LIMITS["cells"] = 128
    return _LIMITS["cells"]
