"""Fixture: justified worker-side registry sync suppressed by pragma."""

from repro.obs import get_registry


def _run_sweep_cell(task):
    metrics = get_registry()
    metrics.set_enabled(task.collect_metrics)  # tcast-lint: disable=TCL010 -- fixture: worker-side registry sync
    return task.seed
