"""Fixture: TCL010 violations (fork-unsafe module state)."""

_CACHE = {}
_TOTAL = 0
_LOG = []


def _run_sweep_cell(task):
    global _TOTAL
    _TOTAL += 1
    _CACHE[task.cell] = task.seed
    _LOG.append(task.cell)
    return _helper(task)


def _helper(task):
    _CACHE.update({task.cell: task.seed})
    return task.seed
