"""Fixture: TCL008 violations (rng stream aliasing)."""

import numpy as np


def aliased(seed):
    rng = np.random.default_rng(seed)
    alias = rng
    return rng.random() + alias.random()


def double_pass(seed, run):
    rng = np.random.default_rng(seed)
    return run(rng, rng)


def shipped(spool, seed):
    rng = np.random.default_rng(seed)

    def draw():
        return rng.random()

    spool.write_shard("cell", draw)
