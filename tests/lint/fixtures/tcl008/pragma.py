"""Fixture: justified stream alias suppressed by pragma."""

import numpy as np


def aliased(seed):
    rng = np.random.default_rng(seed)
    alias = rng  # tcast-lint: disable=TCL008 -- fixture: deliberate alias for the suppression test
    return rng.random() + alias.random()
