"""Fixture: spawn-derived streams, exactly one consumer each."""

import numpy as np


def split(seed):
    first, second = np.random.default_rng(seed).spawn(2)
    return first.random() + second.random()


def handoff(run, seed):
    rng = np.random.default_rng(seed)
    return run(rng)


def rebound(run, seed):
    rng = np.random.default_rng(seed)
    rng = np.random.default_rng(seed + 1)
    return run(rng)
