"""TCL004 fixture: exact comparison justified (sentinel) and suppressed."""


def is_sentinel(value):
    return value == -1.0  # tcast-lint: disable=TCL004 -- exact sentinel, not arithmetic
