"""TCL004 fixture: exact float comparisons in analytic scope."""

import math


def checks(p, b, prob):
    exact_literal = prob == 0.25
    division = (p / b) != 1.0
    math_call = math.exp(p) == math.e
    return exact_literal, division, math_call
