"""TCL004 fixture: tolerances and int comparisons are fine."""

import math


def checks(p, b, count):
    close = math.isclose(p / b, 1.0)
    int_compare = count == 0
    ordering = p / b < 0.5
    return close, int_compare, ordering
