"""Fixture: justified lease re-mint suppressed by pragma."""


def requeue(spool, shard_id):
    path = spool.lease_path(shard_id)
    path.touch()  # tcast-lint: disable=TCL012 -- fixture: recovery tool re-minting a vanished lease
