"""Fixture: TCL012 violations (lease protocol breaches)."""

from repro.experiments.atomicio import atomic_write_text
from repro.farm.lease import grant_lease


def steal(spool, shard_id, worker_id):
    grant_lease(spool, shard_id, worker_id)


def forge(spool, shard_id):
    path = spool.lease_path(shard_id)
    path.touch()


def rewrite(spool, name, payload):
    path = spool.leases_dir / name
    atomic_write_text(path, payload)
