"""Fixture: workers heartbeat and release leases, never mint them."""

from repro.farm import lease as leasemod


def heartbeat(spool, shard_id):
    path = spool.lease_path(shard_id)
    leasemod.touch(path)


def release(spool, shard_id):
    path = spool.lease_path(shard_id)
    path.unlink(missing_ok=True)
