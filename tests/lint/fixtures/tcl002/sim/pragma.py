"""TCL002 fixture: wall-clock read silenced file-wide with a pragma."""

# tcast-lint: disable-file=TCL002 -- operator-facing timing fixture

import time


def stamp():
    return time.time()
