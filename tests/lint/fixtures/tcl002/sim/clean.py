"""TCL002 fixture: simulated time only."""


def stamp(sim):
    started = sim.now
    return started
