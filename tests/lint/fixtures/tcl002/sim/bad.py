"""TCL002 fixture: wall-clock reads inside simulation scope."""

import time
from datetime import datetime
from time import perf_counter


def stamp():
    started = time.time()
    tick = perf_counter()
    now = datetime.now()
    return started, tick, now
