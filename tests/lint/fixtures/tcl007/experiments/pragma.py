"""TCL007 fixture: a justified best-effort swallow, pragma-suppressed."""


def close_quietly(handle):
    try:
        handle.close()
    except Exception:  # tcast-lint: disable=TCL007 -- double-close during interpreter teardown is harmless by design
        pass
