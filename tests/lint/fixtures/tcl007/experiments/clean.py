"""TCL007 fixture: broad handlers that act on the failure are fine."""


def load_entry(path, quarantine, counter):
    try:
        return path.read_text()
    except Exception:
        counter.inc()
        quarantine(path)
        return None


def narrow_is_fine(mapping, key):
    try:
        return mapping[key]
    except KeyError:
        return None


def reraise_is_fine(run):
    try:
        run()
    except Exception:
        raise RuntimeError("shard failed") from None
