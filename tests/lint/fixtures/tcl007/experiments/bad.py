"""TCL007 fixture: execution-layer code swallowing failures."""


def load_entry(path):
    try:
        return path.read_text()
    except Exception:
        pass


def drain(futures):
    results = []
    for fut in futures:
        try:
            results.append(fut.result())
        except (OSError, Exception):
            continue
    return results


def best_effort(cleanup):
    try:
        cleanup()
    except:  # noqa: E722
        ...
