"""Fixture: justified in-place write suppressed by pragma."""


def scratch(tmp_path, payload):
    tmp_path.write_text(payload)  # tcast-lint: disable=TCL011 -- fixture: scratch file outside the durable spool
