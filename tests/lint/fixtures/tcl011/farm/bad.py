"""Fixture: TCL011 violations (non-atomic durable writes)."""

import os


def publish(result_path, payload):
    with open(result_path, "w") as fh:
        fh.write(payload)


def stamp(manifest_path, text):
    manifest_path.write_text(text)


def promote(tmp_path, final_path):
    os.rename(tmp_path, final_path)
