"""Fixture: durable writes via atomicio; reads and appends untouched."""

import os

from repro.experiments.atomicio import atomic_write_text


def publish(result_path, payload):
    atomic_write_text(result_path, payload)


def read_back(result_path):
    with open(result_path) as fh:
        return fh.read()


def append_log(log_path, line):
    with open(log_path, "ab") as fh:
        fh.write(line)


def promote(tmp_path, final_path):
    os.replace(tmp_path, final_path)
