"""TCL001 fixture: violations silenced by justified pragmas."""

import numpy as np


def entropy_probe():
    rng = np.random.default_rng()  # tcast-lint: disable=TCL001 -- OS-entropy probe fixture
    return float(rng.random())
