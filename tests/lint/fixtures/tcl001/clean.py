"""TCL001 fixture: registry-stream and passed-in-generator randomness only."""

import numpy as np

from repro.sim.rng import RngRegistry, derive_seed


def draw(rng: np.random.Generator) -> float:
    return float(rng.random())


def draw_from_registry(seed: int) -> float:
    registry = RngRegistry(seed)
    seeded = np.random.default_rng(derive_seed(seed, "fixture"))
    return float(registry.stream("workload").random() + seeded.random())
