"""TCL001 fixture: registry-stream and passed-in-generator randomness only."""

import numpy as np

from repro.sim.rng import RngRegistry, derive_seed


def draw(rng: np.random.Generator) -> float:
    return float(rng.random())


def draw_from_registry(seed: int) -> float:
    registry = RngRegistry(seed)
    seeded = np.random.default_rng(derive_seed(seed, "fixture"))
    return float(registry.stream("workload").random() + seeded.random())


def draw_spawned(seed: int) -> float:
    children = np.random.default_rng(seed).spawn(2)
    seq = np.random.SeedSequence(seed)
    streams = [np.random.Generator(np.random.PCG64(s)) for s in seq.spawn(2)]
    total = sum(c.random() for c in children)
    return float(total + streams[0].random() + streams[1].random())
