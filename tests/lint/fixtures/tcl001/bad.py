"""TCL001 fixture: every banned randomness source in one file."""

import random
from random import randint

import numpy as np


def draw():
    np.random.seed(7)
    legacy = np.random.rand(4)
    pick = np.random.choice([1, 2, 3])
    unseeded = np.random.default_rng()
    entropy_seq = np.random.SeedSequence()
    entropy_bits = np.random.PCG64()
    extra = np.random.Generator(entropy_bits).random()
    return (
        random.random()
        + randint(0, 9)
        + legacy.sum()
        + pick
        + unseeded.random()
        + np.random.default_rng(entropy_seq).random()
        + extra
    )
