"""Fixture: TCL009 violations (unordered iteration)."""

import os


def list_shards(spool_dir):
    names = []
    for path in spool_dir.glob("*.task"):
        names.append(path.name)
    return names


def listdir_rows(root):
    entries = os.listdir(root)
    return [name for name in entries]


def worker_list(workers):
    active = {worker for worker in workers}
    return list(active)
