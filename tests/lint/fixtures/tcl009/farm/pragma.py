"""Fixture: justified unordered iteration suppressed by pragma."""


def any_shard(spool_dir):
    for path in spool_dir.glob("*.task"):  # tcast-lint: disable=TCL009 -- fixture: existence probe, order-free
        return path
    return None
