"""Fixture: sorted scans, wildcard counting, ordered sets."""

import os


def list_shards(spool_dir):
    names = []
    for path in sorted(spool_dir.glob("*.task")):
        names.append(path.name)
    return names


def count_shards(spool_dir):
    return sum(1 for _ in spool_dir.glob("*.task"))


def listdir_rows(root):
    return [name for name in sorted(os.listdir(root))]


def worker_list(workers):
    active = {worker for worker in workers}
    return sorted(active)
