"""TCL005 fixture: read-only shared default, suppressed with a pragma."""


def lookup(key, table={"a": 1}):  # tcast-lint: disable=TCL005 -- table is never mutated
    return table.get(key)
