"""TCL005 fixture: None-and-materialise, immutable defaults."""


def list_default(history=None):
    if history is None:
        history = []
    return history


def tuple_default(points=(1, 2)):
    return points
