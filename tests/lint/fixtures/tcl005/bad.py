"""TCL005 fixture: mutable defaults of every flavour."""


def list_default(history=[]):
    return history


def dict_default(*, table={}):
    return table


def call_default(pool=set()):
    return pool
