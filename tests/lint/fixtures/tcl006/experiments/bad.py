"""TCL006 fixture: experiment runners hiding their randomness."""

import numpy as np

from repro.sim.rng import RngRegistry


def run(runs=10):
    rng = np.random.default_rng(2011)
    return [float(rng.random()) for _ in range(runs)]


def run_registry(runs=10):
    registry = RngRegistry(7)
    return [float(registry.stream("x").random()) for _ in range(runs)]


def run_spawn_tree(runs=10):
    seq = np.random.SeedSequence(2011)
    bits = (np.random.PCG64(s) for s in seq.spawn(runs))
    return [float(np.random.Generator(b).random()) for b in bits]


def run_children(parent, runs=10):
    return [float(child.random()) for child in parent.spawn(runs)]
