"""TCL006 fixture: experiment runners hiding their randomness."""

import numpy as np

from repro.sim.rng import RngRegistry


def run(runs=10):
    rng = np.random.default_rng(2011)
    return [float(rng.random()) for _ in range(runs)]


def run_registry(runs=10):
    registry = RngRegistry(7)
    return [float(registry.stream("x").random()) for _ in range(runs)]
