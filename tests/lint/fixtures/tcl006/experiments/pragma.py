"""TCL006 fixture: fixed-seed demo runner, suppressed with a pragma."""

import numpy as np


def demo(runs=10):  # tcast-lint: disable=TCL006 -- demo with a pinned seed by design
    rng = np.random.default_rng(0)
    return [float(rng.random()) for _ in range(runs)]
