"""TCL006 fixture: seed plumbed through every public runner."""

import numpy as np

from repro.sim.rng import RngRegistry


def run(runs=10, *, seed=2011):
    rng = np.random.default_rng(seed)
    return [float(rng.random()) for _ in range(runs)]


def run_with_rng(runs, rng):
    return [float(rng.random()) for _ in range(runs)]


def run_spawn_tree(runs=10, *, seed=2011):
    seq = np.random.SeedSequence(seed)
    return [float(np.random.default_rng(s).random()) for s in seq.spawn(runs)]


def run_children(runs, rng):
    return [float(child.random()) for child in rng.spawn(runs)]


def _private_helper(runs=10):
    registry = RngRegistry(7)
    return [float(registry.stream("x").random()) for _ in range(runs)]


def no_randomness(values):
    return sum(values)
