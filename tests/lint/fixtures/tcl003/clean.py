"""TCL003 fixture: module-level picklable factories only."""


def module_factory(x):
    return object()


class ModuleModel:
    pass


def sweep(engine, xs):
    a = engine.query_curve("def", xs, module_factory, ModuleModel)
    picker = min([1, 2], key=lambda v: v)  # lambda outside any boundary call
    return a, picker
