"""TCL003 fixture: deliberate closure silenced with a pragma."""


def sweep(engine, xs, model_factory):
    return engine.query_curve(
        "inline",
        xs,
        lambda x: object(),  # tcast-lint: disable=TCL003 -- serial-only engine in this fixture
        model_factory,
    )
