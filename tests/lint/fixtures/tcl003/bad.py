"""TCL003 fixture: unpicklable factories at pool/spec boundaries."""


def sweep(engine, xs, model_factory):
    local_algo = lambda x: object()

    def nested_factory(x):
        return object()

    class LocalModel:
        pass

    a = engine.query_curve("inline", xs, lambda x: object(), model_factory)
    b = engine.query_curve("bound", xs, local_algo, model_factory)
    c = engine.query_curve("nested", xs, nested_factory, model_factory)
    d = engine.query_curve("cls", xs, LocalModel, model_factory)
    return a, b, c, d
