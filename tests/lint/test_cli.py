"""CLI tests: exit codes, formats, JSON artifact, rule selection."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "tcl005" / "bad.py")
CLEAN = str(FIXTURES / "tcl005" / "clean.py")


def test_clean_path_exits_zero(capsys):
    assert main([CLEAN]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_one(capsys):
    assert main([BAD]) == 1
    out = capsys.readouterr().out
    assert "TCL005" in out
    assert "3 findings" in out


def test_json_format(capsys):
    assert main([BAD, "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["total"] == 3
    assert doc["counts"] == {"TCL005": 3}


def test_json_output_file(tmp_path, capsys):
    report = tmp_path / "report.json"
    assert main([BAD, "--output", str(report)]) == 1
    capsys.readouterr()
    doc = json.loads(report.read_text())
    assert doc["total"] == 3


def test_select_limits_rules(capsys):
    assert main([BAD, "--select", "TCL001"]) == 0
    assert main([BAD, "--select", "tcl005"]) == 1
    capsys.readouterr()


def test_unknown_rule_is_usage_error(capsys):
    assert main([BAD, "--select", "TCL999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert main([str(FIXTURES / "nope.py")]) == 2
    assert "tcast-lint" in capsys.readouterr().err


def test_no_pragmas_audit_mode(capsys):
    pragma = str(FIXTURES / "tcl005" / "pragma.py")
    assert main([pragma]) == 0
    assert main([pragma, "--no-pragmas"]) == 1
    capsys.readouterr()


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "TCL001",
        "TCL002",
        "TCL003",
        "TCL004",
        "TCL005",
        "TCL006",
        "TCL007",
        "TCL008",
        "TCL009",
        "TCL010",
        "TCL011",
        "TCL012",
    ):
        assert rule_id in out


def test_explain_prints_rule_and_examples(capsys):
    assert main(["--explain", "TCL008"]) == 0
    out = capsys.readouterr().out
    assert "TCL008 rng-stream-aliasing" in out
    assert "Bad (fires the rule):" in out
    assert "Good (lints clean):" in out
    assert "default_rng" in out


def test_explain_is_case_insensitive(capsys):
    assert main(["--explain", "tcl011"]) == 0
    assert "TCL011 non-atomic-write" in capsys.readouterr().out


def test_explain_unknown_rule_is_usage_error(capsys):
    assert main(["--explain", "TCL999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_explain_examples_are_executable(capsys):
    """What --explain prints is the same source the fixture tests lint."""
    from repro.lint import all_rules, examples_from_docstring, lint_source

    for rule in all_rules():
        assert main(["--explain", rule.rule_id]) == 0
        out = capsys.readouterr().out
        bad, good = examples_from_docstring(rule)
        assert bad.splitlines()[-1].strip() in out
        assert good.splitlines()[-1].strip() in out
        assert lint_source(bad, rule.example_path, rules=[rule])


def test_syntax_error_is_usage_error(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert main([str(broken)]) == 2
    assert "cannot parse" in capsys.readouterr().err
