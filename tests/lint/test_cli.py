"""CLI tests: exit codes, formats, JSON artifact, rule selection."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "tcl005" / "bad.py")
CLEAN = str(FIXTURES / "tcl005" / "clean.py")


def test_clean_path_exits_zero(capsys):
    assert main([CLEAN]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_one(capsys):
    assert main([BAD]) == 1
    out = capsys.readouterr().out
    assert "TCL005" in out
    assert "3 findings" in out


def test_json_format(capsys):
    assert main([BAD, "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["total"] == 3
    assert doc["counts"] == {"TCL005": 3}


def test_json_output_file(tmp_path, capsys):
    report = tmp_path / "report.json"
    assert main([BAD, "--output", str(report)]) == 1
    capsys.readouterr()
    doc = json.loads(report.read_text())
    assert doc["total"] == 3


def test_select_limits_rules(capsys):
    assert main([BAD, "--select", "TCL001"]) == 0
    assert main([BAD, "--select", "tcl005"]) == 1
    capsys.readouterr()


def test_unknown_rule_is_usage_error(capsys):
    assert main([BAD, "--select", "TCL999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert main([str(FIXTURES / "nope.py")]) == 2
    assert "tcast-lint" in capsys.readouterr().err


def test_no_pragmas_audit_mode(capsys):
    pragma = str(FIXTURES / "tcl005" / "pragma.py")
    assert main([pragma]) == 0
    assert main([pragma, "--no-pragmas"]) == 1
    capsys.readouterr()


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("TCL001", "TCL002", "TCL003", "TCL004", "TCL005", "TCL006"):
        assert rule_id in out


def test_syntax_error_is_usage_error(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert main([str(broken)]) == 2
    assert "cannot parse" in capsys.readouterr().err
