"""Engine-level tests: pragmas, alias resolution, discovery, reporters."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.lint import (
    Finding,
    iter_python_files,
    lint_paths,
    lint_source,
    render_human,
    render_json,
)
from repro.lint.engine import AliasResolver, build_context
from repro.lint.reporters import parse_json_report

FIXTURES = Path(__file__).parent / "fixtures"


def _resolver(source: str) -> AliasResolver:
    resolver = AliasResolver()
    resolver.visit(ast.parse(source))
    return resolver


def _resolve(source: str, expr: str) -> str | None:
    node = ast.parse(expr, mode="eval").body
    return _resolver(source).resolve(node)


class TestAliasResolution:
    def test_plain_import(self):
        assert _resolve("import time", "time.time") == "time.time"

    def test_import_as(self):
        assert (
            _resolve("import numpy as np", "np.random.default_rng")
            == "numpy.random.default_rng"
        )

    def test_submodule_import_as(self):
        assert (
            _resolve("import numpy.random as npr", "npr.randint")
            == "numpy.random.randint"
        )

    def test_from_import(self):
        assert (
            _resolve("from time import perf_counter", "perf_counter")
            == "time.perf_counter"
        )

    def test_from_import_as(self):
        assert (
            _resolve("from time import perf_counter as pc", "pc")
            == "time.perf_counter"
        )

    def test_from_datetime(self):
        assert (
            _resolve("from datetime import datetime", "datetime.now")
            == "datetime.datetime.now"
        )

    def test_unimported_name_passes_through(self):
        assert _resolve("", "rng.random") == "rng.random"

    def test_non_name_root_unresolvable(self):
        resolver = _resolver("")
        node = ast.parse("f().attr", mode="eval").body
        assert resolver.resolve(node) is None


class TestPragmas:
    SOURCE = "import time\nx = time.time()  # tcast-lint: disable={}\n"
    PATH = "repro/sim/clock.py"

    def test_same_line_pragma_suppresses(self):
        src = self.SOURCE.format("TCL002")
        assert lint_source(src, self.PATH) == []

    def test_pragma_lists_multiple_rules(self):
        src = self.SOURCE.format("TCL001,TCL002")
        assert lint_source(src, self.PATH) == []

    def test_pragma_all_suppresses(self):
        src = self.SOURCE.format("all")
        assert lint_source(src, self.PATH) == []

    def test_unrelated_pragma_does_not_suppress(self):
        src = self.SOURCE.format("TCL001")
        findings = lint_source(src, self.PATH)
        assert [f.rule_id for f in findings] == ["TCL002"]

    def test_pragma_with_justification_text(self):
        src = (
            "import time\n"
            "x = time.time()  # tcast-lint: disable=TCL002 -- banner only\n"
        )
        assert lint_source(src, self.PATH) == []

    def test_file_pragma(self):
        src = (
            "# tcast-lint: disable-file=TCL002\n"
            "import time\n"
            "x = time.time()\n"
            "y = time.monotonic()\n"
        )
        assert lint_source(src, self.PATH) == []

    def test_respect_pragmas_false_reports_anyway(self):
        src = self.SOURCE.format("TCL002")
        findings = lint_source(src, self.PATH, respect_pragmas=False)
        assert [f.rule_id for f in findings] == ["TCL002"]


class TestScoping:
    def test_wallclock_ignored_outside_sim_scope(self):
        src = "import time\nx = time.time()\n"
        assert lint_source(src, "repro/viz/banner.py") == []

    def test_wallclock_ignored_in_test_files(self):
        src = "import time\nx = time.time()\n"
        assert lint_source(src, "tests/sim/test_clock.py") == []

    def test_wallclock_flagged_in_serve_scope(self):
        src = "import time\nx = time.monotonic()\n"
        findings = lint_source(src, "repro/serve/clockwork.py")
        assert [f.rule_id for f in findings] == ["TCL002"]

    def test_wallclock_default_reference_allowed_in_serve_scope(self):
        # Injectable-clock idiom: referencing time.monotonic as a default
        # argument is fine; only *calls* read the wall clock.
        src = (
            "import time\n"
            "def f(clock=time.monotonic):\n"
            "    return clock()\n"
        )
        assert lint_source(src, "repro/serve/clockwork.py") == []

    def test_rng_rule_exempts_stream_factory(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert lint_source(src, "repro/sim/rng.py") == []
        assert lint_source(src, "repro/sim/other.py") != []


class TestDiscovery:
    def test_fixture_dirs_skipped_when_walking(self):
        files = list(iter_python_files([Path(__file__).parent]))
        assert not any("fixtures" in f.parts for f in files)
        assert Path(__file__) in files

    def test_explicit_file_always_linted(self):
        bad = FIXTURES / "tcl005" / "bad.py"
        assert list(iter_python_files([bad])) == [bad]
        assert lint_paths([bad]) != []

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([FIXTURES / "does-not-exist"]))


class TestReporters:
    FINDINGS = [
        Finding(path="a.py", line=3, col=4, rule_id="TCL001", message="m1"),
        Finding(path="b.py", line=9, col=0, rule_id="TCL005", message="m2"),
    ]

    def test_human_format(self):
        text = render_human(self.FINDINGS)
        assert "a.py:3:4: TCL001 m1" in text
        assert text.endswith("tcast-lint: 2 findings")

    def test_human_format_clean(self):
        assert render_human([]) == "tcast-lint: 0 findings"

    def test_json_round_trip(self):
        text = render_json(self.FINDINGS)
        assert parse_json_report(text) == self.FINDINGS

    def test_json_counts(self):
        import json

        doc = json.loads(render_json(self.FINDINGS))
        assert doc["schema"] == 1
        assert doc["total"] == 2
        assert doc["counts"] == {"TCL001": 1, "TCL005": 1}


class TestContext:
    def test_syntax_error_surfaces(self):
        with pytest.raises(SyntaxError):
            build_context("def broken(:\n", "x.py")

    def test_findings_sorted_by_location(self):
        src = (
            "import time\n"
            "def f(xs=[]):\n"
            "    return time.time(), xs\n"
        )
        findings = lint_source(src, "repro/core/f.py")
        assert [(f.line, f.rule_id) for f in findings] == [
            (2, "TCL005"),
            (3, "TCL002"),
        ]
