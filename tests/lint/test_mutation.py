"""Seeded mutation checks: undoing a determinism fix must fire a rule.

Each test takes a real source file, reverts exactly one hardening
(a ``sorted()`` wrapper, an ``atomicio`` call), and asserts the
corresponding rule fires at that site -- proving the rules actually
guard the invariants the tree relies on, not just the fixture corpus.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint_source

REPO_ROOT = Path(__file__).resolve().parents[2]

#: (relative path, hardened snippet, reverted snippet, rule that must fire)
MUTATIONS = [
    (
        "src/repro/farm/lease.py",
        'for path in sorted(spool.workers_dir.glob("*.reg")):',
        'for path in spool.workers_dir.glob("*.reg"):',
        "TCL009",
    ),
    (
        "src/repro/farm/coordinator.py",
        'for stale in sorted(self.spool.leases_dir.glob("*.lease")):',
        'for stale in self.spool.leases_dir.glob("*.lease"):',
        "TCL009",
    ),
    (
        "src/repro/experiments/cache.py",
        'for path in sorted(self._dir.glob("*.json")):',
        'for path in self._dir.glob("*.json"):',
        "TCL009",
    ),
    (
        "src/repro/farm/spool.py",
        "return atomic_write_bytes(self.shard_path(key), framed)",
        "return self.shard_path(key).write_bytes(framed)",
        "TCL011",
    ),
    (
        "src/repro/experiments/cli.py",
        "atomic_write_text(args.out, text + \"\\n\")",
        "args.out.write_text(text + \"\\n\")",
        "TCL011",
    ),
]


@pytest.mark.parametrize(
    "rel,hardened,reverted,rule_id",
    MUTATIONS,
    ids=[m[0].rsplit("/", 1)[-1] + ":" + m[3] for m in MUTATIONS],
)
def test_reverting_one_hardening_fires_the_rule(rel, hardened, reverted, rule_id):
    source = (REPO_ROOT / rel).read_text(encoding="utf-8")
    assert hardened in source, f"{rel}: expected hardened form {hardened!r}"
    mutated = source.replace(hardened, reverted, 1)
    assert mutated != source

    baseline = lint_source(source, rel)
    assert [f for f in baseline if f.rule_id == rule_id] == []

    findings = lint_source(mutated, rel)
    assert [f.rule_id for f in findings] == [rule_id], (
        f"{rel}: reverting {hardened!r} should fire exactly {rule_id}"
    )
