"""Unit tests for the flow-sensitive pass behind TCL008-TCL012.

Covers the three dataflow behaviours the rules rely on: tag propagation
through assignment (aliasing, kills, tuple unpacking), intra-module
call-graph reachability, and closure-capture detection -- plus
rule-level checks that the behaviours compose (a captured stream is only
flagged when it actually crosses a worker boundary).
"""

from __future__ import annotations

import ast

from repro.lint.dataflow import CallGraph, FlowVisitor, terminal_name
from repro.lint.engine import build_context, lint_source
from repro.lint.rules.rng_aliasing import RngStreamAliasing


class _TagRecorder(FlowVisitor):
    """Tag ``make()`` results and record aliases, uses and captures."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.aliases = []
        self.uses = []
        self.captures = []

    def classify(self, value):
        if (
            isinstance(value, ast.Call)
            and terminal_name(value.func) == "make"
        ):
            return "thing"
        return None

    def classify_param(self, arg):
        return "thing" if arg.arg == "thing" else None

    def on_alias(self, name, source, tag, node):
        self.aliases.append((name, source, tag.origin_id))

    def on_use(self, name, tag, node):
        self.uses.append((name, tag.origin_id, node.lineno))
        if self.func_stack and tag.depth < self.depth:
            self.captures.append((name, node.lineno))


def _track(source: str) -> _TagRecorder:
    visitor = _TagRecorder(build_context(source, "repro/x.py"))
    visitor.visit(visitor.ctx.tree)
    return visitor


class TestTagPropagation:
    def test_alias_shares_origin(self):
        v = _track("a = make()\nb = a\nb.go()\n")
        assert v.aliases == [("b", "a", v.uses[0][1])]
        # the load of ``b`` on line 3 carries the same origin as ``a``
        assert v.uses[-1][0] == "b"
        assert v.uses[-1][1] == v.uses[0][1]

    def test_distinct_values_get_distinct_origins(self):
        v = _track("a = make()\nb = make()\na.go(); b.go()\n")
        origins = {origin for _, origin, _ in v.uses}
        assert len(origins) == 2

    def test_reassignment_kills_tag(self):
        v = _track("a = make()\na = None\na.go()\n")
        assert all(line != 3 for _, _, line in v.uses)

    def test_tuple_unpack_tags_each_name(self):
        v = _track("a, b = make()\na.go(); b.go()\n")
        origins = {origin for _, origin, _ in v.uses}
        assert {name for name, _, _ in v.uses} == {"a", "b"}
        # unpacked elements are independent values, not aliases
        assert len(origins) == 2
        assert v.aliases == []

    def test_param_classification_seeds_function_scope(self):
        v = _track("def f(thing, other):\n    return thing.go()\n")
        assert [(n, line) for n, _, line in v.uses] == [("thing", 2)]

    def test_scope_kill_is_local(self):
        # killing inside a function leaves the module binding intact
        v = _track(
            "a = make()\n"
            "def f():\n"
            "    a = None\n"
            "    return a\n"
            "a.go()\n"
        )
        assert ("a", v.uses[0][1], 5) in v.uses


class TestClosureCapture:
    def test_load_at_deeper_scope_is_a_capture(self):
        v = _track(
            "def outer():\n"
            "    x = make()\n"
            "    def inner():\n"
            "        return x.go()\n"
            "    return inner\n"
        )
        assert v.captures == [("x", 4)]

    def test_same_scope_load_is_not_a_capture(self):
        v = _track("def f():\n    x = make()\n    return x.go()\n")
        assert v.captures == []

    def test_lambda_captures_too(self):
        v = _track("def f():\n    x = make()\n    return lambda: x.go()\n")
        assert v.captures == [("x", 3)]


class TestCallGraph:
    SOURCE = (
        "def entry():\n"
        "    middle()\n"
        "def middle():\n"
        "    leaf()\n"
        "def leaf():\n"
        "    return 1\n"
        "def unrelated():\n"
        "    return 2\n"
    )

    def _graph(self, source: str) -> CallGraph:
        return CallGraph.build(ast.parse(source))

    def test_transitive_reachability(self):
        reach = self._graph(self.SOURCE).reachable(["entry"])
        assert reach == {"entry", "middle", "leaf"}

    def test_unreachable_function_excluded(self):
        assert "unrelated" not in self._graph(self.SOURCE).reachable(["entry"])

    def test_unknown_entry_is_ignored(self):
        assert self._graph(self.SOURCE).reachable(["missing"]) == set()

    def test_nested_def_reachable_from_definer(self):
        graph = self._graph(
            "def entry():\n"
            "    def helper():\n"
            "        return 1\n"
            "    return helper\n"
        )
        assert graph.reachable(["entry"]) == {"entry", "helper"}

    def test_methods_keyed_by_bare_name(self):
        graph = self._graph(
            "class W:\n"
            "    def _serve(self):\n"
            "        self._step()\n"
            "    def _step(self):\n"
            "        return 1\n"
        )
        assert graph.reachable(["_serve"]) == {"_serve", "_step"}


class TestCaptureMeetsBoundary:
    """The composed behaviour TCL008 builds on the two passes."""

    def test_captured_stream_shipped_fires(self):
        src = (
            "import numpy as np\n"
            "def f(spool, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    def draw():\n"
            "        return rng.random()\n"
            "    spool.write_shard('c', draw)\n"
        )
        findings = lint_source(src, "repro/x.py", rules=[RngStreamAliasing()])
        assert [f.line for f in findings] == [6]

    def test_captured_stream_not_shipped_is_quiet(self):
        src = (
            "import numpy as np\n"
            "def f(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    def draw():\n"
            "        return rng.random()\n"
            "    return draw()\n"
        )
        assert lint_source(src, "repro/x.py", rules=[RngStreamAliasing()]) == []

    def test_uncaptured_stream_through_boundary_is_quiet(self):
        src = (
            "import numpy as np\n"
            "def f(spool, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    spool.write_shard('c', rng)\n"
        )
        assert lint_source(src, "repro/x.py", rules=[RngStreamAliasing()]) == []
