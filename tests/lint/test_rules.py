"""Per-rule fixture tests: exact rule ids and line numbers.

Every rule ships three fixture files under ``tests/lint/fixtures/``:
one violating (asserting the exact ``(rule_id, line)`` set), one clean,
and one whose violations are pragma-suppressed.  A fourth parametrised
test lints each rule's docstring ``Bad::``/``Good::`` example both ways,
so the documentation is executable and cannot rot.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import (
    all_rules,
    examples_from_docstring,
    lint_file,
    lint_source,
)

FIXTURES = Path(__file__).parent / "fixtures"

#: Exact findings each ``bad.py`` fixture must produce, as
#: ``(rule id, fixture-relative path, sorted line numbers)``.
EXPECTED_BAD = [
    ("TCL001", "tcl001/bad.py", [3, 4, 10, 11, 12, 13, 14, 15]),
    ("TCL002", "tcl002/sim/bad.py", [9, 10, 11]),
    ("TCL003", "tcl003/bad.py", [13, 14, 15, 16]),
    ("TCL004", "tcl004/analytic/bad.py", [7, 8, 9]),
    ("TCL005", "tcl005/bad.py", [4, 8, 12]),
    ("TCL006", "tcl006/experiments/bad.py", [8, 13, 18, 24]),
    ("TCL007", "tcl007/experiments/bad.py", [7, 16, 24]),
    ("TCL008", "tcl008/bad.py", [8, 14, 23]),
    ("TCL009", "tcl009/farm/bad.py", [8, 15, 20]),
    ("TCL010", "tcl010/bad.py", [9, 11, 12, 17]),
    ("TCL011", "tcl011/farm/bad.py", [7, 12, 16]),
    ("TCL012", "tcl012/farm/bad.py", [8, 13, 18]),
]

#: The clean and pragma-suppressed sibling of every bad fixture.
EXPECTED_QUIET = [
    (rule_id, bad.replace("bad.py", variant))
    for rule_id, bad, _ in EXPECTED_BAD
    for variant in ("clean.py", "pragma.py")
]


@pytest.mark.parametrize("rule_id,rel,lines", EXPECTED_BAD)
def test_bad_fixture_exact_findings(rule_id, rel, lines):
    findings = lint_file(FIXTURES / rel)
    assert [f.rule_id for f in findings] == [rule_id] * len(lines)
    assert [f.line for f in findings] == lines


@pytest.mark.parametrize("rule_id,rel", EXPECTED_QUIET)
def test_quiet_fixture_has_no_findings(rule_id, rel):
    assert lint_file(FIXTURES / rel) == []


@pytest.mark.parametrize("rule_id,rel", EXPECTED_QUIET)
def test_pragma_fixtures_fire_without_pragmas(rule_id, rel):
    """Audit mode (--no-pragmas) must surface the suppressed findings."""
    findings = lint_file(FIXTURES / rel, respect_pragmas=False)
    if rel.endswith("pragma.py"):
        assert findings, f"{rel}: pragma fixture should violate {rule_id}"
        assert {f.rule_id for f in findings} == {rule_id}
    else:
        assert findings == []


def test_every_rule_has_a_fixture_triple():
    covered = {rule_id for rule_id, _, _ in EXPECTED_BAD}
    assert covered == {rule.rule_id for rule in all_rules()}


@pytest.mark.parametrize(
    "rule", all_rules(), ids=lambda r: r.rule_id
)
def test_docstring_bad_example_fires(rule):
    bad, _ = examples_from_docstring(rule)
    findings = lint_source(bad, rule.example_path, rules=[rule])
    assert findings, f"{rule.rule_id}: Bad:: example produced no finding"
    assert {f.rule_id for f in findings} == {rule.rule_id}


@pytest.mark.parametrize(
    "rule", all_rules(), ids=lambda r: r.rule_id
)
def test_docstring_good_example_is_clean(rule):
    _, good = examples_from_docstring(rule)
    findings = lint_source(good, rule.example_path, rules=[rule])
    assert findings == [], f"{rule.rule_id}: Good:: example not clean"


@pytest.mark.parametrize(
    "rule", all_rules(), ids=lambda r: r.rule_id
)
def test_rule_metadata_complete(rule):
    assert rule.rule_id.startswith("TCL") and len(rule.rule_id) == 6
    assert rule.name and rule.name != "abstract-rule"
    assert rule.summary
