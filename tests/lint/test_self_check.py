"""Self-check: the repo's own tree must lint clean.

This is the committed-baseline guarantee of the PR that introduced
``tcast-lint``: every finding over ``src/repro`` and ``tests`` has been
fixed or pragma-suppressed with a justification, and this test keeps it
that way.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import lint_paths, render_human

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_and_tests_lint_clean():
    findings = lint_paths([REPO_ROOT / "src" / "repro", REPO_ROOT / "tests"])
    assert findings == [], "\n" + render_human(findings)


def test_lint_package_itself_lints_clean():
    findings = lint_paths([REPO_ROOT / "src" / "repro" / "lint"])
    assert findings == []


def test_every_pragma_in_tree_carries_justification():
    """A suppression without a reason is a suppression under review.

    Enforce the ``-- reason`` convention on every pragma in the tree
    (``tests/lint`` excluded: the linter's own tests and fixtures embed
    pragmas as data, in both styles).
    """
    offenders = []
    for path in (REPO_ROOT / "src").rglob("*.py"):
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if "tcast-lint: disable" in line and "--" not in line.split(
                "tcast-lint:", 1
            )[1]:
                offenders.append(f"{path}:{lineno}")
    for path in (REPO_ROOT / "tests").rglob("*.py"):
        if "lint" in path.parts:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if "tcast-lint: disable" in line and "--" not in line.split(
                "tcast-lint:", 1
            )[1]:
                offenders.append(f"{path}:{lineno}")
    assert offenders == [], f"pragmas without justification: {offenders}"
