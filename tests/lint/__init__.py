"""Tests for the ``tcast-lint`` static analyzer (:mod:`repro.lint`)."""
