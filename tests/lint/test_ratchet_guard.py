"""Tests for the mypy ratchet guard (coverage + monotonicity)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.ratchet_guard import (
    FROZEN_RATCHET,
    check,
    discover_modules,
    main,
    pattern_matches,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

PYPROJECT_TEMPLATE = """
[[tool.mypy.overrides]]
module = [{ratchet}]
ignore_errors = true

[[tool.mypy.overrides]]
module = [{core}]
ignore_errors = false
"""


def _write_pyproject(root: Path, ratchet: list[str], core: list[str]) -> Path:
    def fmt(entries: list[str]) -> str:
        return ", ".join(f'"{e}"' for e in entries)

    path = root / "pyproject.toml"
    path.write_text(
        PYPROJECT_TEMPLATE.format(ratchet=fmt(ratchet), core=fmt(core))
    )
    return path


class TestPatternMatching:
    def test_exact(self):
        assert pattern_matches("repro.api", "repro.api")
        assert not pattern_matches("repro.api", "repro.api.v2")

    def test_wildcard_matches_package_and_children(self):
        assert pattern_matches("repro.farm.*", "repro.farm")
        assert pattern_matches("repro.farm.*", "repro.farm.lease")
        assert pattern_matches("repro.farm.*", "repro.farm.sub.deep")

    def test_wildcard_does_not_match_prefix_siblings(self):
        assert not pattern_matches("repro.farm.*", "repro.farmhand")


class TestDiscovery:
    def test_packages_and_modules_enumerated(self, tmp_path):
        src = tmp_path / "src" / "repro"
        (src / "sim").mkdir(parents=True)
        (src / "__init__.py").write_text("")
        (src / "api.py").write_text("")
        (src / "sim" / "__init__.py").write_text("")
        (src / "sim" / "clock.py").write_text("")
        assert discover_modules(src) == [
            "repro",
            "repro.api",
            "repro.sim",
            "repro.sim.clock",
        ]

    def test_real_tree_contains_known_modules(self):
        modules = discover_modules(REPO_ROOT / "src" / "repro")
        assert "repro.farm.lease" in modules
        assert "repro.lint.ratchet_guard" in modules
        assert "repro" in modules


class TestCheck:
    def test_repo_config_is_sound(self):
        problems = check(
            REPO_ROOT / "pyproject.toml", REPO_ROOT / "src" / "repro"
        )
        assert problems == []

    def test_unlisted_module_rejected(self, tmp_path):
        src = tmp_path / "src" / "repro"
        (src / "sim").mkdir(parents=True)
        (src / "__init__.py").write_text("")
        (src / "sim" / "__init__.py").write_text("")
        (src / "orphan.py").write_text("")
        pyproject = _write_pyproject(
            tmp_path, ["repro.viz.*"], ["repro", "repro.sim.*"]
        )
        problems = check(pyproject, src)
        assert len(problems) == 1
        assert "repro.orphan" in problems[0]

    def test_grown_ratchet_rejected(self, tmp_path):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "__init__.py").write_text("")
        assert "repro.farm.*" not in FROZEN_RATCHET
        pyproject = _write_pyproject(
            tmp_path, ["repro.farm.*"], ["repro"]
        )
        problems = check(pyproject, src)
        assert any("ratchet grew" in p for p in problems)

    def test_promotion_is_allowed(self, tmp_path):
        """Removing a ratchet entry (promoting) never fails the guard."""
        src = tmp_path / "src" / "repro"
        (src / "viz").mkdir(parents=True)
        (src / "__init__.py").write_text("")
        (src / "viz" / "__init__.py").write_text("")
        pyproject = _write_pyproject(
            tmp_path, ["repro.workloads.*"], ["repro", "repro.viz.*"]
        )
        assert check(pyproject, src) == []


class TestMain:
    def test_repo_passes(self, capsys):
        code = main(
            [
                "--pyproject",
                str(REPO_ROOT / "pyproject.toml"),
                "--src",
                str(REPO_ROOT / "src" / "repro"),
            ]
        )
        assert code == 0
        assert "ratchet-guard: ok" in capsys.readouterr().out

    def test_violation_exits_one(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "__init__.py").write_text("")
        (src / "orphan.py").write_text("")
        pyproject = _write_pyproject(tmp_path, ["repro.viz.*"], ["repro"])
        code = main(["--pyproject", str(pyproject), "--src", str(src)])
        assert code == 1
        assert "unlisted module" in capsys.readouterr().out

    def test_missing_pyproject_is_usage_error(self, tmp_path, capsys):
        code = main(
            ["--pyproject", str(tmp_path / "nope.toml"), "--src", str(tmp_path)]
        )
        assert code == 2
        capsys.readouterr()

    def test_malformed_pyproject_is_usage_error(self, tmp_path, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text("[tool.mypy]\n")
        code = main(["--pyproject", str(pyproject), "--src", str(tmp_path)])
        assert code == 2
        assert "overrides" in capsys.readouterr().err


@pytest.mark.parametrize(
    "promoted",
    [
        "repro.farm.lease",
        "repro.farm.coordinator",
        "repro.farm.worker",
        "repro.farm.spool",
        "repro.core.reliable",
        "repro.core.result",
        "repro.group_testing.vectorized",
        "repro.experiments.atomicio",
        "repro.experiments.cache",
        "repro.experiments.resilience",
    ],
)
def test_burned_down_modules_left_the_ratchet(promoted):
    """The PR's promotions are typed-core, not ratcheted or unlisted."""
    from repro.lint.ratchet_guard import load_override_lists, matches_any

    ratchet, core = load_override_lists(REPO_ROOT / "pyproject.toml")
    assert matches_any(core, promoted), f"{promoted} not in typed core"
    # concrete typed-core entries shadow any wildcard ratchet pattern,
    # but the farm/group_testing/core promotions must not even match one
    if not promoted.startswith("repro.experiments."):
        assert not matches_any(ratchet, promoted)
