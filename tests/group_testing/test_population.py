"""Unit tests for the hidden ground truth."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.group_testing.population import Population


class TestConstruction:
    def test_basic(self):
        pop = Population(size=5, positives=frozenset({0, 3}))
        assert pop.x == 2
        assert list(pop.node_ids) == [0, 1, 2, 3, 4]

    def test_coerces_iterables(self):
        pop = Population(size=5, positives={1, 2})  # type: ignore[arg-type]
        assert isinstance(pop.positives, frozenset)
        assert pop.x == 2

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError):
            Population(size=3, positives=frozenset({3}))
        with pytest.raises(ValueError):
            Population(size=3, positives=frozenset({-1}))

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            Population(size=-1)

    def test_empty_population(self):
        pop = Population(size=0)
        assert pop.x == 0
        assert pop.truth(0)


class TestQueries:
    def test_is_positive(self):
        pop = Population(size=4, positives=frozenset({2}))
        assert pop.is_positive(2)
        assert not pop.is_positive(1)

    def test_count_positives(self):
        pop = Population(size=6, positives=frozenset({0, 2, 4}))
        assert pop.count_positives([0, 1, 2]) == 2
        assert pop.count_positives([]) == 0
        assert pop.count_positives(range(6)) == 3

    def test_truth(self):
        pop = Population(size=6, positives=frozenset({0, 2, 4}))
        assert pop.truth(3)
        assert pop.truth(0)
        assert not pop.truth(4)

    def test_truth_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            Population(size=2).truth(-1)


class TestFactories:
    def test_from_count_deterministic_without_rng(self):
        pop = Population.from_count(10, 4)
        assert pop.positives == frozenset(range(4))

    def test_from_count_random(self, rng):
        pop = Population.from_count(100, 30, rng)
        assert pop.x == 30
        assert all(0 <= v < 100 for v in pop.positives)

    def test_from_count_extremes(self, rng):
        assert Population.from_count(10, 0, rng).x == 0
        assert Population.from_count(10, 10, rng).x == 10

    def test_from_count_rejects_bad_x(self):
        with pytest.raises(ValueError):
            Population.from_count(5, 6)
        with pytest.raises(ValueError):
            Population.from_count(5, -1)

    def test_from_probability_bounds(self, rng):
        pop = Population.from_probability(200, 0.5, rng)
        assert 0 < pop.x < 200

    def test_from_probability_extremes(self, rng):
        assert Population.from_probability(50, 0.0, rng).x == 0
        assert Population.from_probability(50, 1.0, rng).x == 50

    def test_from_probability_rejects_bad_prob(self, rng):
        with pytest.raises(ValueError):
            Population.from_probability(5, 1.5, rng)

    @given(
        size=st.integers(min_value=0, max_value=300),
        data=st.data(),
    )
    def test_from_count_property(self, size, data):
        x = data.draw(st.integers(min_value=0, max_value=size))
        pop = Population.from_count(size, x, np.random.default_rng(0))
        assert pop.x == x
        assert pop.truth(x)
        if x < size:
            assert not pop.truth(x + 1)
