"""Unit tests for the 1+ and 2+ abstract query models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.group_testing.model import (
    ObservationKind,
    OnePlusModel,
    QueryBudgetExceeded,
    TwoPlusModel,
    default_capture_probability,
)
from repro.group_testing.population import Population


@pytest.fixture
def pop():
    return Population(size=10, positives=frozenset({1, 3, 5}))


class TestOnePlus:
    def test_silent_on_all_negative_bin(self, pop, rng):
        model = OnePlusModel(pop, rng)
        obs = model.query([0, 2, 4])
        assert obs.kind is ObservationKind.SILENT
        assert obs.silent
        assert obs.min_positives == 0

    def test_activity_on_any_positive(self, pop, rng):
        model = OnePlusModel(pop, rng)
        obs = model.query([0, 1, 2])
        assert obs.kind is ObservationKind.ACTIVITY
        assert obs.min_positives == 1
        assert obs.captured_node is None

    def test_activity_never_reveals_count(self, pop, rng):
        model = OnePlusModel(pop, rng)
        one = model.query([1])
        three = model.query([1, 3, 5])
        assert one.min_positives == three.min_positives == 1

    def test_cost_ledger(self, pop, rng):
        model = OnePlusModel(pop, rng)
        assert model.queries_used == 0
        model.query([0])
        model.query([1])
        assert model.queries_used == 2

    def test_empty_bin_query_is_charged_and_silent(self, pop, rng):
        """Sampled bins of unknown membership are charged (Sec V-D)."""
        model = OnePlusModel(pop, rng)
        obs = model.query([])
        assert obs.silent
        assert model.queries_used == 1

    def test_budget_enforced(self, pop, rng):
        model = OnePlusModel(pop, rng, max_queries=2)
        model.query([0])
        model.query([0])
        with pytest.raises(QueryBudgetExceeded):
            model.query([0])

    def test_population_size(self, pop, rng):
        assert OnePlusModel(pop, rng).population_size == 10

    def test_detection_failure_forces_silence(self, pop):
        model = OnePlusModel(
            pop, np.random.default_rng(0), detection_failure=lambda k: 1.0
        )
        assert model.query([1, 3]).silent

    def test_detection_failure_zero_is_ideal(self, pop):
        model = OnePlusModel(
            pop, np.random.default_rng(0), detection_failure=lambda k: 0.0
        )
        assert not model.query([1]).silent

    def test_detection_failure_bad_value_raises(self, pop):
        model = OnePlusModel(
            pop, np.random.default_rng(0), detection_failure=lambda k: 2.0
        )
        with pytest.raises(ValueError):
            model.query([1])

    def test_failure_hook_never_creates_false_positive(self, pop):
        model = OnePlusModel(
            pop, np.random.default_rng(0), detection_failure=lambda k: 0.5
        )
        for _ in range(50):
            assert model.query([0, 2]).silent


class TestDefaultCapture:
    def test_inverse_k(self):
        assert default_capture_probability(1) == 1.0
        assert default_capture_probability(4) == 0.25

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            default_capture_probability(0)


class TestTwoPlus:
    def test_silent_bin(self, pop, rng):
        model = TwoPlusModel(pop, rng)
        assert model.query([0, 2]).silent

    def test_single_positive_always_captured(self, pop, rng):
        model = TwoPlusModel(pop, rng)
        for _ in range(20):
            obs = model.query([0, 1, 2])
            assert obs.kind is ObservationKind.CAPTURE
            assert obs.captured_node == 1
            assert obs.min_positives == 1

    def test_collision_without_capture_proves_two(self, pop):
        model = TwoPlusModel(
            pop,
            np.random.default_rng(0),
            capture_probability=lambda k: 0.0,
        )
        obs = model.query([1, 3, 5])
        assert obs.kind is ObservationKind.ACTIVITY
        assert obs.min_positives == 2
        assert obs.captured_node is None

    def test_forced_capture_returns_a_positive_member(self, pop):
        model = TwoPlusModel(
            pop,
            np.random.default_rng(0),
            capture_probability=lambda k: 1.0,
        )
        for _ in range(20):
            obs = model.query([1, 3, 5])
            assert obs.kind is ObservationKind.CAPTURE
            assert obs.captured_node in {1, 3, 5}

    def test_default_capture_rate_matches_one_over_k(self, pop):
        rng = np.random.default_rng(7)
        model = TwoPlusModel(pop, rng)
        captures = sum(
            model.query([1, 3, 5]).kind is ObservationKind.CAPTURE
            for _ in range(3000)
        )
        assert captures / 3000 == pytest.approx(1 / 3, abs=0.03)

    def test_invalid_capture_probability_raises(self, pop, rng):
        model = TwoPlusModel(pop, rng, capture_probability=lambda k: 1.5)
        with pytest.raises(ValueError):
            model.query([1, 3])

    def test_budget_enforced(self, pop, rng):
        model = TwoPlusModel(pop, rng, max_queries=1)
        model.query([0])
        with pytest.raises(QueryBudgetExceeded):
            model.query([0])

    def test_detection_failure_applies(self, pop):
        model = TwoPlusModel(
            pop, np.random.default_rng(0), detection_failure=lambda k: 1.0
        )
        assert model.query([1, 3]).silent


@settings(max_examples=30)
@given(
    size=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=100),
    data=st.data(),
)
def test_observation_soundness_property(size, seed, data):
    """min_positives never exceeds the bin's true positive count, and
    silence occurs only on truly-empty bins (ideal radios)."""
    x = data.draw(st.integers(min_value=0, max_value=size))
    rng = np.random.default_rng(seed)
    pop = Population.from_count(size, x, rng)
    members = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=size - 1),
            max_size=size,
            unique=True,
        )
    )
    true_count = pop.count_positives(members)
    for model in (
        OnePlusModel(pop, np.random.default_rng(seed)),
        TwoPlusModel(pop, np.random.default_rng(seed)),
    ):
        obs = model.query(members)
        assert obs.min_positives <= true_count
        if obs.silent:
            assert true_count == 0
        else:
            assert true_count >= 1
        if obs.captured_node is not None:
            assert pop.is_positive(obs.captured_node)
            assert obs.captured_node in members


class TestTwoPlusDetectionFailure:
    """The ``detection_failure`` hook on the 2+ capture path (Sec IV-D's
    irregularity, applied to capture-effect radios)."""

    def test_certain_miss_silences_a_lone_capture(self, pop, rng):
        """A lone reply -- normally always captured and decoded -- is
        lost when the hook fires, and no sender id leaks."""
        model = TwoPlusModel(pop, rng, detection_failure=lambda k: 1.0)
        obs = model.query([1, 0, 2])  # exactly one positive: node 1
        assert obs.kind is ObservationKind.SILENT
        assert obs.captured_node is None
        assert obs.min_positives == 0

    def test_certain_miss_suppresses_collisions_too(self, pop, rng):
        model = TwoPlusModel(pop, rng, detection_failure=lambda k: 1.0)
        obs = model.query([1, 3, 5])  # three positives
        assert obs.kind is ObservationKind.SILENT

    def test_hook_receives_true_positive_count(self, pop, rng):
        seen = []

        def hook(k):
            seen.append(k)
            return 0.0

        model = TwoPlusModel(pop, rng, detection_failure=hook)
        model.query([1, 0, 2])
        model.query([1, 3, 5])
        assert seen == [1, 3]

    def test_empty_bin_never_consults_hook(self, pop, rng):
        def hook(k):  # pragma: no cover - the assertion is that it never runs
            raise AssertionError("hook consulted for an empty bin")

        model = TwoPlusModel(pop, rng, detection_failure=hook)
        obs = model.query([0, 2, 4])  # no positives
        assert obs.silent

    def test_zero_miss_hook_preserves_ideal_behaviour(self, pop, rng):
        plain = TwoPlusModel(pop, np.random.default_rng(5))
        hooked = TwoPlusModel(
            pop, np.random.default_rng(5), detection_failure=lambda k: 0.0
        )
        for members in ([1, 0, 2], [1, 3, 5], [0, 2, 4]):
            a = plain.query(list(members))
            b = hooked.query(list(members))
            assert a.kind == b.kind
            assert a.captured_node == b.captured_node

    def test_single_positive_miss_rate_matches_hook(self, pop):
        """Statistical check: a 0.3 lone-miss hook silences ~30% of
        lone-capture queries and never touches multi-positive bins."""
        rng = np.random.default_rng(42)
        miss = lambda k: 0.3 if k == 1 else 0.0  # noqa: E731
        model = TwoPlusModel(pop, rng, detection_failure=miss)
        lone_silent = sum(model.query([1, 0, 2]).silent for _ in range(2000))
        multi_silent = sum(model.query([1, 3, 5]).silent for _ in range(500))
        assert 500 <= lone_silent <= 700  # ~600 expected
        assert multi_silent == 0
