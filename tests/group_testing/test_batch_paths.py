"""Vectorized batch paths must match their serial counterparts exactly.

The sweep-throughput work added three batch fast paths -- ``sample_bins``,
``Population.scan_bins`` and ``QueryModel.query_batch`` (plus the
``begin_round`` prefetch) -- each documented as bit-identical to the
one-at-a-time code it accelerates.  These tests pin that equivalence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.group_testing.binning import sample_bin, sample_bins
from repro.group_testing.model import (
    KPlusModel,
    OnePlusModel,
    TwoPlusModel,
)
from repro.group_testing.population import Population

MODELS = [OnePlusModel, TwoPlusModel, lambda pop, rng: KPlusModel(pop, rng, k=3)]
MODEL_IDS = ["1+", "2+", "3+"]


def _pop(n=64, x=20, seed=0):
    return Population.from_count(n, x, np.random.default_rng(seed))


class TestSampleBins:
    @pytest.mark.parametrize("p", [0.1, 0.5, 0.9])
    def test_matches_repeated_sample_bin(self, p):
        ids = list(range(40))
        batched = sample_bins(ids, p, 7, np.random.default_rng(42))
        rng = np.random.default_rng(42)
        looped = [sample_bin(ids, p, rng) for _ in range(7)]
        assert batched == looped

    def test_rng_state_advances_identically(self):
        """Downstream draws must not depend on which path ran."""
        ids = list(range(16))
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        sample_bins(ids, 0.3, 5, rng_a)
        for _ in range(5):
            sample_bin(ids, 0.3, rng_b)
        assert rng_a.random() == rng_b.random()

    @pytest.mark.parametrize("ids,p", [([], 0.5), (list(range(8)), 0.0)])
    def test_degenerate_cases_consume_no_rng(self, ids, p):
        rng = np.random.default_rng(5)
        before = rng.bit_generator.state
        bins = sample_bins(ids, p, 4, rng)
        assert bins == [[], [], [], []]
        assert rng.bit_generator.state == before

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            sample_bins([1], 1.5, 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sample_bins([1], 0.5, -1, np.random.default_rng(0))


class TestScanBins:
    def test_counts_match_count_positives(self):
        pop = _pop()
        rng = np.random.default_rng(9)
        bins = [
            rng.choice(64, size=size, replace=False).tolist()
            for size in (0, 1, 5, 20, 64)
        ]
        counts, positives = pop.scan_bins(bins)
        assert positives is None
        assert counts.tolist() == [pop.count_positives(b) for b in bins]

    def test_positive_members_match_serial_filter(self):
        pop = _pop()
        rng = np.random.default_rng(11)
        bins = [rng.choice(64, size=12, replace=False).tolist() for _ in range(6)]
        counts, positives = pop.scan_bins(bins, want_positives=True)
        for members, count, pos in zip(bins, counts, positives):
            expected = [m for m in members if pop.is_positive(m)]
            assert sorted(pos.tolist()) == sorted(expected)
            assert count == len(expected)

    def test_empty_bin_list(self):
        counts, positives = _pop().scan_bins([])
        assert counts.tolist() == []
        assert positives is None


class TestQueryBatch:
    @pytest.mark.parametrize("make_model", MODELS, ids=MODEL_IDS)
    def test_matches_serial_queries(self, make_model):
        pop = _pop()
        rng = np.random.default_rng(21)
        bins = [rng.choice(64, size=s, replace=False).tolist() for s in (0, 1, 3, 10, 30)]

        serial_model = make_model(pop, np.random.default_rng(33))
        serial = [serial_model.query(b) for b in bins]
        batch_model = make_model(pop, np.random.default_rng(33))
        batched = batch_model.query_batch(bins)

        assert batched == serial
        assert batch_model.queries_used == serial_model.queries_used

    @pytest.mark.parametrize("make_model", MODELS, ids=MODEL_IDS)
    def test_prefetch_round_matches_serial(self, make_model):
        """begin_round + per-bin query == plain per-bin query."""
        pop = _pop()
        rng = np.random.default_rng(22)
        bins = [rng.choice(64, size=80 % 65, replace=False).tolist() for _ in range(4)]

        plain_model = make_model(pop, np.random.default_rng(44))
        plain = [plain_model.query(b) for b in bins]
        prefetch_model = make_model(pop, np.random.default_rng(44))
        prefetch_model.begin_round(bins)
        prefetched = [prefetch_model.query(b) for b in bins]

        assert prefetched == plain
        assert prefetch_model.queries_used == plain_model.queries_used

    def test_budget_exhaustion_matches_serial(self):
        pop = _pop()
        bins = [[i] for i in range(10)]
        serial_model = OnePlusModel(pop, np.random.default_rng(1), max_queries=3)
        serial_exc = None
        try:
            for b in bins:
                serial_model.query(b)
        except Exception as exc:  # noqa: BLE001 - capture for comparison
            serial_exc = type(exc)
        batch_model = OnePlusModel(pop, np.random.default_rng(1), max_queries=3)
        with pytest.raises(serial_exc):
            batch_model.query_batch(bins)
        assert batch_model.queries_used == serial_model.queries_used
