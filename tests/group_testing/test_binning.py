"""Unit and property tests for bin assignment."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.group_testing.binning import (
    partition_deterministic,
    partition_random,
    sample_bin,
)


def _flatten(bins):
    out = []
    for b in bins:
        out.extend(b)
    return out


class TestPartitionRandom:
    def test_partitions_everything_exactly_once(self, rng):
        cands = list(range(37))
        bins = partition_random(cands, 5, rng)
        assert sorted(_flatten(bins)) == cands

    def test_balanced_sizes(self, rng):
        bins = partition_random(list(range(37)), 5, rng)
        sizes = sorted(len(b) for b in bins)
        assert max(sizes) - min(sizes) <= 1

    def test_no_empty_bins_materialised(self, rng):
        bins = partition_random(list(range(3)), 10, rng)
        assert len(bins) == 3
        assert all(len(b) == 1 for b in bins)

    def test_empty_candidates(self, rng):
        assert partition_random([], 4, rng) == []

    def test_single_bin(self, rng):
        bins = partition_random([5, 9, 1], 1, rng)
        assert len(bins) == 1
        assert sorted(bins[0]) == [1, 5, 9]

    def test_rejects_zero_bins(self, rng):
        with pytest.raises(ValueError):
            partition_random([1], 0, rng)

    def test_randomised_across_calls(self):
        rng = np.random.default_rng(0)
        a = partition_random(list(range(64)), 8, rng)
        b = partition_random(list(range(64)), 8, rng)
        assert a != b  # astronomically unlikely to match

    def test_deterministic_for_fixed_seed(self):
        a = partition_random(list(range(64)), 8, np.random.default_rng(3))
        b = partition_random(list(range(64)), 8, np.random.default_rng(3))
        assert a == b

    def test_assignment_roughly_uniform(self):
        """Each node lands in each bin with ~equal frequency."""
        rng = np.random.default_rng(42)
        counts = np.zeros((8, 4))
        for _ in range(2000):
            bins = partition_random(list(range(8)), 4, rng)
            for b_idx, members in enumerate(bins):
                for m in members:
                    counts[m, b_idx] += 1
        freq = counts / 2000
        assert np.all(np.abs(freq - 0.25) < 0.05)

    @settings(max_examples=50)
    @given(
        n=st.integers(min_value=0, max_value=200),
        bins=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_partition_invariants(self, n, bins, seed):
        cands = list(range(1000, 1000 + n))
        out = partition_random(cands, bins, np.random.default_rng(seed))
        assert sorted(_flatten(out)) == cands
        assert len(out) == min(bins, n)
        if out:
            sizes = [len(b) for b in out]
            assert max(sizes) - min(sizes) <= 1
            assert min(sizes) >= 1


class TestPartitionDeterministic:
    def test_contiguous_sorted_slices(self):
        bins = partition_deterministic([5, 1, 3, 2, 4], 2)
        assert bins == [[1, 2, 3], [4, 5]]

    def test_exact_cover(self):
        cands = list(range(23))
        bins = partition_deterministic(cands, 7)
        assert sorted(_flatten(bins)) == cands

    def test_repeatable(self):
        a = partition_deterministic(range(10), 3)
        b = partition_deterministic(range(10), 3)
        assert a == b

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            partition_deterministic([1], 0)

    def test_empty(self):
        assert partition_deterministic([], 3) == []


class TestSampleBin:
    def test_inclusion_zero_gives_empty(self, rng):
        assert sample_bin(list(range(50)), 0.0, rng) == []

    def test_inclusion_one_gives_all(self, rng):
        assert sorted(sample_bin(list(range(50)), 1.0, rng)) == list(range(50))

    def test_empty_candidates(self, rng):
        assert sample_bin([], 0.5, rng) == []

    def test_rejects_bad_probability(self, rng):
        with pytest.raises(ValueError):
            sample_bin([1], 1.5, rng)
        with pytest.raises(ValueError):
            sample_bin([1], -0.1, rng)

    def test_members_are_subset(self, rng):
        cands = list(range(100, 200))
        members = sample_bin(cands, 0.3, rng)
        assert set(members) <= set(cands)
        assert len(set(members)) == len(members)

    def test_expected_size(self):
        rng = np.random.default_rng(1)
        sizes = [len(sample_bin(list(range(100)), 0.2, rng)) for _ in range(500)]
        assert np.mean(sizes) == pytest.approx(20.0, abs=1.5)
