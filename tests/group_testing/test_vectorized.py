"""Bit-exactness of the vectorized Monte-Carlo kernel.

The vectorized path must be indistinguishable from the scalar oracle:
identical verdicts and query counts for every run, identical RNG stream
consumption (the next draw after a cell matches), identical ``model.*``
metrics totals, and a guaranteed scalar fallback whenever a fault plan
or an unsupported configuration is in play.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    REGISTRY,
    algorithm_factory,
    make_algorithm,
    threshold_query_batch,
)
from repro.core import BatchThresholdDecider, TwoTBins
from repro.experiments.common import SweepEngine
from repro.faults.injectors import VerdictFlip
from repro.faults.plan import FaultPlan
from repro.group_testing import (
    ModelSpec,
    Population,
    QueryBatch,
    QueryBudgetExceeded,
    UnsupportedBatch,
    run_lockstep,
)
from repro.obs import get_registry

DECIDER_NAMES = sorted(key for key, spec in REGISTRY.items() if spec.decider)
VECTORIZED_NAMES = sorted(
    key for key, spec in REGISTRY.items() if spec.vectorized
)
MODEL_KINDS = ("1+", "k+", "2+")

N, T = 48, 6
XS = (0, 3, 5, 6, 7, 24, 48)
RUNS = 8
SEED = 1234


def _model_spec(kind: str) -> ModelSpec:
    return ModelSpec(kind=kind, max_queries=80 * N, k=3)


def _curve(name: str, kind: str, vectorize: bool):
    engine = SweepEngine(N, T, runs=RUNS, seed=SEED, vectorize=vectorize)
    return engine.query_curve(
        name, XS, algorithm_factory(name), _model_spec(kind)
    )


@pytest.fixture(autouse=True)
def _pristine_registry():
    """Every test starts and ends with a disabled, zeroed registry."""
    registry = get_registry()
    registry.disable()
    registry.reset()
    yield registry
    registry.disable()
    registry.reset()


def _memoized_streams(salt: int):
    """A pure per-run stream factory that exposes its created generators."""
    cache = {}

    def streams(run: int):
        if run not in cache:
            seq = np.random.SeedSequence([salt, run])
            cache[run] = tuple(np.random.default_rng(s) for s in seq.spawn(3))
        return cache[run]

    return streams, cache


class TestEngineParity:
    """SweepEngine(vectorize=True) == SweepEngine(vectorize=False)."""

    @pytest.mark.parametrize("kind", MODEL_KINDS)
    @pytest.mark.parametrize("name", DECIDER_NAMES)
    def test_curves_identical_across_registry(self, name, kind):
        vec = _curve(name, kind, vectorize=True)
        scalar = _curve(name, kind, vectorize=False)
        assert vec.ys == scalar.ys, f"{name}/{kind}"
        assert vec.stderr == scalar.stderr, f"{name}/{kind}"

    @pytest.mark.parametrize("kind", MODEL_KINDS)
    @pytest.mark.parametrize("name", VECTORIZED_NAMES)
    def test_vectorized_entries_take_the_kernel_path(
        self, name, kind, _pristine_registry
    ):
        registry = _pristine_registry
        registry.enable()
        _curve(name, kind, vectorize=True)
        snapshot = registry.snapshot()
        if name == "prob-threshold" and kind == "2+":
            # Capture-model probes draw model randomness per probe; the
            # kernel refuses and every cell falls back to the oracle.
            assert snapshot.counter("sweep.vectorized_shards") == 0
            assert snapshot.counter("sweep.vectorized_fallback") > 0
        else:
            assert snapshot.counter("sweep.vectorized_shards") > 0, (
                f"{name}/{kind}: no cell dispatched to the kernel"
            )

    @pytest.mark.parametrize("kind", MODEL_KINDS)
    @pytest.mark.parametrize("name", VECTORIZED_NAMES)
    def test_metrics_totals_reconcile(self, name, kind, _pristine_registry):
        registry = _pristine_registry
        registry.enable()
        _curve(name, kind, vectorize=True)
        vec = registry.snapshot()
        registry.reset()
        _curve(name, kind, vectorize=False)
        scalar = registry.snapshot()
        for counter in (
            "model.queries",
            "model.verdict.silent",
            "model.verdict.activity",
            "model.verdict.capture",
            "sweep.runs",
            "sweep.shards",
        ):
            assert vec.counter(counter) == scalar.counter(counter), counter
        vec_hist = vec.histograms.get("model.bin_size")
        scalar_hist = scalar.histograms.get("model.bin_size")
        assert (vec_hist is None) == (scalar_hist is None)
        if vec_hist is not None:
            assert vec_hist.counts == scalar_hist.counts
            assert vec_hist.total == scalar_hist.total
            assert vec_hist.sum == scalar_hist.sum
            assert vec_hist.min == scalar_hist.min
            assert vec_hist.max == scalar_hist.max


class TestStreamConsumption:
    """The kernel leaves every RNG stream exactly where the scalar path would."""

    @pytest.mark.parametrize("kind", MODEL_KINDS)
    def test_post_run_generator_states_match_scalar(self, kind):
        spec = _model_spec(kind)
        runs = 6
        vec_streams, vec_cache = _memoized_streams(salt=9)
        batch = QueryBatch(
            n=32, x=10, threshold=5, run_lo=0, run_hi=runs,
            model=spec, streams=vec_streams,
        )
        out = TwoTBins().decide_batch(batch)

        scalar_streams, scalar_cache = _memoized_streams(salt=9)
        for run in range(runs):
            pop_rng, model_rng, bins_rng = scalar_streams(run)
            pop = Population.from_count(32, 10, pop_rng)
            model = spec(pop, model_rng)
            result = TwoTBins().decide(model, 5, bins_rng)
            assert result.decision == bool(out.decisions[run])
            assert result.queries == int(out.queries[run])

        for run in range(runs):
            for vec_gen, scalar_gen in zip(vec_cache[run], scalar_cache[run]):
                assert (
                    vec_gen.bit_generator.state
                    == scalar_gen.bit_generator.state
                ), f"run {run}: stream consumed a different number of draws"


class TestBatchFacade:
    """threshold_query_batch: spawn streams, dispatch, fallback."""

    def test_exact_and_deterministic(self):
        above = threshold_query_batch(64, 20, 8, runs=12, seed=5)
        below = threshold_query_batch(64, 4, 8, runs=12, seed=5)
        again = threshold_query_batch(64, 20, 8, runs=12, seed=5)
        assert above.exact
        assert above.decisions.all()
        assert not below.decisions.any()
        assert (above.decisions == again.decisions).all()
        assert (above.queries == again.queries).all()

    def test_dispatches_to_kernel_when_supported(self, monkeypatch):
        calls = []
        original = TwoTBins.decide_batch

        def spy(self, batch):
            calls.append(batch)
            return original(self, batch)

        monkeypatch.setattr(TwoTBins, "decide_batch", spy)
        threshold_query_batch(32, 10, 4, runs=3, seed=1)
        assert len(calls) == 1

    def test_fault_plan_forces_scalar_path(self, monkeypatch):
        def forbidden(self, batch):
            raise AssertionError("kernel used despite an active fault plan")

        monkeypatch.setattr(TwoTBins, "decide_batch", forbidden)
        plan = FaultPlan([VerdictFlip(p_drop=0.2, only_single=True)], seed=4)
        out = threshold_query_batch(
            32, 10, 4, runs=3, seed=1, fault_plan=plan
        )
        assert out.decisions.shape == (3,)

    def test_unsupported_batch_falls_back_to_scalar(self, monkeypatch):
        # Capture-model probes are not vectorized: decide_batch raises
        # UnsupportedBatch and the facade reruns on the scalar path.
        from repro.core import ProbabilisticThreshold

        original = ProbabilisticThreshold.decide_batch
        raised = []

        def spy(self, batch):
            try:
                return original(self, batch)
            except UnsupportedBatch:
                raised.append(True)
                raise

        monkeypatch.setattr(ProbabilisticThreshold, "decide_batch", spy)
        out = threshold_query_batch(
            32, 16, 4, runs=4, seed=2,
            algorithm="prob-threshold", collision_model="2+",
        )
        assert raised == [True]
        assert not out.exact
        assert out.decisions.shape == (4,)

    def test_scalar_only_algorithm_supported(self):
        out = threshold_query_batch(32, 10, 4, runs=3, seed=1, algorithm="abns")
        assert out.decisions.all()

    def test_negative_runs_rejected(self):
        with pytest.raises(ValueError, match="runs"):
            threshold_query_batch(8, 2, 1, runs=-1)

    def test_vectorizable_property(self):
        assert FaultPlan.none().vectorizable
        plan = FaultPlan([VerdictFlip(p_drop=0.2, only_single=True)], seed=0)
        assert not plan.vectorizable


def _miss_probability(size: int) -> float:
    # Never actually misses: the hook's mere presence must force the
    # scalar path (the kernel cannot replay its model-stream draws),
    # while the results stay exact and comparable.
    return 0.0


class TestEngineFallback:
    """Detection-failure hooks force every cell onto the scalar path."""

    def test_detection_hook_counts_as_fallback(self, _pristine_registry):
        registry = _pristine_registry
        registry.enable()
        engine = SweepEngine(N, T, runs=RUNS, seed=SEED, vectorize=True)
        spec = ModelSpec(
            kind="1+", max_queries=80 * N,
            detection_failure=_miss_probability,
        )
        engine.query_curve("2tBins", [6, 24], algorithm_factory("2tbins"), spec)
        snapshot = registry.snapshot()
        assert snapshot.counter("sweep.vectorized_shards") == 0
        assert snapshot.counter("sweep.vectorized_fallback") > 0

    def test_results_identical_despite_fallback(self):
        spec = ModelSpec(
            kind="1+", max_queries=80 * N,
            detection_failure=_miss_probability,
        )

        def curve(vectorize):
            engine = SweepEngine(
                N, T, runs=RUNS, seed=SEED, vectorize=vectorize
            )
            return engine.query_curve(
                "2tBins", [6, 24], algorithm_factory("2tbins"), spec
            )

        assert curve(True).ys == curve(False).ys


class TestKernelEdgeCases:
    def _batch(self, *, n=16, x=5, threshold=4, runs=3, spec=None):
        streams, _ = _memoized_streams(salt=3)
        return QueryBatch(
            n=n, x=x, threshold=threshold, run_lo=0, run_hi=runs,
            model=spec if spec is not None else ModelSpec(kind="1+"),
            streams=streams,
        )

    def test_threshold_zero_is_free(self):
        out = run_lockstep(self._batch(threshold=0), lambda r: 8)
        assert out.decisions.all()
        assert (out.queries == 0).all()

    def test_population_smaller_than_threshold(self):
        out = run_lockstep(self._batch(n=3, x=2, threshold=5), lambda r: 8)
        assert not out.decisions.any()
        assert (out.queries == 0).all()

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            run_lockstep(self._batch(threshold=-1), lambda r: 8)

    def test_budget_exhaustion_matches_scalar_error(self):
        spec = ModelSpec(kind="1+", max_queries=2)
        with pytest.raises(QueryBudgetExceeded, match="budget of 2"):
            run_lockstep(self._batch(spec=spec), lambda r: 8)

    def test_detection_hook_unsupported(self):
        spec = ModelSpec(kind="1+", detection_failure=_miss_probability)
        with pytest.raises(UnsupportedBatch):
            run_lockstep(self._batch(spec=spec), lambda r: 8)

    def test_non_random_partitioning_unsupported(self):
        with pytest.raises(UnsupportedBatch):
            run_lockstep(
                self._batch(), lambda r: 8,
                partition_strategy="deterministic",
            )

    def test_batch_protocol_membership(self):
        assert isinstance(TwoTBins(), BatchThresholdDecider)
        assert isinstance(make_algorithm("exponential"), BatchThresholdDecider)
        assert not isinstance(make_algorithm("abns"), BatchThresholdDecider)
