"""Tests for the generalised k+ channel model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TwoTBins
from repro.group_testing.model import KPlusModel, ObservationKind, OnePlusModel
from repro.group_testing.population import Population


@pytest.fixture
def pop():
    return Population(size=10, positives=frozenset({1, 3, 5, 7}))


class TestSemantics:
    def test_rejects_bad_k(self, pop, rng):
        with pytest.raises(ValueError):
            KPlusModel(pop, rng, k=0)

    def test_silent_bin(self, pop, rng):
        model = KPlusModel(pop, rng, k=3)
        assert model.query([0, 2, 4]).silent

    def test_exact_count_below_k(self, pop, rng):
        model = KPlusModel(pop, rng, k=3)
        obs = model.query([1, 3, 0])  # 2 positives < k
        assert obs.kind is ObservationKind.ACTIVITY
        assert obs.min_positives == 2

    def test_saturates_at_k(self, pop, rng):
        model = KPlusModel(pop, rng, k=3)
        obs = model.query([1, 3, 5, 7])  # 4 positives >= k
        assert obs.min_positives == 3

    def test_k_equals_one_matches_one_plus(self, pop):
        k1 = KPlusModel(pop, np.random.default_rng(0), k=1)
        one = OnePlusModel(pop, np.random.default_rng(0))
        for members in ([0], [1], [1, 3], list(range(10))):
            a = k1.query(members)
            b = one.query(members)
            assert a.kind == b.kind
            assert a.min_positives == b.min_positives

    def test_never_reveals_identities(self, pop, rng):
        model = KPlusModel(pop, rng, k=100)
        assert model.query([1, 3]).captured_node is None

    def test_property_k_exposed(self, pop, rng):
        assert KPlusModel(pop, rng, k=7).k == 7


class TestAlgorithmsOnKPlus:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=80),
        k=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=3000),
        data=st.data(),
    )
    def test_two_t_bins_always_correct(self, n, k, seed, data):
        x = data.draw(st.integers(min_value=0, max_value=n))
        t = data.draw(st.integers(min_value=0, max_value=n))
        pop = Population.from_count(n, x, np.random.default_rng(seed))
        model = KPlusModel(pop, np.random.default_rng(seed + 1), k=k)
        result = TwoTBins().decide(model, t, np.random.default_rng(seed + 2))
        assert result.decision == pop.truth(t)

    def test_stronger_channels_cost_no_more(self):
        """Mean cost is monotone non-increasing in k (richer evidence)."""
        n, t, x = 128, 16, 64

        def mean_cost(k):
            costs = []
            for s in range(60):
                pop = Population.from_count(n, x, np.random.default_rng(s))
                model = KPlusModel(pop, np.random.default_rng(s + 1), k=k)
                costs.append(
                    TwoTBins().decide(
                        model, t, np.random.default_rng(s + 2)
                    ).queries
                )
            return np.mean(costs)

        costs = [mean_cost(k) for k in (1, 2, 4, 16)]
        for a, b in zip(costs, costs[1:]):
            assert b <= a + 0.5

    def test_diminishing_returns_past_t(self):
        """Evidence saturates: k = t and k = infinity behave alike (a
        single bin can contribute at most t useful evidence)."""
        n, t, x = 128, 16, 64

        def mean_cost(k):
            costs = []
            for s in range(60):
                pop = Population.from_count(n, x, np.random.default_rng(s))
                model = KPlusModel(pop, np.random.default_rng(s + 1), k=k)
                costs.append(
                    TwoTBins().decide(
                        model, t, np.random.default_rng(s + 2)
                    ).queries
                )
            return np.mean(costs)

        assert mean_cost(t) == pytest.approx(mean_cost(10_000), abs=0.5)
