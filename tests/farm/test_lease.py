"""Lease files, heartbeat touches, and worker registration."""

from __future__ import annotations

import time

from repro.farm import lease as leasemod
from repro.farm.lease import Lease
from repro.farm.spool import Spool


def _lease(**kwargs):
    kwargs.setdefault("key", "k" * 64)
    kwargs.setdefault("worker", "w1")
    kwargs.setdefault("pid", 1234)
    kwargs.setdefault("attempt", 0)
    return Lease(**kwargs)


class TestLeaseFiles:
    def test_grant_read_roundtrip(self, tmp_path):
        path = tmp_path / "x.lease"
        granted = _lease(attempt=2)
        leasemod.grant_lease(path, granted)
        assert leasemod.read_lease(path) == granted

    def test_missing_lease_reads_none(self, tmp_path):
        assert leasemod.read_lease(tmp_path / "gone.lease") is None

    def test_damaged_lease_reads_none(self, tmp_path):
        path = tmp_path / "x.lease"
        path.write_text("{not json")
        assert leasemod.read_lease(path) is None
        path.write_text('{"key": "k"}')  # missing fields
        assert leasemod.read_lease(path) is None

    def test_regrant_replaces(self, tmp_path):
        path = tmp_path / "x.lease"
        leasemod.grant_lease(path, _lease(worker="w1", attempt=0))
        leasemod.grant_lease(path, _lease(worker="w2", attempt=1))
        parsed = leasemod.read_lease(path)
        assert (parsed.worker, parsed.attempt) == ("w2", 1)


class TestHeartbeat:
    def test_touch_bumps_mtime(self, tmp_path):
        path = tmp_path / "hb"
        path.touch()
        now = time.time()
        assert leasemod.age_seconds(path, now + 100.0) > 99.0
        assert leasemod.touch(path)
        assert leasemod.age_seconds(path, time.time()) < 5.0

    def test_touch_never_creates(self, tmp_path):
        path = tmp_path / "reclaimed"
        assert not leasemod.touch(path)
        assert not path.exists()

    def test_age_of_missing_is_none(self, tmp_path):
        assert leasemod.age_seconds(tmp_path / "gone", time.time()) is None


class TestWorkerRegistration:
    def test_register_list_deregister(self, tmp_path):
        spool = Spool(tmp_path / "s")
        spool.write_manifest("figX", "k" * 64)
        leasemod.register_worker(spool, "w1", 111)
        leasemod.register_worker(spool, "w2", 222)
        ages = leasemod.registered_workers(spool, time.time())
        assert sorted(ages) == ["w1", "w2"]
        assert all(age < 30.0 for age in ages.values())
        assert leasemod.worker_pid(spool, "w1") == 111
        assert leasemod.worker_pid(spool, "w2") == 222
        leasemod.deregister_worker(spool, "w1")
        assert sorted(leasemod.registered_workers(spool, time.time())) == ["w2"]
        leasemod.deregister_worker(spool, "w1")  # idempotent

    def test_unknown_worker_pid_is_none(self, tmp_path):
        spool = Spool(tmp_path / "s")
        assert leasemod.worker_pid(spool, "ghost") is None

    def test_no_workers_dir_is_empty(self, tmp_path):
        spool = Spool(tmp_path / "s")
        assert leasemod.registered_workers(spool, time.time()) == {}
