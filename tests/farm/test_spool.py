"""Spool layout, shard descriptors, and the content-addressed store."""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.experiments.atomicio import quarantine_file
from repro.farm.spool import ShardStore, Spool, StoreEntry, shard_key


@dataclass(frozen=True)
class _Task:
    label: str
    x: int
    run_lo: int
    run_hi: int


def _double(task):
    return [2.0 * task.x] * (task.run_hi - task.run_lo)


def _entry(key="k" * 64, **kwargs):
    kwargs.setdefault("label", "algo")
    kwargs.setdefault("x", 4)
    kwargs.setdefault("lo", 0)
    kwargs.setdefault("hi", 3)
    kwargs.setdefault("worker", "w1")
    kwargs.setdefault("attempt", 0)
    if "costs" not in kwargs and "error_type" not in kwargs:
        kwargs["costs"] = (1.0, 2.0, 3.0)
    return StoreEntry(key=key, **kwargs)


class TestShardKey:
    def test_deterministic(self):
        assert shard_key("r", "a", 1, 0, 4) == shard_key("r", "a", 1, 0, 4)

    @pytest.mark.parametrize(
        "other",
        [
            ("r2", "a", 1, 0, 4),  # different run key
            ("r", "b", 1, 0, 4),  # different label
            ("r", "a", 2, 0, 4),  # different x
            ("r", "a", 1, 1, 4),  # different lo
            ("r", "a", 1, 0, 5),  # different hi
        ],
    )
    def test_distinct_per_coordinate(self, other):
        assert shard_key("r", "a", 1, 0, 4) != shard_key(*other)


class TestStoreEntry:
    def test_payload_roundtrip(self):
        entry = _entry(snapshot={"counters": {"a": 1}})
        assert StoreEntry.from_payload(entry.to_payload()) == entry

    def test_error_entry_roundtrip(self):
        entry = _entry(error_type="ValueError", remote_traceback="boom")
        assert StoreEntry.from_payload(entry.to_payload()) == entry

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("key"),  # missing field
            lambda p: p.__setitem__("x", "not-an-int"),
            lambda p: p.__setitem__("costs", [1.0]),  # count/range mismatch
            lambda p: (p.__setitem__("costs", None),
                       p.__setitem__("error_type", None)),
        ],
    )
    def test_malformed_payload_rejected(self, mutate):
        payload = _entry().to_payload()
        mutate(payload)
        with pytest.raises(ValueError):
            StoreEntry.from_payload(payload)


class TestShardStore:
    def test_store_load_roundtrip(self, tmp_path):
        store = ShardStore(tmp_path)
        entry = _entry()
        store.store(entry)
        assert store.load(entry.key) == entry
        assert store.entry_count() == 1
        assert store.quarantine_count() == 0

    def test_missing_is_plain_miss(self, tmp_path):
        store = ShardStore(tmp_path)
        assert store.load("f" * 64) is None
        assert store.corrupt == 0

    def test_corrupt_entry_quarantined(self, tmp_path):
        store = ShardStore(tmp_path)
        entry = _entry()
        path = store.store(entry)
        data = json.loads(path.read_text())
        data["entry"]["costs"] = [9.0, 9.0, 9.0]  # tamper, keep checksum
        path.write_text(json.dumps(data))
        assert store.load(entry.key) is None
        assert store.corrupt == 1
        assert not path.exists()
        assert store.quarantine_count() == 1

    def test_repeated_corruption_never_clobbers(self, tmp_path):
        """A recomputed replacement that is also corrupt quarantines
        again under a fresh name (the satellite-4 contract)."""
        store = ShardStore(tmp_path)
        entry = _entry()
        for generation in range(3):
            path = store.store(entry)
            path.write_text("garbage generation %d" % generation)
            assert store.load(entry.key) is None
        assert store.corrupt == 3
        assert store.quarantine_count() == 3
        names = sorted(p.name for p in store.quarantine_dir.iterdir())
        assert names == [
            f"{entry.key}.json", f"{entry.key}.json.1", f"{entry.key}.json.2",
        ]
        # Every generation's bytes survived for post-mortem.
        contents = {p.read_text() for p in store.quarantine_dir.iterdir()}
        assert contents == {
            "garbage generation 0",
            "garbage generation 1",
            "garbage generation 2",
        }

    def test_truncated_entry_quarantined(self, tmp_path):
        store = ShardStore(tmp_path)
        entry = _entry()
        path = store.store(entry)
        path.write_text(path.read_text()[:20])
        assert store.load(entry.key) is None
        assert store.quarantine_count() == 1


class TestQuarantineFile:
    def test_unique_names(self, tmp_path):
        qdir = tmp_path / "q"
        dests = []
        for i in range(3):
            src = tmp_path / "bad.json"
            src.write_text(f"copy {i}")
            dests.append(quarantine_file(src, qdir))
            assert not src.exists()
        assert [d.name for d in dests] == [
            "bad.json", "bad.json.1", "bad.json.2",
        ]
        assert [d.read_text() for d in dests] == ["copy 0", "copy 1", "copy 2"]

    def test_missing_source_returns_none(self, tmp_path):
        assert quarantine_file(tmp_path / "gone", tmp_path / "q") is None


class TestSpool:
    def test_manifest_roundtrip(self, tmp_path):
        spool = Spool(tmp_path / "s")
        spool.write_manifest("figX", "k" * 64)
        assert spool.manifest_matches("figX", "k" * 64)
        assert not spool.manifest_matches("figY", "k" * 64)
        assert not spool.manifest_matches("figX", "j" * 64)

    def test_corrupt_manifest_never_matches(self, tmp_path):
        spool = Spool(tmp_path / "s")
        spool.write_manifest("figX", "k" * 64)
        spool.manifest_path.write_text(
            spool.manifest_path.read_text()[:-5]
        )
        assert not spool.manifest_matches("figX", "k" * 64)

    def test_missing_manifest_never_matches(self, tmp_path):
        assert not Spool(tmp_path / "s").manifest_matches("figX", "k" * 64)

    def test_shard_descriptor_roundtrip(self, tmp_path):
        spool = Spool(tmp_path / "s")
        spool.write_manifest("figX", "k" * 64)
        task = _Task("algo", 3, 0, 5)
        key = shard_key("k" * 64, task.label, task.x, 0, 5)
        spool.write_shard(key, _double, task)
        loaded = spool.read_shard(key)
        assert loaded is not None
        fn, loaded_task = loaded
        assert loaded_task == task
        assert fn(loaded_task) == [6.0] * 5

    def test_damaged_descriptor_returns_none(self, tmp_path):
        spool = Spool(tmp_path / "s")
        spool.write_manifest("figX", "k" * 64)
        key = shard_key("k" * 64, "a", 1, 0, 2)
        spool.write_shard(key, _double, _Task("a", 1, 0, 2))
        blob = spool.shard_path(key).read_bytes()
        spool.shard_path(key).write_bytes(blob[:-3])
        assert spool.read_shard(key) is None

    def test_missing_descriptor_returns_none(self, tmp_path):
        spool = Spool(tmp_path / "s")
        assert spool.read_shard("e" * 64) is None

    def test_discard_removes_tree(self, tmp_path):
        spool = Spool(tmp_path / "s")
        spool.write_manifest("figX", "k" * 64)
        spool.discard()
        assert not spool.root.exists()
        spool.discard()  # idempotent
