"""Coordinator loop: grants, collection, reclaim, quarantine, resume.

Workers run as in-process daemon threads here (the worker loop is plain
Python), which keeps these tests fast and deterministic; whole-process
farms with SIGKILLed workers and coordinators live in
``tests/integration/chaos/test_farm_chaos.py``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import pytest

from repro.api import algorithm_factory
from repro.experiments import resilience
from repro.experiments.common import SweepEngine
from repro.experiments.resilience import (
    RunContext,
    ShardExecutionError,
    ShardJournal,
    ShardOutcome,
    SupervisionPolicy,
)
from repro.farm import FarmCoordinator, FarmPolicy, FarmWorker
from repro.farm import lease as leasemod
from repro.group_testing.model import ModelSpec
from repro.obs import get_registry


@dataclass(frozen=True)
class _Task:
    label: str
    x: int
    run_lo: int
    run_hi: int


def _echo(task):
    return ShardOutcome(costs=[float(task.x)] * (task.run_hi - task.run_lo))


def _boom(task):
    raise ValueError("boom inside farm worker")


def _coordinator(tmp_path, **kwargs):
    kwargs.setdefault("exp_id", "figX")
    kwargs.setdefault("run_key", "k" * 64)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("spawn_workers", False)
    kwargs.setdefault(
        "policy",
        FarmPolicy(poll_interval=0.02, heartbeat_grace=2.0, drain_grace=2.0),
    )
    kwargs.setdefault(
        "supervision", SupervisionPolicy(max_retries=2, stall_timeout=30.0)
    )
    return FarmCoordinator(tmp_path / "spool", **kwargs)


def _start_worker(spool_root, worker_id="t1"):
    """Run a farm worker as a daemon thread; returns its join handle."""
    worker = FarmWorker(
        spool_root,
        worker_id=worker_id,
        heartbeat_interval=0.05,
        poll_interval=0.02,
        coordinator_grace=0,
    )
    thread = threading.Thread(target=worker.run, daemon=True)
    thread.start()
    return thread


def _execute(farm, fn, tasks):
    completed, quarantined = {}, {}
    farm.execute(
        list(enumerate(tasks)),
        fn=fn,
        on_complete=lambda i, t, o: completed.__setitem__(i, o.costs),
        on_quarantine=lambda i, t, r: quarantined.__setitem__(i, r),
    )
    return completed, quarantined


@pytest.fixture
def metrics():
    """Arm the process registry so ``farm.*`` counters actually count."""
    reg = get_registry()
    reg.reset()
    reg.enable()
    yield reg
    reg.disable()
    reg.reset()


class TestCoordinator:
    def test_batch_completes_via_worker(self, tmp_path, metrics):
        tasks = [_Task("a", x, 0, 2) for x in range(5)]
        with _coordinator(tmp_path) as farm:
            _start_worker(farm.spool.root)
            completed, quarantined = _execute(farm, _echo, tasks)
        assert quarantined == {}
        assert completed == {i: [float(i)] * 2 for i in range(5)}
        snap = metrics.snapshot()
        granted = snap.counter("farm.leases_granted")
        assert granted >= len(tasks)
        assert granted == (
            snap.counter("farm.leases_completed")
            + snap.counter("farm.leases_expired")
            + snap.counter("farm.leases_quarantined")
        )
        assert snap.counter("farm.shards_spooled") == len(tasks)

    def test_execute_before_start_raises(self, tmp_path):
        farm = _coordinator(tmp_path)
        with pytest.raises(RuntimeError):
            farm.execute([], fn=_echo, on_complete=lambda *a: None,
                         on_quarantine=lambda *a: None)

    def test_resume_completes_from_store_without_workers(
        self, tmp_path, metrics
    ):
        tasks = [_Task("a", x, 0, 3) for x in range(4)]
        with _coordinator(tmp_path) as farm:
            _start_worker(farm.spool.root)
            _execute(farm, _echo, tasks)
        # A "restarted" coordinator: same spool, no workers anywhere.
        metrics.reset()
        with _coordinator(tmp_path, resume=True) as farm2:
            assert farm2.resumed_shards == len(tasks)
            completed, quarantined = _execute(farm2, _echo, tasks)
        assert quarantined == {}
        assert completed == {i: [float(i)] * 3 for i in range(4)}
        snap = metrics.snapshot()
        assert snap.counter("farm.store_hits") == len(tasks)
        assert snap.counter("farm.leases_granted") == 0

    def test_mismatched_spool_is_discarded(self, tmp_path):
        tasks = [_Task("a", 1, 0, 2)]
        with _coordinator(tmp_path) as farm:
            _start_worker(farm.spool.root)
            _execute(farm, _echo, tasks)
        # Same directory, different computation: resume must not leak
        # the old store into the new run.
        farm2 = _coordinator(tmp_path, run_key="j" * 64, resume=True)
        farm2.start()
        try:
            assert farm2.resumed_shards == 0
            assert farm2.spool.store.entry_count() == 0
        finally:
            farm2.shutdown()

    def test_in_shard_error_raises_with_remote_traceback(self, tmp_path):
        tasks = [_Task("algo", 7, 3, 9)]
        with _coordinator(tmp_path) as farm:
            _start_worker(farm.spool.root)
            with pytest.raises(ShardExecutionError) as ei:
                _execute(farm, _boom, tasks)
        err = ei.value
        assert (err.label, err.x, err.run_lo, err.run_hi) == ("algo", 7, 3, 9)
        assert err.error_type == "ValueError"
        assert "boom inside farm worker" in str(err)

    def test_unserved_leases_expire_then_quarantine(self, tmp_path, metrics):
        """A registered worker that never serves its leases exhausts the
        retry budget and the shard is quarantined -- with every grant
        accounted for."""
        farm = _coordinator(
            tmp_path,
            policy=FarmPolicy(
                poll_interval=0.02, heartbeat_grace=0.3, drain_grace=0.5
            ),
            supervision=SupervisionPolicy(max_retries=1, stall_timeout=30.0),
        )
        farm.start()
        stop = threading.Event()

        def keep_alive():
            reg = leasemod.register_worker(farm.spool, "zombie", 999)
            while not stop.wait(0.05):
                leasemod.touch(reg)

        alive = threading.Thread(target=keep_alive, daemon=True)
        alive.start()
        try:
            completed, quarantined = _execute(
                farm, _echo, [_Task("a", 1, 0, 2)]
            )
        finally:
            stop.set()
            alive.join(timeout=5)
            farm.shutdown()
        assert completed == {}
        assert list(quarantined) == [0]
        assert "gave up after 2 lease(s)" in quarantined[0]
        snap = metrics.snapshot()
        assert snap.counter("farm.leases_granted") == 2
        assert snap.counter("farm.leases_expired") == 1
        assert snap.counter("farm.leases_quarantined") == 1
        assert snap.counter("farm.leases_completed") == 0

    def test_dead_worker_is_detected_and_work_re_leased(
        self, tmp_path, metrics
    ):
        """A worker whose heartbeat stops is declared dead; its lease is
        reclaimed and served by a surviving worker."""
        farm = _coordinator(
            tmp_path,
            policy=FarmPolicy(
                poll_interval=0.02, heartbeat_grace=0.3, drain_grace=2.0
            ),
        )
        farm.start()
        try:
            # "ghost" sorts before "t1", so it gets the first grant --
            # then never heartbeats again.
            leasemod.register_worker(farm.spool, "ghost", 999)
            _start_worker(farm.spool.root)
            completed, quarantined = _execute(
                farm, _echo, [_Task("a", 3, 0, 2)]
            )
        finally:
            farm.shutdown()
        assert quarantined == {}
        assert completed == {0: [3.0, 3.0]}
        snap = metrics.snapshot()
        assert snap.counter("farm.worker_deaths") >= 1
        assert snap.counter("farm.leases_granted") == (
            snap.counter("farm.leases_completed")
            + snap.counter("farm.leases_expired")
            + snap.counter("farm.leases_quarantined")
        )


class TestEngineFarmIntegration:
    def test_farm_curve_matches_serial(self, tmp_path):
        """The sweep engine routed through a farm produces exactly the
        serial backend's numbers, and journals every shard."""
        serial = SweepEngine(48, 6, runs=6, seed=31, jobs=1)
        baseline = serial.query_curve(
            "2tBins", [0, 3, 6], algorithm_factory("2tbins"),
            ModelSpec(kind="1+", max_queries=48 * 50),
        )
        journal = ShardJournal(
            tmp_path / "j", exp_id="figX", key="k" * 64, fsync=False
        )
        farm = _coordinator(tmp_path)
        ctx = RunContext(journal=journal, farm=farm)
        with farm, resilience.activate(ctx):
            _start_worker(farm.spool.root)
            engine = SweepEngine(48, 6, runs=6, seed=31, jobs=2)
            curve = engine.query_curve(
                "2tBins", [0, 3, 6], algorithm_factory("2tbins"),
                ModelSpec(kind="1+", max_queries=48 * 50),
            )
        assert curve == baseline
        assert journal.appended_records > 0
        assert ctx.degraded == []
