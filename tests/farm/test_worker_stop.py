"""Worker shutdown latency: the drain loop must not oversleep a stop.

Regression suite for the PR-9 bugfix: the idle branch of
:meth:`repro.farm.worker.FarmWorker.run` used to ``time.sleep`` a full
``poll_interval`` even when the STOP marker already existed, and the
sleep was uninterruptible.  Shutdown latency is now bounded by delivery
(:meth:`FarmWorker.request_stop`, wired to SIGTERM/SIGINT in ``main``)
and the exit conditions are re-checked before going idle.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.farm.spool import Spool
from repro.farm.worker import FarmWorker

#: An idle period long enough that any regression to interval-bounded
#: shutdown fails the sub-second latency assertions below loudly.
LONG_POLL = 30.0


def _make_spool(root: Path) -> Spool:
    spool = Spool(root)
    spool.write_manifest("figX", "k" * 64)
    return spool


class TestEventBoundedStop:
    def test_request_stop_wakes_an_idle_worker_sub_second(self, tmp_path):
        worker = FarmWorker(
            tmp_path / "spool",
            worker_id="w-idle",
            poll_interval=LONG_POLL,
            coordinator_grace=0,
        )
        _make_spool(tmp_path / "spool")
        codes = []
        thread = threading.Thread(
            target=lambda: codes.append(worker.run()), daemon=True
        )
        thread.start()
        # Let the worker register and settle into its idle wait.
        deadline = time.monotonic() + 5.0
        reg = worker.spool.workers_dir / "w-idle.reg"
        while not reg.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert reg.exists(), "worker never registered"
        time.sleep(0.1)  # ensure it is inside the idle wait, not polling
        started = time.monotonic()
        worker.request_stop()
        thread.join(timeout=2.0)
        elapsed = time.monotonic() - started
        assert not thread.is_alive(), "worker did not stop"
        assert elapsed < 1.0, f"stop took {elapsed:.2f}s (interval-bounded?)"
        assert codes == [0]

    def test_stop_marker_is_rechecked_before_sleeping(self, tmp_path):
        """A STOP that lands after the lease poll must not cost a nap.

        The stub lease poll drops the STOP marker itself, reproducing
        the race where shutdown arrives between the loop-top check and
        the idle wait; the re-check must exit without sleeping.
        """
        spool = _make_spool(tmp_path / "spool")

        class _StopDuringPoll(FarmWorker):
            def _my_leases(self):
                self.spool.stop_path.touch()
                return []

        worker = _StopDuringPoll(
            tmp_path / "spool",
            worker_id="w-race",
            poll_interval=LONG_POLL,
            coordinator_grace=0,
        )
        started = time.monotonic()
        assert worker.run() == 0
        elapsed = time.monotonic() - started
        assert elapsed < 1.0, f"exit took {elapsed:.2f}s (slept the interval)"
        assert spool.stop_path.exists()

    def test_stop_requested_reported_as_exit_reason(self, tmp_path):
        worker = FarmWorker(
            tmp_path / "spool", poll_interval=0.01, coordinator_grace=0
        )
        _make_spool(tmp_path / "spool")
        worker.request_stop()
        assert worker._should_exit(time.time()) == "stop requested"


class TestSignalBoundedStop:
    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_stops_a_sleeping_worker_sub_second(
        self, tmp_path, signum
    ):
        spool = _make_spool(tmp_path / "spool")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[2] / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.farm.worker",
                str(spool.root),
                "--worker-id",
                "w-sig",
                "--poll-interval",
                str(LONG_POLL),
                "--coordinator-grace",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        try:
            reg = spool.workers_dir / "w-sig.reg"
            deadline = time.monotonic() + 15.0
            while not reg.exists() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert reg.exists(), "worker subprocess never registered"
            time.sleep(0.2)  # let it settle into the idle wait
            started = time.monotonic()
            proc.send_signal(signum)
            rc = proc.wait(timeout=5.0)
            elapsed = time.monotonic() - started
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert rc == 0
        assert elapsed < 2.0, f"signal stop took {elapsed:.2f}s"
        # Clean exit deregisters the worker.
        assert not reg.exists()
