"""Tests for the temporal deployment trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic.bimodal import BimodalSpec
from repro.workloads.temporal import DeploymentTrace

SPEC = BimodalSpec(n=64, mu1=2.0, sigma1=1.5, mu2=50.0, sigma2=5.0)


def make(**kwargs):
    defaults = dict(
        horizon_s=3600.0,
        query_interval_s=30.0,
        event_rate_per_hour=4.0,
        event_duration_s=120.0,
    )
    defaults.update(kwargs)
    return DeploymentTrace(SPEC, **defaults)


def test_sample_count_matches_horizon():
    trace = make().generate(np.random.default_rng(0))
    assert len(trace) == 3600 // 30


def test_samples_are_time_ordered():
    trace = make().generate(np.random.default_rng(1))
    times = [s.time_s for s in trace]
    assert times == sorted(times)
    assert all(0 <= s.x <= 64 for s in trace)


def test_activity_samples_draw_from_activity_mode():
    trace = make(event_rate_per_hour=20.0).generate(np.random.default_rng(2))
    active = [s.x for s in trace if s.activity]
    quiet = [s.x for s in trace if not s.activity]
    assert active and quiet
    assert np.mean(active) > 30
    assert np.mean(quiet) < 10


def test_events_create_correlated_runs():
    """Consecutive samples inside one event are all labelled active --
    the temporal coherence the memoryless sampler lacks."""
    trace = make(
        event_rate_per_hour=2.0,
        event_duration_s=300.0,
        query_interval_s=30.0,
    ).generate(np.random.default_rng(3))
    labels = [s.activity for s in trace]
    # Find at least one run of >= 3 consecutive active samples.
    run = best = 0
    for flag in labels:
        run = run + 1 if flag else 0
        best = max(best, run)
    assert best >= 3


def test_zero_rate_means_all_quiet():
    trace = make(event_rate_per_hour=0.0).generate(np.random.default_rng(4))
    assert all(not s.activity for s in trace)


def test_duty_cycle_scales_with_rate():
    def duty(rate, seed):
        trace = make(
            event_rate_per_hour=rate, horizon_s=7200.0
        ).generate(np.random.default_rng(seed))
        return np.mean([s.activity for s in trace])

    low = np.mean([duty(1.0, s) for s in range(5)])
    high = np.mean([duty(10.0, s) for s in range(5)])
    assert high > low


def test_reproducible_for_fixed_seed():
    a = make().generate(np.random.default_rng(9))
    b = make().generate(np.random.default_rng(9))
    assert [(s.time_s, s.x, s.activity) for s in a] == [
        (s.time_s, s.x, s.activity) for s in b
    ]


def test_validation():
    with pytest.raises(ValueError):
        make(horizon_s=0)
    with pytest.raises(ValueError):
        make(query_interval_s=0)
    with pytest.raises(ValueError):
        make(event_rate_per_hour=-1)
    with pytest.raises(ValueError):
        make(event_duration_s=0)


def test_stream_classification_over_a_trace():
    """End to end: the Sec VI scheme tracks a temporal trace's labels."""
    from repro.core.probabilistic import ProbabilisticThreshold
    from repro.group_testing.model import OnePlusModel

    spec = BimodalSpec(n=64, mu1=2.0, sigma1=1.5, mu2=50.0, sigma2=5.0)
    scheme = ProbabilisticThreshold(spec, delta=0.05)
    trace = DeploymentTrace(
        spec,
        horizon_s=3 * 3600.0,
        query_interval_s=60.0,
        event_rate_per_hour=3.0,
        event_duration_s=240.0,
    ).generate(np.random.default_rng(7))
    rng = np.random.default_rng(8)
    hits = sum(
        scheme.decide(
            OnePlusModel(s.population, rng), 32, rng
        ).decision
        == s.activity
        for s in trace
    )
    assert hits / len(trace) >= 0.95
