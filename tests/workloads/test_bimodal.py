"""Tests for the bimodal workload sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic.bimodal import BimodalSpec
from repro.workloads.bimodal import BimodalWorkload


SPEC = BimodalSpec.symmetric(n=128, d=32, sigma=4)


def test_draws_in_range(rng):
    wl = BimodalWorkload(SPEC)
    for _ in range(200):
        d = wl.draw(rng)
        assert 0 <= d.x <= 128


def test_labels_match_modes(rng):
    """With tight sigma, draws labelled 'activity' cluster near mu2."""
    wl = BimodalWorkload(SPEC)
    activity_xs, quiet_xs = [], []
    for _ in range(500):
        d = wl.draw(rng)
        (activity_xs if d.activity else quiet_xs).append(d.x)
    assert np.mean(activity_xs) == pytest.approx(96, abs=2)
    assert np.mean(quiet_xs) == pytest.approx(32, abs=2)


def test_mixture_weight(rng):
    spec = BimodalSpec.symmetric(n=128, d=32, sigma=4, weight1=0.9)
    wl = BimodalWorkload(spec)
    quiet = sum(not wl.draw(rng).activity for _ in range(1000))
    assert quiet / 1000 == pytest.approx(0.9, abs=0.04)


def test_draw_population_consistent(rng):
    wl = BimodalWorkload(SPEC)
    pop, d = wl.draw_population(rng)
    assert pop.x == d.x
    assert pop.size == 128


def test_sample_counts_vectorised(rng):
    wl = BimodalWorkload(SPEC)
    counts = wl.sample_counts(5000, rng)
    assert counts.shape == (5000,)
    assert counts.min() >= 0 and counts.max() <= 128
    # Two modes -> mean near n/2 for symmetric equal weights.
    assert counts.mean() == pytest.approx(64, abs=2)


def test_sample_counts_zero_runs(rng):
    assert BimodalWorkload(SPEC).sample_counts(0, rng).shape == (0,)


def test_sample_counts_rejects_negative(rng):
    with pytest.raises(ValueError):
        BimodalWorkload(SPEC).sample_counts(-1, rng)


def test_zero_sigma_is_deterministic_given_mode(rng):
    spec = BimodalSpec(n=100, mu1=10, sigma1=0, mu2=90, sigma2=0)
    wl = BimodalWorkload(spec)
    for _ in range(50):
        d = wl.draw(rng)
        assert d.x == (90 if d.activity else 10)
