"""Tests for scenario generation and sweep grids."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.scenarios import IntrusionField, x_sweep


class TestXSweep:
    def test_includes_endpoints(self):
        grid = x_sweep(128)
        assert grid[0] == 0
        assert grid[-1] == 128

    def test_sorted_unique_in_range(self):
        grid = x_sweep(200)
        assert grid == sorted(set(grid))
        assert all(0 <= x <= 200 for x in grid)

    def test_dense_at_small_x(self):
        grid = x_sweep(128)
        dense_top = int(2 * np.sqrt(128))
        assert grid[: dense_top + 1] == list(range(dense_top + 1))

    def test_points_thinning(self):
        full = x_sweep(512)
        thin = x_sweep(512, points=10)
        assert len(thin) <= 10 + 2
        assert set(thin) <= set(full)

    def test_tiny_population(self):
        assert x_sweep(1) == [0, 1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            x_sweep(0)


class TestIntrusionField:
    def test_positions_in_field(self, rng):
        field = IntrusionField(50, field_size=100.0, rng=rng)
        pos = field.positions
        assert pos.shape == (50, 2)
        assert pos.min() >= 0 and pos.max() <= 100

    def test_event_with_intruder(self, rng):
        field = IntrusionField(
            200, field_size=100.0, sensing_range=25.0,
            false_positive_rate=0.0, rng=rng,
        )
        scenario = field.event(rng, intruder=True)
        assert scenario.intruder_xy is not None
        assert scenario.false_detections == frozenset()
        # Detections are exactly the nodes within the sensing disc.
        pos = field.positions
        dists = np.linalg.norm(pos - np.array(scenario.intruder_xy), axis=1)
        expected = {int(i) for i in np.flatnonzero(dists <= 25.0)}
        assert scenario.true_detections == expected
        assert scenario.population.positives == expected

    def test_event_without_intruder(self, rng):
        field = IntrusionField(
            100, false_positive_rate=0.1, rng=rng,
        )
        scenario = field.event(rng, intruder=False)
        assert scenario.intruder_xy is None
        assert scenario.true_detections == frozenset()
        assert scenario.x == len(scenario.false_detections)

    def test_false_positive_rate_respected(self):
        field = IntrusionField(
            1000, false_positive_rate=0.05, rng=np.random.default_rng(0)
        )
        rng = np.random.default_rng(1)
        rates = [
            field.event(rng, intruder=False).x / 1000 for _ in range(50)
        ]
        assert np.mean(rates) == pytest.approx(0.05, abs=0.01)

    def test_neighbourhood(self, rng):
        field = IntrusionField(100, field_size=50.0, rng=rng)
        hood = field.neighbourhood(0, radio_range=20.0)
        assert 0 not in hood
        pos = field.positions
        for i in hood:
            assert np.linalg.norm(pos[i] - pos[0]) <= 20.0

    def test_neighbourhood_validation(self, rng):
        field = IntrusionField(10, rng=rng)
        with pytest.raises(ValueError):
            field.neighbourhood(10, radio_range=5.0)
        with pytest.raises(ValueError):
            field.neighbourhood(0, radio_range=0.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            IntrusionField(0, rng=rng)
        with pytest.raises(ValueError):
            IntrusionField(5, field_size=-1, rng=rng)
        with pytest.raises(ValueError):
            IntrusionField(5, false_positive_rate=2.0, rng=rng)
