"""Tests for the serial control plane (framing + command protocol)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.motes.serial import (
    ALGORITHM_CODES,
    END,
    ESC,
    FrameDecoder,
    SerialTestbedController,
    encode_frame,
)
from repro.motes.testbed import Testbed, TestbedConfig


class TestFraming:
    @settings(max_examples=100)
    @given(payload=st.binary(min_size=1, max_size=120))
    def test_encode_decode_round_trip(self, payload):
        frames = []
        decoder = FrameDecoder(frames.append)
        decoder.feed(encode_frame(payload))
        assert frames == [payload]
        assert decoder.dropped_frames == 0

    @settings(max_examples=50)
    @given(
        payloads=st.lists(
            st.binary(min_size=1, max_size=40), min_size=1, max_size=6
        ),
        chunk=st.integers(min_value=1, max_value=7),
    )
    def test_arbitrary_fragmentation(self, payloads, chunk):
        """Byte streams may be split anywhere, including inside escapes."""
        wire = b"".join(encode_frame(p) for p in payloads)
        frames = []
        decoder = FrameDecoder(frames.append)
        for i in range(0, len(wire), chunk):
            decoder.feed(wire[i : i + chunk])
        assert frames == payloads

    def test_special_bytes_escaped(self):
        payload = bytes([END, ESC, 0x00, END])
        wire = encode_frame(payload)
        # No raw END except the terminator.
        assert wire[:-1].count(END) == 0
        frames = []
        FrameDecoder(frames.append).feed(wire)
        assert frames == [payload]

    def test_corrupt_checksum_dropped(self):
        wire = bytearray(encode_frame(b"\x01\x02\x03"))
        wire[0] ^= 0xFF  # flip a payload byte
        frames = []
        decoder = FrameDecoder(frames.append)
        decoder.feed(bytes(wire))
        assert frames == []
        assert decoder.dropped_frames == 1

    def test_noise_between_frames_ignored(self):
        good = encode_frame(b"\x42")
        frames = []
        decoder = FrameDecoder(frames.append)
        decoder.feed(b"\x13\x37" + bytes([END]) + good)
        assert frames == [b"\x42"]
        assert decoder.dropped_frames == 1  # the noise pseudo-frame

    def test_empty_frame_ignored(self):
        frames = []
        decoder = FrameDecoder(frames.append)
        decoder.feed(bytes([END, END]))
        assert frames == []

    def test_empty_payload_rejected_at_encode(self):
        with pytest.raises(ValueError, match="non-empty"):
            encode_frame(b"")


class TestController:
    def _controller(self, n=8, seed=5):
        tb = Testbed(TestbedConfig(num_participants=n, seed=seed))
        return SerialTestbedController(tb), tb

    def test_configure_over_the_wire(self):
        ctrl, tb = self._controller()
        ctrl.configure_positives([1, 4, 6])
        assert tb.positives == frozenset({1, 4, 6})

    def test_query_over_the_wire(self):
        ctrl, tb = self._controller()
        ctrl.configure_positives([0, 1, 2, 3, 4])
        ctrl.reboot()
        response = ctrl.query(3)
        assert response.decision
        assert response.queries > 0

    def test_negative_verdict(self):
        ctrl, _ = self._controller()
        ctrl.configure_positives([2])
        assert not ctrl.query(4).decision

    @pytest.mark.parametrize("code", sorted(ALGORITHM_CODES))
    def test_every_algorithm_code(self, code):
        ctrl, _ = self._controller()
        ctrl.configure_positives([0, 1, 2, 3, 4, 5])
        assert ctrl.query(2, algorithm_code=code).decision

    def test_unknown_algorithm_code_rejected(self):
        ctrl, _ = self._controller()
        with pytest.raises(ValueError, match="algorithm code"):
            ctrl.query(2, algorithm_code=99)

    def test_threshold_wire_range(self):
        ctrl, _ = self._controller()
        with pytest.raises(ValueError, match="one byte"):
            ctrl.query(300)

    def test_multi_predicate_over_the_wire(self):
        ctrl, tb = self._controller()
        ctrl.configure_positives([0, 1, 2], predicate_id=0)
        ctrl.configure_positives([5], predicate_id=1)
        assert ctrl.query(2, predicate_id=0).decision
        assert not ctrl.query(2, predicate_id=1).decision

    def test_reboot_over_the_wire_restores_radios(self):
        ctrl, tb = self._controller()
        tb._apps[0]._radio.set_short_address(0x9000)  # noqa: SLF001
        ctrl.reboot()
        assert tb._apps[0]._radio.short_address == 0  # noqa: SLF001

    def test_wire_and_python_api_agree(self):
        """A query over the serial protocol matches the direct API call
        with the same bin randomness."""
        from repro.core import TwoTBins
        from repro.sim.rng import derive_seed

        ctrl, tb = self._controller(seed=9)
        ctrl.configure_positives([0, 3, 5, 7])
        wire = ctrl.query(3)
        direct = tb.run_threshold_query(
            TwoTBins(),
            3,
            bin_rng=np.random.default_rng(
                derive_seed(tb.config.seed, "serial.bins")
            ),
        )
        assert wire.decision == direct.result.decision


class TestReliableLink:
    def _controller(self, p_byte, n=6, seed=11, retries=3):
        from repro.faults import FaultPlan, SerialByteCorruption

        tb = Testbed(TestbedConfig(num_participants=n, seed=seed))
        plan = FaultPlan((SerialByteCorruption(p_byte=p_byte),), seed=seed)
        ctrl = SerialTestbedController(
            tb, fault_plan=plan, max_retransmits=retries
        )
        return ctrl, tb

    def test_clean_wire_has_zero_overhead(self):
        tb = Testbed(TestbedConfig(num_participants=6, seed=11))
        ctrl = SerialTestbedController(tb)
        ctrl.configure_positives([0, 2, 4])
        assert ctrl.query(2).decision
        stats = ctrl.link_stats
        assert stats.command_retransmissions == 0
        assert stats.naks_received == 0
        assert stats.duplicates_suppressed == 0
        assert stats.laptop_dropped_frames == 0
        assert stats.mote_dropped_frames == 0

    def test_retransmit_recovers_corruption(self):
        """A lossy wire still delivers every verb, and the retry
        counters surface the recovery work."""
        ctrl, tb = self._controller(p_byte=0.02)
        ctrl.configure_positives([0, 1, 3])
        ctrl.reboot()
        assert ctrl.query(2).decision
        assert tb.positives == frozenset({0, 1, 3})
        stats = ctrl.link_stats
        # With ~2% byte corruption over dozens of frames, at least one
        # retransmission must have happened (deterministic given seeds).
        assert stats.command_retransmissions > 0
        assert (
            stats.mote_dropped_frames + stats.laptop_dropped_frames > 0
        )

    def test_duplicate_suppression_never_reruns_query(self):
        """A replayed QUERY command (a retransmit after a lost response)
        is served from the sequence cache, not re-executed."""
        from repro.motes.serial import CMD_QUERY, RSP_RESULT

        tb = Testbed(TestbedConfig(num_participants=4, seed=3))
        ctrl = SerialTestbedController(tb)
        ctrl.configure_positives([0, 1, 2])
        rsp = ctrl.query(2)
        init = tb.num_participants
        seq_used = (ctrl._next_seq[init] - 1) & 0xFF  # noqa: SLF001
        wire = encode_frame(bytes([seq_used, CMD_QUERY, 2, 0, 0]))
        ctrl._mote_decoders[init].feed(wire)  # noqa: SLF001
        assert ctrl.link_stats.duplicates_suppressed == 1
        cached = ctrl._responses.pop()  # noqa: SLF001
        # The cached response is byte-identical to the original result:
        # the query did not run a second time.
        assert cached[1] == RSP_RESULT
        assert bool(cached[2]) == rsp.decision
        assert cached[3] | (cached[4] << 8) == rsp.queries

    def test_budget_exhaustion_raises(self):
        ctrl, _ = self._controller(p_byte=1.0, retries=2)
        with pytest.raises(RuntimeError, match="undeliverable"):
            ctrl.configure(0, True)
        assert ctrl.link_stats.command_retransmissions == 2

    def test_nak_triggers_retransmit(self):
        """A single corrupted command elicits a NAK and a successful
        retransmission."""
        tb = Testbed(TestbedConfig(num_participants=4, seed=3))
        ctrl = SerialTestbedController(tb)
        # Corrupt the first command frame by hand: feed garbage straight
        # into the mote decoder, then drive a clean verb.
        ctrl.configure(0, True)
        decoder = ctrl._mote_decoders[0]  # noqa: SLF001
        decoder.feed(b"\x99\x98\x97" + bytes([0xC0]))
        assert ctrl.link_stats.mote_dropped_frames == 1
        # The NAK response is sitting in the laptop buffer; the next
        # verb's send loop consumes and survives it.
        ctrl.configure(0, False)
        assert tb.positives == frozenset()
