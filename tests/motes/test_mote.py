"""Tests for the generic mote and its reboot semantics."""

from __future__ import annotations

import numpy as np

from repro.motes.mote import Mote
from repro.motes.participant import ParticipantApp
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.channel import Channel
from repro.sim.kernel import Simulator


def build():
    sim = Simulator()
    channel = Channel(sim, np.random.default_rng(0))
    radio = Cc2420Radio(sim, channel, address=3)
    app = ParticipantApp(sim, radio)
    return sim, radio, app


def test_construction_boots_app():
    sim, radio, app = build()
    mote = Mote(sim, radio, app)
    assert mote.boot_count == 1
    assert radio.receive_callback is not None


def test_mote_id_is_radio_address():
    sim, radio, app = build()
    assert Mote(sim, radio, app).mote_id == 3


def test_reboot_restores_radio_defaults():
    sim, radio, app = build()
    mote = Mote(sim, radio, app)
    radio.set_short_address(0x9000)
    radio.set_auto_ack(False)
    radio.power_off()
    mote.reboot()
    assert radio.short_address == 3
    assert radio.auto_ack
    assert radio.state.value == "rx"
    assert mote.boot_count == 2


def test_mote_without_app():
    sim, radio, _ = build()
    mote = Mote(sim, radio, None)
    assert mote.app is None
    assert mote.boot_count == 0
    mote.reboot()  # must not crash
    assert mote.boot_count == 1


def test_configuration_survives_reboot():
    """The testbed configures then reboots -- per the module docstring the
    predicate setting persists."""
    sim, radio, app = build()
    mote = Mote(sim, radio, app)
    app.configure(True)
    mote.reboot()
    assert app.is_positive()
