"""Energy-accounting invariants across full testbed sessions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TwoTBins
from repro.motes.testbed import Testbed, TestbedConfig


def run(n, positives, t, seed=0):
    tb = Testbed(TestbedConfig(num_participants=n, seed=seed))
    tb.configure_positives(positives)
    result = tb.run_threshold_query(TwoTBins(), t)
    return result, tb


def test_energy_tracks_session_length():
    """A longer session (more queries) costs the initiator more energy."""
    short, _ = run(12, list(range(12)), 2, seed=1)   # resolves in ~2 polls
    long, _ = run(12, [0], 6, seed=1)                # must eliminate a lot
    assert long.result.queries > short.result.queries
    assert long.initiator_energy_uj > short.initiator_energy_uj


def test_energy_rate_is_physically_plausible():
    """The initiator is RX/TX the whole session at ~18-19 mA, 3 V: the
    mean power must sit between the idle floor and the TX ceiling."""
    result, _ = run(12, [0, 3, 7], 3, seed=2)
    mean_power_mw = (
        result.initiator_energy_uj / result.elapsed_us * 1000.0
    )
    assert 50.0 <= mean_power_mw <= 60.0  # 18.8 mA x 3 V = 56.4 mW


def test_participants_spend_energy_too():
    _, tb = run(6, [0, 1, 2], 2, seed=3)
    for mote_id in range(6):
        app_radio = tb._apps[mote_id]._radio  # noqa: SLF001
        app_radio.energy.finalize(tb.sim.now)
        assert app_radio.energy.total_uj > 0


def test_positive_participants_spend_more_tx_than_negatives():
    """Positive motes transmit HACKs; negative motes only listen."""
    _, tb = run(8, [0, 1], 2, seed=4)
    pos_radio = tb._apps[0]._radio  # noqa: SLF001
    neg_radio = tb._apps[7]._radio  # noqa: SLF001
    pos_radio.energy.finalize(tb.sim.now)
    neg_radio.energy.finalize(tb.sim.now)
    assert pos_radio.energy.time_us("tx") > 0
    assert neg_radio.energy.time_us("tx") == 0


def test_energy_ledger_consistent_with_clock():
    result, tb = run(10, [1, 2, 3], 2, seed=5)
    radio = tb.initiator_radio
    radio.energy.finalize(tb.sim.now)
    accounted = radio.energy.time_us("rx") + radio.energy.time_us("tx")
    assert accounted == pytest.approx(tb.sim.now, rel=1e-9)
