"""Tests for the participant application's protocol reactions."""

from __future__ import annotations

import numpy as np

from repro.motes.participant import ParticipantApp
from repro.primitives.backcast import ANNOUNCE_TYPE
from repro.primitives.pollcast import POLL_TYPE
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.channel import Channel
from repro.radio.frames import BROADCAST_ADDR, DataFrame
from repro.sim.kernel import Simulator


def build(n=3):
    sim = Simulator()
    channel = Channel(sim, np.random.default_rng(0))
    sender = Cc2420Radio(sim, channel, address=100)
    apps = []
    radios = []
    for i in range(n):
        radio = Cc2420Radio(sim, channel, address=i)
        app = ParticipantApp(sim, radio)
        app.boot()
        apps.append(app)
        radios.append(radio)
    return sim, sender, apps, radios


def announce(sender, assignment, round_id=1, predicate=0, base=0x8000):
    """Build a round-announce frame mapping node id -> bin index."""
    return DataFrame(
        src=sender.address,
        dst=BROADCAST_ADDR,
        seq=1,
        payload={
            "type": ANNOUNCE_TYPE,
            "predicate": predicate,
            "round": round_id,
            "fragment": 0,
            "fragments": 1,
            "assignment": dict(assignment),
            "ephemeral_base": base,
        },
        payload_bytes=8,
    )


def test_default_negative():
    _, _, apps, _ = build()
    assert not apps[0].is_positive()


def test_configure_per_predicate():
    _, _, apps, _ = build()
    apps[0].configure(True, predicate_id=2)
    assert apps[0].is_positive(2)
    assert not apps[0].is_positive(0)


def test_positive_member_adopts_its_bins_address():
    sim, sender, apps, radios = build()
    apps[1].configure(True)
    sender.transmit(announce(sender, {0: 0, 1: 2}))
    sim.run()
    assert radios[1].short_address == 0x8000 + 2
    assert radios[0].short_address == 0  # negative member keeps own id


def test_positive_unassigned_keeps_own_address():
    sim, sender, apps, radios = build()
    apps[2].configure(True)
    sender.transmit(announce(sender, {0: 0, 1: 1}))
    sim.run()
    assert radios[2].short_address == 2


def test_next_round_resets_previous_binding():
    """A node bound in round k but absent from round k+1's assignment
    must unbind on the new round's first fragment (no stale HACKs)."""
    sim, sender, apps, radios = build()
    apps[1].configure(True)
    sender.transmit(announce(sender, {1: 3}, round_id=1))
    sim.run()
    assert radios[1].short_address == 0x8003
    sender.transmit(announce(sender, {0: 0, 2: 1}, round_id=2))
    sim.run()
    assert radios[1].short_address == 1


def test_fragmented_round_binds_across_fragments():
    """A node listed only in fragment 2 must not unbind itself twice or
    miss its binding."""
    sim, sender, apps, radios = build()
    apps[2].configure(True)
    frag0 = announce(sender, {0: 0, 1: 1}, round_id=7)
    frag1 = announce(sender, {2: 1}, round_id=7)
    sender.transmit(frag0)
    sim.run()
    sender.transmit(frag1)
    sim.run()
    assert radios[2].short_address == 0x8001


def test_pollcast_vote_only_from_positive_members():
    sim, sender, apps, radios = build()
    apps[0].configure(True)
    apps[1].configure(True)
    poll = DataFrame(
        src=sender.address,
        dst=BROADCAST_ADDR,
        seq=2,
        payload={"type": POLL_TYPE, "predicate": 0, "members": (0, 2)},
        payload_bytes=6,
    )
    sender.transmit(poll)
    sim.run()
    assert apps[0].votes_sent == 1   # positive member
    assert apps[1].votes_sent == 0   # positive non-member
    assert apps[2].votes_sent == 0   # negative member


def test_unknown_frame_types_ignored():
    sim, sender, apps, _ = build()
    sender.transmit(
        DataFrame(
            src=sender.address,
            dst=BROADCAST_ADDR,
            seq=3,
            payload={"type": "mystery"},
            payload_bytes=2,
        )
    )
    sim.run()  # must not raise
    assert all(app.votes_sent == 0 for app in apps)
