"""Integration tests for the testbed controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExponentialIncrease, TwoTBins
from repro.motes.testbed import Testbed, TestbedConfig
from repro.radio.irregularity import HackMissModel


def test_config_validation():
    with pytest.raises(ValueError):
        TestbedConfig(num_participants=0)


def test_configure_positives_validation():
    tb = Testbed(TestbedConfig(num_participants=4))
    with pytest.raises(ValueError):
        tb.configure_positives([4])
    with pytest.raises(ValueError):
        tb.configure_positives([-1])


def test_configure_overwrites_previous():
    tb = Testbed(TestbedConfig(num_participants=4))
    tb.configure_positives([0, 1])
    tb.configure_positives([2])
    assert tb.positives == frozenset({2})


def test_adapter_protocol():
    tb = Testbed(TestbedConfig(num_participants=6, seed=1))
    tb.configure_positives([1, 2])
    adapter = tb.query_adapter()
    assert adapter.population_size == 6
    obs = adapter.query([0, 1])
    assert not obs.silent
    obs = adapter.query([3, 4])
    assert obs.silent
    assert adapter.queries_used == 2


@pytest.mark.parametrize("primitive", ["backcast", "pollcast", "votecast"])
def test_ideal_radios_always_correct(primitive):
    for seed in range(10):
        tb = Testbed(
            TestbedConfig(num_participants=10, seed=seed, primitive=primitive)
        )
        rng = np.random.default_rng(seed)
        x = int(rng.integers(0, 11))
        tb.configure_positives(
            int(p) for p in rng.choice(10, size=x, replace=False)
        )
        tb.reboot_all()
        run = tb.run_threshold_query(TwoTBins(), 4)
        assert run.result.decision == run.truth, f"{primitive} seed={seed}"
        assert not run.false_negative and not run.false_positive


def test_query_costs_match_abstract_scale():
    """Packet-level query counts should be the same order as the abstract
    1+ model (same algorithm, same information structure)."""
    tb = Testbed(TestbedConfig(num_participants=12, seed=3))
    tb.configure_positives([0, 1, 2, 3, 4, 5])
    run = tb.run_threshold_query(TwoTBins(), 4)
    assert run.result.decision
    assert 4 <= run.result.queries <= 30


def test_elapsed_time_and_energy_positive():
    tb = Testbed(TestbedConfig(num_participants=8, seed=2))
    tb.configure_positives([1, 5])
    run = tb.run_threshold_query(ExponentialIncrease(), 2)
    assert run.elapsed_us > 0
    assert run.initiator_energy_uj > 0


def test_irregular_radios_only_false_negatives():
    fn = fp = 0
    for seed in range(40):
        tb = Testbed(
            TestbedConfig(
                num_participants=12,
                seed=seed,
                hack_miss=HackMissModel(p_single=0.3, decay=0.1),
            )
        )
        rng = np.random.default_rng(seed)
        x = int(rng.integers(0, 13))
        tb.configure_positives(
            int(p) for p in rng.choice(12, size=x, replace=False)
        )
        tb.reboot_all()
        run = tb.run_threshold_query(TwoTBins(), 4)
        fn += run.false_negative
        fp += run.false_positive
    assert fp == 0          # backcast cannot fabricate a HACK
    assert fn > 0           # a 30% single-HACK miss rate must show up


def test_reboot_between_runs_gives_fresh_sessions():
    tb = Testbed(TestbedConfig(num_participants=8, seed=7))
    tb.configure_positives([0, 1, 2])
    tb.reboot_all()
    first = tb.run_threshold_query(TwoTBins(), 2)
    tb.reboot_all()
    second = tb.run_threshold_query(TwoTBins(), 2)
    assert first.result.decision and second.result.decision
    # Counters reset: the second session's result stands on its own.
    assert second.result.queries > 0


def test_multiple_predicates_coexist():
    """One deployment, two questions: per-predicate answer sets are
    independent and each session queries only its own predicate."""
    tb = Testbed(TestbedConfig(num_participants=10, seed=13))
    tb.configure_positives([0, 1, 2, 3, 4, 5], predicate_id=0)   # x=6
    tb.configure_positives([7], predicate_id=1)                  # x=1
    run0 = tb.run_threshold_query(TwoTBins(), 4, predicate_id=0)
    run1 = tb.run_threshold_query(TwoTBins(), 4, predicate_id=1)
    assert run0.result.decision and run0.truth
    assert not run1.result.decision and not run1.truth
    assert tb.positives_for(0) == frozenset(range(6))
    assert tb.positives_for(1) == frozenset({7})


def test_reconfiguring_one_predicate_leaves_others():
    tb = Testbed(TestbedConfig(num_participants=6, seed=14))
    tb.configure_positives([0, 1], predicate_id=0)
    tb.configure_positives([2], predicate_id=3)
    tb.configure_positives([4, 5], predicate_id=0)  # overwrite pred 0
    assert tb.positives_for(0) == frozenset({4, 5})
    assert tb.positives_for(3) == frozenset({2})


def test_hack_miss_diagnostics_reported():
    tb = Testbed(
        TestbedConfig(
            num_participants=6,
            seed=11,
            hack_miss=HackMissModel(p_single=1.0, decay=1.0),
        )
    )
    tb.configure_positives([0, 1, 2, 3, 4, 5])
    run = tb.run_threshold_query(TwoTBins(), 2)
    assert run.hack_misses > 0
    assert run.false_negative  # every HACK suppressed -> reads all-silent
