"""Unit tests for the initiator application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.group_testing.model import ObservationKind
from repro.motes.initiator import InitiatorApp
from repro.motes.participant import ParticipantApp
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.channel import Channel
from repro.sim.kernel import Simulator


def build(primitive="backcast", n=4, positives=()):
    sim = Simulator()
    channel = Channel(sim, np.random.default_rng(0))
    init_radio = Cc2420Radio(sim, channel, address=100)
    app = InitiatorApp(sim, init_radio, primitive=primitive)
    for i in range(n):
        radio = Cc2420Radio(sim, channel, address=i)
        papp = ParticipantApp(sim, radio)
        papp.boot()
        papp.configure(i in positives)
    return sim, app


def test_unknown_primitive_rejected():
    sim = Simulator()
    channel = Channel(sim, np.random.default_rng(0))
    radio = Cc2420Radio(sim, channel, address=1)
    with pytest.raises(ValueError, match="primitive"):
        InitiatorApp(sim, radio, primitive="smoke-signals")


@pytest.mark.parametrize("primitive", ["backcast", "pollcast", "votecast"])
def test_query_bin_maps_to_observations(primitive):
    _, app = build(primitive=primitive, positives=(1,))
    assert app.primitive == primitive
    nonempty = app.query_bin([0, 1])
    silent = app.query_bin([2, 3])
    assert nonempty.kind in (ObservationKind.ACTIVITY, ObservationKind.CAPTURE)
    assert silent.kind is ObservationKind.SILENT


def test_counters_and_boot_reset():
    _, app = build(positives=(0,))
    app.query_bin([0])
    app.query_bin([1])
    assert app.queries_issued == 2
    assert app.query_time_us > 0
    app.boot()
    assert app.queries_issued == 0
    assert app.query_time_us == 0.0


def test_begin_round_enables_bare_polls():
    _, app = build(positives=(0, 2))
    app.begin_round([[0, 1], [2, 3]])
    before = app.query_time_us
    obs = app.query_bin([0, 1])
    per_poll = app.query_time_us - before
    assert not obs.silent
    # A bare poll is far cheaper than a full announce+poll exchange.
    _, app2 = build(positives=(0, 2))
    before2 = app2.query_time_us
    app2.query_bin([0, 1])
    one_shot = app2.query_time_us - before2
    assert per_poll < one_shot * 0.75


def test_unannounced_membership_falls_back_to_one_shot():
    _, app = build(positives=(1,))
    app.begin_round([[0], [1]])
    # A member set that matches no announced bin still works (sampled
    # probes take this path).
    obs = app.query_bin([1, 2])
    assert not obs.silent


def test_begin_round_is_noop_for_pollcast():
    _, app = build(primitive="pollcast", positives=(1,))
    app.begin_round([[0, 1]])
    assert app.query_time_us == 0.0
    assert app.query_bin([0, 1]).kind is ObservationKind.ACTIVITY


def test_votecast_capture_surfaces_node_id():
    _, app = build(primitive="votecast", positives=(3,))
    obs = app.query_bin([0, 1, 2, 3])
    assert obs.kind is ObservationKind.CAPTURE
    assert obs.captured_node == 3
