"""Tests for :class:`repro.faults.plan.FaultPlan` seam behaviour.

The central contract: every seam method is an identity when the plan
holds no injector relevant to that seam (zero-cost-when-disabled), and a
faithful fault process when it does.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TwoTBins
from repro.faults import (
    BinMissWindow,
    FaultPlan,
    HackMissBurst,
    MoteCrash,
    SerialByteCorruption,
    VerdictFlip,
)
from repro.faults.injectors import WindowedHackMiss
from repro.group_testing.model import ObservationKind, OnePlusModel
from repro.group_testing.population import Population
from repro.radio.irregularity import HackMissModel


class TestZeroCostWhenDisabled:
    """Every seam returns its argument unchanged on an empty plan."""

    def test_none_plan_is_disabled(self):
        plan = FaultPlan.none()
        assert not plan.enabled
        assert not plan
        assert plan.injectors == ()

    def test_detection_hook_identity(self):
        plan = FaultPlan.none()
        assert plan.detection_hook(None) is None
        base = HackMissModel(p_single=0.1).miss_probability
        assert plan.detection_hook(base) is base

    def test_wrap_model_identity(self):
        plan = FaultPlan.none()
        model = OnePlusModel(Population.from_count(8, 2), np.random.default_rng(0))
        assert plan.wrap_model(model) is model

    def test_wrap_hack_miss_identity(self):
        plan = FaultPlan.none()
        base = HackMissModel(p_single=0.1)
        assert plan.wrap_hack_miss(base, lambda: 0.0) is base
        assert plan.wrap_hack_miss(None, lambda: 0.0) is None

    def test_corrupt_wire_identity(self):
        plan = FaultPlan.none()
        data = b"\x01\x02\x03"
        assert plan.corrupt_wire(data) is data

    def test_irrelevant_injectors_leave_other_seams_alone(self):
        """A plan with only serial corruption must not touch the model
        or channel seams."""
        plan = FaultPlan((SerialByteCorruption(p_byte=0.5),), seed=1)
        model = OnePlusModel(Population.from_count(8, 2), np.random.default_rng(0))
        assert plan.wrap_model(model) is model
        assert plan.detection_hook(None) is None
        base = HackMissModel()
        assert plan.wrap_hack_miss(base, lambda: 0.0) is base

    def test_abstract_run_identical_under_empty_plan(self):
        """TwoTBins sees bit-identical observations through the empty
        plan's seams."""
        results = []
        for plan in (None, FaultPlan.none()):
            rng = np.random.default_rng(123)
            pop = Population.from_count(24, 5, np.random.default_rng(7))
            hook = None if plan is None else plan.detection_hook(None)
            model = OnePlusModel(pop, rng, detection_failure=hook)
            wrapped = model if plan is None else plan.wrap_model(model)
            res = TwoTBins().decide(wrapped, 4, np.random.default_rng(99))
            results.append((res.decision, res.queries, res.rounds))
        assert results[0] == results[1]


class TestDetectionHook:
    def test_composes_with_base_as_independent_events(self):
        base = lambda k: 0.2  # noqa: E731
        plan = FaultPlan((VerdictFlip(p_drop=0.5),), seed=0)
        hook = plan.detection_hook(base)
        assert hook is not base
        assert hook(1) == pytest.approx(1 - 0.8 * 0.5)

    def test_only_single_restriction(self):
        plan = FaultPlan((VerdictFlip(p_drop=0.5, only_single=True),), seed=0)
        hook = plan.detection_hook(None)
        assert hook(1) == pytest.approx(0.5)
        assert hook(2) == 0.0

    def test_fake_only_flip_does_not_create_hook(self):
        plan = FaultPlan((VerdictFlip(p_fake=0.5),), seed=0)
        assert plan.detection_hook(None) is None


class TestFaultyModel:
    def _model(self, positives, n=8):
        pop = Population(size=n, positives=frozenset(positives))
        return OnePlusModel(pop, np.random.default_rng(0))

    def test_window_drops_activity_deterministically(self):
        plan = FaultPlan(
            (BinMissWindow(start_query=0, n_queries=2, p_miss=1.0),), seed=0
        )
        wrapped = plan.wrap_model(self._model({0, 1}))
        assert wrapped.query([0]).silent  # in window: dropped
        assert wrapped.query([1]).silent  # in window: dropped
        assert not wrapped.query([0]).silent  # window over
        assert any(e.kind == "bin-miss" for e in plan.events)

    def test_window_never_touches_truly_silent_bins(self):
        plan = FaultPlan(
            (BinMissWindow(start_query=0, n_queries=100, p_miss=1.0),), seed=0
        )
        wrapped = plan.wrap_model(self._model({0}))
        assert wrapped.query([3, 4]).silent
        assert plan.events == ()  # nothing was dropped: it was silent anyway

    def test_fake_fabricates_activity_on_silent_bin(self):
        plan = FaultPlan((VerdictFlip(p_fake=1.0),), seed=0)
        wrapped = plan.wrap_model(self._model({0}))
        obs = wrapped.query([3, 4])  # truly silent bin
        assert obs.kind is ObservationKind.ACTIVITY
        assert any(e.kind == "bin-fake" for e in plan.events)

    def test_ledger_delegated(self):
        plan = FaultPlan((VerdictFlip(p_fake=1.0),), seed=0)
        inner = self._model({0})
        wrapped = plan.wrap_model(inner)
        wrapped.query([0])
        wrapped.query([1])
        assert wrapped.queries_used == inner.queries_used == 2
        assert wrapped.population_size == 8

    def test_seeded_plan_replays(self):
        def run(seed):
            plan = FaultPlan(
                (BinMissWindow(start_query=0, n_queries=50, p_miss=0.5),),
                seed=seed,
            )
            wrapped = plan.wrap_model(self._model({0, 1, 2, 3}))
            return [wrapped.query([i % 4]).silent for i in range(50)]

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestCorruptWire:
    def test_certain_corruption_changes_every_byte_span(self):
        plan = FaultPlan((SerialByteCorruption(p_byte=1.0),), seed=0)
        data = bytes(range(32))
        out = plan.corrupt_wire(data)
        assert out != data
        assert len(out) == len(data)
        # Single-bit flips: every byte differs in exactly one bit.
        for a, b in zip(data, out):
            assert bin(a ^ b).count("1") == 1
        assert any(e.kind == "serial-corruption" for e in plan.events)

    def test_zero_probability_is_identity(self):
        plan = FaultPlan((SerialByteCorruption(p_byte=0.0),), seed=0)
        data = b"\x10\x20"
        assert plan.corrupt_wire(data) == data


class TestArmValidation:
    def test_crash_id_out_of_range_rejected(self):
        from repro.motes.testbed import Testbed, TestbedConfig

        plan = FaultPlan((MoteCrash(mote_id=99, at_us=0.0),), seed=0)
        with pytest.raises(ValueError, match="outside"):
            Testbed(TestbedConfig(num_participants=4, seed=1, fault_plan=plan))

    def test_hack_burst_plan_wraps_channel_model(self):
        plan = FaultPlan(
            (HackMissBurst(start_us=0.0, duration_us=10.0, p_single=0.5),),
            seed=0,
        )
        wrapped = plan.wrap_hack_miss(None, lambda: 5.0)
        assert isinstance(wrapped, WindowedHackMiss)
        assert wrapped.miss_probability(1) == pytest.approx(0.5)
