"""Unit tests for the individual fault injectors."""

from __future__ import annotations

import pytest

from repro.faults.injectors import (
    BinMissWindow,
    HackMissBurst,
    MoteCrash,
    SerialByteCorruption,
    StuckTransmitter,
    VerdictFlip,
    WindowedHackMiss,
)
from repro.radio.irregularity import HackMissModel


class TestVerdictFlip:
    def test_defaults_are_inert(self):
        flip = VerdictFlip()
        assert flip.p_drop == 0.0 and flip.p_fake == 0.0

    def test_probability_validation(self):
        with pytest.raises(ValueError, match="p_drop"):
            VerdictFlip(p_drop=1.5)
        with pytest.raises(ValueError, match="p_fake"):
            VerdictFlip(p_fake=-0.1)

    def test_only_single_gates_drop(self):
        flip = VerdictFlip(p_drop=0.3, only_single=True)
        assert flip.drop_probability(1) == 0.3
        assert flip.drop_probability(2) == 0.0
        assert flip.drop_probability(5) == 0.0

    def test_unrestricted_drop_applies_to_all_counts(self):
        flip = VerdictFlip(p_drop=0.3)
        assert flip.drop_probability(1) == flip.drop_probability(7) == 0.3


class TestBinMissWindow:
    def test_covers_half_open_interval(self):
        win = BinMissWindow(start_query=3, n_queries=2)
        assert not win.covers(2)
        assert win.covers(3)
        assert win.covers(4)
        assert not win.covers(5)

    def test_validation(self):
        with pytest.raises(ValueError, match="start_query"):
            BinMissWindow(start_query=-1, n_queries=1)
        with pytest.raises(ValueError, match="n_queries"):
            BinMissWindow(start_query=0, n_queries=0)
        with pytest.raises(ValueError, match="p_miss"):
            BinMissWindow(start_query=0, n_queries=1, p_miss=2.0)


class TestHackMissBurst:
    def test_covers_and_miss(self):
        burst = HackMissBurst(
            start_us=100.0, duration_us=50.0, p_single=0.4, decay=0.5
        )
        assert burst.covers(100.0) and burst.covers(149.9)
        assert not burst.covers(99.9) and not burst.covers(150.0)
        assert burst.miss_probability(1) == pytest.approx(0.4)
        assert burst.miss_probability(2) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError, match="duration_us"):
            HackMissBurst(start_us=0.0, duration_us=0.0, p_single=0.1)


class TestWindowedHackMiss:
    def test_outside_window_equals_base(self):
        base = HackMissModel(p_single=0.1, decay=0.1)
        burst = HackMissBurst(start_us=10.0, duration_us=5.0, p_single=0.9)
        clock = lambda: 0.0  # noqa: E731
        model = WindowedHackMiss(base, (burst,), clock)
        assert model.miss_probability(1) == pytest.approx(0.1)

    def test_inside_window_combines_independently(self):
        base = HackMissModel(p_single=0.1, decay=0.1)
        burst = HackMissBurst(
            start_us=10.0, duration_us=5.0, p_single=0.5, decay=0.1
        )
        model = WindowedHackMiss(base, (burst,), lambda: 12.0)
        # 1 - (1 - 0.1)(1 - 0.5)
        assert model.miss_probability(1) == pytest.approx(0.55)

    def test_none_base_is_ideal(self):
        burst = HackMissBurst(start_us=0.0, duration_us=5.0, p_single=0.5)
        model = WindowedHackMiss(None, (burst,), lambda: 100.0)
        assert model.miss_probability(1) == 0.0


class TestMoteCrash:
    def test_reboot_must_follow_crash(self):
        with pytest.raises(ValueError, match="reboot_at_us"):
            MoteCrash(mote_id=0, at_us=100.0, reboot_at_us=100.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="mote_id"):
            MoteCrash(mote_id=-1, at_us=0.0)
        with pytest.raises(ValueError, match="at_us"):
            MoteCrash(mote_id=0, at_us=-1.0)


class TestStuckTransmitterAndSerial:
    def test_stuck_transmitter_validation(self):
        with pytest.raises(ValueError, match="duration_us"):
            StuckTransmitter(start_us=0.0, duration_us=-1.0)
        with pytest.raises(ValueError, match="payload_bytes"):
            StuckTransmitter(start_us=0.0, duration_us=1.0, payload_bytes=0)

    def test_serial_corruption_validation(self):
        with pytest.raises(ValueError, match="p_byte"):
            SerialByteCorruption(p_byte=1.01)
