"""Packet-level fault injection and the reliable control plane.

Covers the testbed seams (mote crash/reboot, HACK-miss bursts, stuck
transmitters), the zero-cost bit-for-bit guarantee of an empty plan, and
:meth:`repro.motes.testbed.Testbed.run_reliable_query`'s timeout /
reboot-on-wedge recovery.
"""

from __future__ import annotations

import pytest

from repro.core import TwoTBins
from repro.faults import (
    FaultPlan,
    HackMissBurst,
    MoteCrash,
    StuckTransmitter,
)
from repro.motes.testbed import (
    QueryDeadlineExceeded,
    Testbed,
    TestbedConfig,
)
from repro.primitives.common import ChannelWedged
from repro.radio.irregularity import HackMissModel


def _testbed(plan=None, *, n=8, seed=21, hack_miss=None):
    return Testbed(
        TestbedConfig(
            num_participants=n, seed=seed, fault_plan=plan, hack_miss=hack_miss
        )
    )


class TestBitForBit:
    """FaultPlan.none() runs reproduce no-plan runs bit for bit."""

    @pytest.mark.parametrize("hack_miss", [None, HackMissModel(p_single=0.05)])
    def test_run_identical_with_and_without_empty_plan(self, hack_miss):
        runs = []
        for plan in (None, FaultPlan.none()):
            tb = _testbed(plan, hack_miss=hack_miss)
            tb.configure_positives([1, 3, 5, 6])
            runs.append(tb.run_threshold_query(TwoTBins(), 3))
        a, b = runs
        assert a.result.decision == b.result.decision
        assert a.result.queries == b.result.queries
        assert a.result.rounds == b.result.rounds
        assert a.elapsed_us == b.elapsed_us
        assert a.hack_misses == b.hack_misses
        assert a.initiator_energy_uj == b.initiator_energy_uj


class TestMoteCrash:
    def test_crashed_positive_disappears_silently(self):
        """A fail-silent crash of a positive makes the testbed read one
        fewer positive -- the classic false-negative cause."""
        plan = FaultPlan((MoteCrash(mote_id=1, at_us=0.0),), seed=0)
        tb = _testbed(plan)
        tb.configure_positives([1, 3, 5])
        run = tb.run_threshold_query(TwoTBins(), 3)
        assert tb.participants[1].crashed
        assert run.truth is True  # ground truth still counts the crashed mote
        assert run.result.decision is False  # but it cannot HACK
        assert run.false_negative
        assert any(e.kind == "mote-crash" for e in plan.events)

    def test_scheduled_reboot_recovers_the_mote(self):
        plan = FaultPlan(
            (MoteCrash(mote_id=1, at_us=0.0, reboot_at_us=10.0),), seed=0
        )
        tb = _testbed(plan)
        tb.configure_positives([1, 3, 5])
        tb.sim.run(until=50.0)  # crash at 0, reboot at 10
        assert not tb.participants[1].crashed
        run = tb.run_threshold_query(TwoTBins(), 3)
        assert run.result.decision is True
        kinds = [e.kind for e in plan.events]
        assert "mote-crash" in kinds and "mote-reboot" in kinds

    def test_crash_of_negative_mote_is_harmless(self):
        plan = FaultPlan((MoteCrash(mote_id=0, at_us=0.0),), seed=0)
        tb = _testbed(plan)
        tb.configure_positives([1, 3, 5])
        run = tb.run_threshold_query(TwoTBins(), 3)
        assert run.result.decision is True
        assert not run.false_negative


class TestHackMissBurst:
    def test_burst_covering_session_forces_false_negative(self):
        """p_single=1.0 during the whole session: every lone HACK is
        lost, so a single-positive query must read silent."""
        plan = FaultPlan(
            (HackMissBurst(start_us=0.0, duration_us=1e9, p_single=1.0),),
            seed=0,
        )
        tb = _testbed(plan)
        tb.configure_positives([4])
        run = tb.run_threshold_query(TwoTBins(), 1)
        assert run.truth is True
        assert run.result.decision is False
        assert run.false_negative
        assert run.hack_misses > 0

    def test_burst_in_the_past_changes_nothing(self):
        """A burst window that closed before the session starts leaves
        the run fault-free."""
        plan = FaultPlan(
            (HackMissBurst(start_us=0.0, duration_us=1.0, p_single=1.0),),
            seed=0,
        )
        tb = _testbed(plan)
        tb.configure_positives([4])
        tb.sim.run(until=10.0)  # move past the burst
        run = tb.run_threshold_query(TwoTBins(), 1)
        assert run.result.decision is True


class TestStuckTransmitter:
    def test_long_jam_wedges_a_plain_session(self):
        plan = FaultPlan(
            (StuckTransmitter(start_us=0.0, duration_us=1e8),), seed=0
        )
        tb = _testbed(plan)
        tb.configure_positives([1, 3, 5])
        with pytest.raises(ChannelWedged):
            tb.run_threshold_query(TwoTBins(), 3)

    def test_reliable_query_rides_out_a_bounded_jam(self):
        """A jam shorter than the wedge bound delays the first queries;
        the per-attempt deadline catches it and the control plane
        reboots, backs off, and answers correctly on a later attempt."""
        plan = FaultPlan(
            (StuckTransmitter(start_us=0.0, duration_us=100_000.0),), seed=0
        )
        tb = _testbed(plan)
        tb.configure_positives([1, 3, 5])
        run = tb.run_reliable_query(
            TwoTBins(), 3, attempt_timeout_us=50_000.0
        )
        assert run.result.decision is True
        info = run.result.reliability
        assert info is not None
        assert info.timeouts >= 1
        assert info.reboots >= 1
        assert info.degraded
        assert "[degraded]" in run.result.summary()

    def test_reliable_query_exhausts_attempts_and_reraises(self):
        plan = FaultPlan(
            (StuckTransmitter(start_us=0.0, duration_us=1e10),), seed=0
        )
        tb = _testbed(plan)
        tb.configure_positives([1, 3, 5])
        with pytest.raises(ChannelWedged):
            tb.run_reliable_query(TwoTBins(), 3, max_attempts=2)


class TestReliableControlPlane:
    def test_fault_free_reliable_run_is_undegraded(self):
        tb = _testbed()
        tb.configure_positives([1, 3, 5])
        run = tb.run_reliable_query(TwoTBins(), 3)
        info = run.result.reliability
        assert info is not None
        assert info.timeouts == 0 and info.reboots == 0
        assert not info.degraded
        assert run.result.decision is True
        assert run.result.algorithm == "reliable(2tBins)"

    def test_deadline_exceeded_surfaces_after_final_attempt(self):
        tb = _testbed()
        tb.configure_positives([1, 3, 5])
        tb.sim.run(until=10.0)
        with pytest.raises(QueryDeadlineExceeded):
            tb.run_reliable_query(
                TwoTBins(), 3, max_attempts=2, attempt_timeout_us=0.0
            )

    def test_max_attempts_validated(self):
        tb = _testbed()
        with pytest.raises(ValueError, match="max_attempts"):
            tb.run_reliable_query(TwoTBins(), 1, max_attempts=0)
