"""Unit tests for named RNG streams."""

from __future__ import annotations

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(1, "a") == derive_seed(1, "a")


def test_derive_seed_varies_with_name_and_seed():
    seeds = {derive_seed(1, "a"), derive_seed(1, "b"), derive_seed(2, "a")}
    assert len(seeds) == 3


def test_derive_seed_is_nonnegative_63bit():
    for name in ("x", "channel.capture", "very/long/name" * 10):
        s = derive_seed(123456789, name)
        assert 0 <= s < 2**63


def test_stream_is_cached():
    reg = RngRegistry(7)
    assert reg.stream("w") is reg.stream("w")


def test_streams_reproducible_across_registries():
    a = RngRegistry(7).stream("w").random(5)
    b = RngRegistry(7).stream("w").random(5)
    assert (a == b).all()


def test_streams_independent_of_creation_order():
    r1 = RngRegistry(7)
    r1.stream("a")
    first = r1.stream("b").random()
    r2 = RngRegistry(7)
    second = r2.stream("b").random()  # "a" never created here
    assert first == second


def test_different_streams_differ():
    reg = RngRegistry(7)
    assert reg.stream("a").random() != reg.stream("b").random()


def test_fork_creates_independent_family():
    reg = RngRegistry(7)
    f1 = reg.fork("run0")
    f2 = reg.fork("run1")
    assert f1.stream("w").random() != f2.stream("w").random()
    # Forks are reproducible too.
    again = RngRegistry(7).fork("run0")
    assert RngRegistry(7).fork("run0").stream("w").random() == again.stream("w").random()


def test_names_lists_created_streams():
    reg = RngRegistry(7)
    reg.stream("b")
    reg.stream("a")
    assert reg.names() == ["a", "b"]


def test_seed_property():
    assert RngRegistry(99).seed == 99
