"""Unit tests for the tracer."""

from __future__ import annotations

import pytest

from repro.sim.trace import TraceRecord, Tracer


def test_emit_and_read_back():
    tr = Tracer()
    tr.emit("radio.tx", "mote1", time=1.5, frame="data")
    assert len(tr) == 1
    rec = tr.records()[0]
    assert rec.time == 1.5
    assert rec.category == "radio.tx"
    assert rec.source == "mote1"
    assert rec.detail["frame"] == "data"


def test_disabled_tracer_is_noop():
    tr = Tracer(enabled=False)
    tr.emit("x", "y", time=0.0)
    assert len(tr) == 0


def test_clock_supplies_default_time():
    now = [0.0]
    tr = Tracer(clock=lambda: now[0])
    now[0] = 42.0
    tr.emit("a", "b")
    assert tr.records()[0].time == 42.0


def test_explicit_time_overrides_clock():
    tr = Tracer(clock=lambda: 1.0)
    tr.emit("a", "b", time=9.0)
    assert tr.records()[0].time == 9.0


def test_no_clock_and_no_time_raises_with_tracer_name():
    tr = Tracer(name="cc2420")
    with pytest.raises(ValueError, match="cc2420"):
        tr.emit("radio.tx", "m0")
    assert len(tr) == 0


def test_no_clock_and_no_time_raises_with_default_name():
    tr = Tracer()
    with pytest.raises(ValueError, match="'tracer' has no clock"):
        tr.emit("a", "b")


def test_disabled_tracer_without_clock_stays_silent():
    # The no-op contract wins: a disabled tracer must never raise.
    tr = Tracer(enabled=False)
    tr.emit("a", "b")
    assert len(tr) == 0


def test_prefix_filtering_and_count():
    tr = Tracer()
    tr.emit("radio.tx.start", "m", time=0)
    tr.emit("radio.tx.end", "m", time=1)
    tr.emit("radio.rx", "m", time=2)
    tr.emit("mac.backoff", "m", time=3)
    assert tr.count("radio.tx") == 2
    assert tr.count("radio") == 3
    assert tr.count() == 4
    assert len(tr.records("mac")) == 1


def test_matches_prefix():
    rec = TraceRecord(time=0, category="backcast.poll", source="m")
    assert rec.matches("backcast")
    assert not rec.matches("pollcast")


def test_clear():
    tr = Tracer()
    tr.emit("a", "b", time=0)
    tr.clear()
    assert len(tr) == 0


def test_categories_sorted_unique():
    tr = Tracer()
    for cat in ("b", "a", "b"):
        tr.emit(cat, "s", time=0)
    assert tr.categories() == ["a", "b"]


def test_format_renders_all_records():
    tr = Tracer()
    tr.emit("cat", "src", time=1.0, k=2)
    text = tr.format()
    assert "cat" in text and "src" in text and "k=2" in text


def test_iteration():
    tr = Tracer()
    tr.emit("a", "s", time=0)
    tr.emit("b", "s", time=1)
    assert [r.category for r in tr] == ["a", "b"]
