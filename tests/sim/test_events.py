"""Direct tests for event records and handles."""

from __future__ import annotations

from repro.sim.events import Event, EventHandle


def test_ordering_by_time_then_seq():
    a = Event(time=1.0, seq=0, callback=lambda: None)
    b = Event(time=1.0, seq=1, callback=lambda: None)
    c = Event(time=0.5, seq=2, callback=lambda: None)
    assert c < a < b


def test_handle_exposes_metadata():
    event = Event(time=3.0, seq=0, callback=lambda: None, label="tick")
    handle = EventHandle(event)
    assert handle.time == 3.0
    assert handle.label == "tick"
    assert not handle.cancelled


def test_cancel_marks_event():
    event = Event(time=3.0, seq=0, callback=lambda: None)
    handle = EventHandle(event)
    handle.cancel()
    assert event.cancelled
    assert handle.cancelled


def test_callback_not_part_of_ordering():
    # Different callbacks must not affect comparisons (field(compare=False)).
    a = Event(time=1.0, seq=0, callback=lambda: 1)
    b = Event(time=1.0, seq=0, callback=lambda: 2)
    assert not a < b and not b < a
