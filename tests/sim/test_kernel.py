"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_fired == 0


def test_schedule_and_run_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0
    assert sim.events_fired == 1


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_fire_in_fifo_order():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.schedule(1.0, lambda tag=tag: order.append(tag))
    sim.run()
    assert order == list(range(10))


def test_schedule_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_raises():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 3.0:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_run_until_stops_at_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=3.0)
    assert fired == [1]
    assert sim.now == 3.0
    assert sim.pending == 1


def test_run_until_includes_events_at_exact_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append(3))
    sim.run(until=3.0)
    assert fired == [3]


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_resume_after_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=3.0)
    sim.run()
    assert fired == [1, 5]
    assert sim.now == 5.0


def test_max_events_budget():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i), lambda: None)
    sim.run(max_events=4)
    assert sim.events_fired == 4
    assert sim.pending == 6


def test_run_until_idle_detects_runaway():
    sim = Simulator()

    def loop():
        sim.schedule(1.0, loop)

    sim.schedule(1.0, loop)
    with pytest.raises(SimulationError, match="budget"):
        sim.run_until_idle(max_events=100)


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_step_skips_cancelled():
    sim = Simulator()
    fired = []
    h = sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    h.cancel()
    assert sim.step()
    assert fired == [2]


def test_reset_clears_everything():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.schedule(9.0, lambda: None)
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_fired == 0
    # Can schedule at "past" times again after reset.
    sim.schedule_at(0.5, lambda: None)
    sim.run()
    assert sim.now == 0.5


def test_zero_delay_event_fires_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(2.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_handle_reports_time_and_label():
    sim = Simulator()
    h = sim.schedule(7.5, lambda: None, label="probe")
    assert h.time == 7.5
    assert h.label == "probe"
    assert not h.cancelled
