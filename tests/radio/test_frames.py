"""Tests for frame records."""

from __future__ import annotations

import pytest

from repro.radio.frames import AckFrame, BROADCAST_ADDR, DataFrame, FrameKind


class TestDataFrame:
    def test_basic(self):
        f = DataFrame(src=1, dst=2, seq=7, payload={"k": 1}, payload_bytes=4)
        assert f.kind is FrameKind.DATA
        assert f.mpdu_bytes == 11 + 4

    def test_broadcast_cannot_request_ack(self):
        with pytest.raises(ValueError):
            DataFrame(src=1, dst=BROADCAST_ADDR, seq=0, ack_request=True)

    def test_broadcast_without_ack_ok(self):
        f = DataFrame(src=1, dst=BROADCAST_ADDR, seq=0)
        assert f.dst == 0xFFFF

    def test_address_validation(self):
        with pytest.raises(ValueError):
            DataFrame(src=-1, dst=2, seq=0)
        with pytest.raises(ValueError):
            DataFrame(src=1, dst=0x10000, seq=0)

    def test_seq_validation(self):
        with pytest.raises(ValueError):
            DataFrame(src=1, dst=2, seq=256)
        with pytest.raises(ValueError):
            DataFrame(src=1, dst=2, seq=-1)

    def test_payload_size_cap(self):
        DataFrame(src=1, dst=2, seq=0, payload_bytes=116)  # max ok
        with pytest.raises(ValueError):
            DataFrame(src=1, dst=2, seq=0, payload_bytes=117)
        with pytest.raises(ValueError):
            DataFrame(src=1, dst=2, seq=0, payload_bytes=-1)

    def test_frozen(self):
        f = DataFrame(src=1, dst=2, seq=0)
        with pytest.raises(AttributeError):
            f.seq = 9  # type: ignore[misc]


class TestAckFrame:
    def test_fixed_mpdu_size(self):
        assert AckFrame(seq=3).mpdu_bytes == 5

    def test_kind(self):
        assert AckFrame(seq=3).kind is FrameKind.ACK

    def test_seq_validation(self):
        with pytest.raises(ValueError):
            AckFrame(seq=300)

    def test_superposition_same_seq(self):
        assert AckFrame(seq=9).superposes_with(AckFrame(seq=9))

    def test_no_superposition_different_seq(self):
        assert not AckFrame(seq=9).superposes_with(AckFrame(seq=10))

    def test_no_superposition_with_software_ack(self):
        hw = AckFrame(seq=9)
        sw = AckFrame(seq=9, hardware=False)
        assert not hw.superposes_with(sw)
        assert not sw.superposes_with(hw)
