"""Tests for the CC2420-like radio device."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radio.cc2420 import Cc2420Radio, RadioState
from repro.radio.channel import Channel
from repro.radio.frames import AckFrame, BROADCAST_ADDR, DataFrame
from repro.sim.kernel import Simulator


def build(n=2, seed=0):
    sim = Simulator()
    channel = Channel(sim, np.random.default_rng(seed))
    radios = [Cc2420Radio(sim, channel, address=i) for i in range(n)]
    return sim, channel, radios


class TestAddressing:
    def test_power_on_short_address_is_hw_address(self):
        _, _, (r0, r1) = build()
        assert r1.short_address == 1

    def test_set_short_address(self):
        _, _, (r0, r1) = build()
        r1.set_short_address(0x9000)
        assert r1.short_address == 0x9000

    def test_address_validation(self):
        sim = Simulator()
        channel = Channel(sim, np.random.default_rng(0))
        with pytest.raises(ValueError):
            Cc2420Radio(sim, channel, address=0xFFFF)  # broadcast reserved
        radio = Cc2420Radio(sim, channel, address=1)
        with pytest.raises(ValueError):
            radio.set_short_address(0xFFFF)

    def test_unicast_filtered_by_short_address(self):
        sim, _, (r0, r1) = build()
        got = []
        r1.receive_callback = lambda f, k: got.append(f)
        r0.transmit(DataFrame(src=0, dst=0x1234, seq=0))
        sim.run()
        assert got == []
        assert r1.frames_received == 0

    def test_unicast_accepted_on_match(self):
        sim, _, (r0, r1) = build()
        got = []
        r1.receive_callback = lambda f, k: got.append(f)
        r1.set_short_address(0x1234)
        r0.transmit(DataFrame(src=0, dst=0x1234, seq=0))
        sim.run()
        assert len(got) == 1
        assert r1.frames_received == 1

    def test_broadcast_always_accepted(self):
        sim, _, (r0, r1) = build()
        got = []
        r1.receive_callback = lambda f, k: got.append(f)
        r0.transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0))
        sim.run()
        assert len(got) == 1


class TestAutoAck:
    def test_hack_generated_on_match(self):
        sim, _, (r0, r1) = build()
        acks = []
        r0.ack_callback = lambda a, k: acks.append((a, k))
        r0.transmit(DataFrame(src=0, dst=1, seq=5, ack_request=True))
        sim.run()
        assert len(acks) == 1
        assert acks[0][0].seq == 5
        assert r1.acks_sent == 1

    def test_no_hack_without_request(self):
        sim, _, (r0, r1) = build()
        acks = []
        r0.ack_callback = lambda a, k: acks.append(a)
        r0.transmit(DataFrame(src=0, dst=1, seq=5))
        sim.run()
        assert acks == []
        assert r1.acks_sent == 0

    def test_no_hack_when_disabled(self):
        sim, _, (r0, r1) = build()
        r1.set_auto_ack(False)
        acks = []
        r0.ack_callback = lambda a, k: acks.append(a)
        r0.transmit(DataFrame(src=0, dst=1, seq=5, ack_request=True))
        sim.run()
        assert acks == []

    def test_hack_launches_one_turnaround_after_frame(self):
        sim, channel, (r0, r1) = build()
        times = []
        r0.ack_callback = lambda a, k: times.append(sim.now)
        end = r0.transmit(DataFrame(src=0, dst=1, seq=5, ack_request=True))
        sim.run()
        timing = channel.timing
        expected = end + timing.turnaround_us + timing.frame_airtime_us(5)
        assert times[0] == pytest.approx(expected)

    def test_pending_hack_aborted_by_power_off(self):
        sim, _, (r0, r1) = build()
        acks = []
        r0.ack_callback = lambda a, k: acks.append(a)
        end = r0.transmit(DataFrame(src=0, dst=1, seq=5, ack_request=True))
        # Power r1 off right at frame end, before the turnaround elapses.
        sim.schedule_at(end, r1.power_off)
        sim.run()
        assert acks == []


class TestStateMachine:
    def test_tx_state_during_transmission(self):
        sim, _, (r0, r1) = build()
        r0.transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0))
        assert r0.state is RadioState.TX
        assert r0.is_transmitting()
        sim.run()
        assert r0.state is RadioState.RX

    def test_cannot_double_transmit(self):
        sim, _, (r0, r1) = build()
        r0.transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0))
        with pytest.raises(RuntimeError):
            r0.transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=1))
        sim.run()

    def test_cca_requires_rx(self):
        sim, _, (r0, r1) = build()
        assert r0.cca()  # idle channel is clear
        r0.transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0))
        with pytest.raises(RuntimeError):
            r0.cca()
        assert not r1.cca()  # busy for the listener
        sim.run()

    def test_power_cycle(self):
        sim, _, (r0, r1) = build()
        r1.power_off()
        assert r1.state is RadioState.OFF
        got = []
        r1.receive_callback = lambda f, k: got.append(f)
        r0.transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0))
        sim.run()
        assert got == []  # off radios hear nothing
        r1.power_on()
        assert r1.state is RadioState.RX

    def test_cannot_power_off_mid_tx(self):
        sim, _, (r0, r1) = build()
        r0.transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0))
        with pytest.raises(RuntimeError):
            r0.power_off()
        sim.run()

    def test_energy_tracks_states(self):
        sim, _, (r0, r1) = build()
        r0.transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0, payload_bytes=10))
        sim.run()
        r0.energy.finalize(sim.now)
        assert r0.energy.time_us("tx") > 0
        assert r0.energy.total_uj > 0
