"""Tests for radio-irregularity models."""

from __future__ import annotations

import pytest

from repro.radio.irregularity import HackMissModel, IdealRadioModel


class TestIdeal:
    def test_never_misses(self):
        model = IdealRadioModel()
        for k in (1, 2, 10):
            assert model.miss_probability(k) == 0.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            IdealRadioModel().miss_probability(0)


class TestHackMiss:
    def test_single_hack_miss(self):
        model = HackMissModel(p_single=0.03, decay=0.1)
        assert model.miss_probability(1) == 0.03

    def test_geometric_decay(self):
        model = HackMissModel(p_single=0.03, decay=0.1)
        assert model.miss_probability(2) == pytest.approx(0.003)
        assert model.miss_probability(3) == pytest.approx(0.0003)

    def test_superposition_strictly_helps(self):
        """The paper's 'error rate slashes down' observation."""
        model = HackMissModel(p_single=0.05, decay=0.2)
        probs = [model.miss_probability(k) for k in range(1, 8)]
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_properties(self):
        model = HackMissModel(p_single=0.07, decay=0.5)
        assert model.p_single == 0.07
        assert model.decay == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            HackMissModel(p_single=1.5)
        with pytest.raises(ValueError):
            HackMissModel(p_single=-0.1)
        with pytest.raises(ValueError):
            HackMissModel(decay=1.5)
        with pytest.raises(ValueError):
            HackMissModel().miss_probability(0)

    def test_decay_one_means_constant_miss(self):
        model = HackMissModel(p_single=0.1, decay=1.0)
        assert model.miss_probability(5) == pytest.approx(0.1)
