"""Tests for capture-effect models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radio.capture import PowerCaptureModel, ProbabilisticCaptureModel


class TestProbabilistic:
    def test_single_transmission_always_captured(self, rng):
        model = ProbabilisticCaptureModel()
        assert model.select([0.0], rng) == 0

    def test_empty_returns_none(self, rng):
        assert ProbabilisticCaptureModel().select([], rng) is None

    def test_rate_matches_one_over_k(self):
        model = ProbabilisticCaptureModel()
        rng = np.random.default_rng(1)
        captures = sum(
            model.select([0.0] * 4, rng) is not None for _ in range(4000)
        )
        assert captures / 4000 == pytest.approx(0.25, abs=0.02)

    def test_winner_uniform_over_colliders(self):
        model = ProbabilisticCaptureModel(probability=lambda k: 1.0)
        rng = np.random.default_rng(2)
        counts = np.zeros(3)
        for _ in range(3000):
            counts[model.select([0.0] * 3, rng)] += 1
        assert np.all(np.abs(counts / 3000 - 1 / 3) < 0.05)

    def test_custom_probability(self, rng):
        never = ProbabilisticCaptureModel(probability=lambda k: 0.0)
        assert never.select([0.0, 0.0], rng) is None

    def test_invalid_probability_raises(self, rng):
        bad = ProbabilisticCaptureModel(probability=lambda k: 2.0)
        with pytest.raises(ValueError):
            bad.select([0.0, 0.0], rng)


class TestPowerCapture:
    def test_single_always_captured(self, rng):
        assert PowerCaptureModel().select([-70.0], rng) == 0

    def test_empty_returns_none(self, rng):
        assert PowerCaptureModel().select([], rng) is None

    def test_dominant_signal_captured(self, rng):
        model = PowerCaptureModel(sinr_threshold_db=3.0)
        winner = model.select([-50.0, -80.0, -85.0], rng)
        assert winner == 0

    def test_equal_powers_not_captured(self, rng):
        model = PowerCaptureModel(sinr_threshold_db=3.0)
        assert model.select([-70.0, -70.0], rng) is None

    def test_threshold_boundary(self, rng):
        model = PowerCaptureModel(sinr_threshold_db=3.0)
        # 3.1 dB margin over a single interferer -> captured.
        assert model.select([-66.9, -70.0], rng) == 0
        # 2.9 dB margin -> not captured.
        assert model.select([-67.1, -70.0], rng) is None

    def test_aggregate_interference_counts(self, rng):
        model = PowerCaptureModel(sinr_threshold_db=3.0)
        # 6 dB over each of two equal interferers is only 3 dB over their
        # sum: borderline; 5 dB over each is below threshold.
        assert model.select([-64.0, -70.0, -70.0], rng) in (0, None)
        assert model.select([-65.0, -70.0, -70.0], rng) is None

    def test_fading_randomises_outcome(self):
        model = PowerCaptureModel(sinr_threshold_db=3.0, fading_sigma_db=6.0)
        rng = np.random.default_rng(3)
        outcomes = {model.select([-70.0, -70.0], rng) for _ in range(200)}
        assert None in outcomes and (0 in outcomes or 1 in outcomes)

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerCaptureModel(sinr_threshold_db=-1)
        with pytest.raises(ValueError):
            PowerCaptureModel(fading_sigma_db=-1)
