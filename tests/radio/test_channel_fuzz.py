"""Fuzz/property tests for the channel under arbitrary traffic patterns.

Random schedules of transmissions from random radios must never crash
the medium, and its conservation laws must hold: every frame put on air
is accounted for, busy periods are observed consistently by idle
listeners, and HACK counters sum correctly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.radio.cc2420 import Cc2420Radio, RadioState
from repro.radio.channel import Channel
from repro.radio.frames import BROADCAST_ADDR, DataFrame
from repro.sim.kernel import Simulator


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_radios=st.integers(min_value=2, max_value=8),
    n_frames=st.integers(min_value=1, max_value=40),
)
def test_random_traffic_never_crashes_and_conserves_frames(
    seed, n_radios, n_frames
):
    rng = np.random.default_rng(seed)
    sim = Simulator()
    channel = Channel(sim, np.random.default_rng(seed + 1))
    radios = [Cc2420Radio(sim, channel, address=i) for i in range(n_radios)]
    received = [0]
    busy_events = [0]
    for r in radios:
        r.receive_callback = lambda f, k: received.__setitem__(
            0, received[0] + 1
        )
        r.busy_callback = lambda s, e: busy_events.__setitem__(
            0, busy_events[0] + 1
        )

    sent = 0
    for i in range(n_frames):
        delay = float(rng.exponential(500.0))
        sender = radios[int(rng.integers(n_radios))]
        payload_bytes = int(rng.integers(0, 40))
        frame = DataFrame(
            src=sender.address,
            dst=BROADCAST_ADDR,
            seq=i % 256,
            payload_bytes=payload_bytes,
        )

        def send(sender=sender, frame=frame):
            if sender.state is RadioState.RX:
                sender.transmit(frame)

        sim.schedule(delay * (i + 1) / 8.0, send, label=f"fuzz{i}")
    sim.run_until_idle()
    sent = channel.frames_sent

    assert sent <= n_frames
    # Every busy period is seen by at least one idle listener when one
    # exists; with broadcast data frames, receptions never exceed
    # (frames x listeners).
    assert received[0] <= sent * (n_radios - 1)
    assert not channel.cca_busy()
    assert channel.rssi_dbm() == -100.0


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=1, max_value=6),
)
def test_hack_counters_partition_outcomes(seed, k):
    """Deliveries plus misses equals the number of HACK busy periods."""
    from repro.radio.irregularity import HackMissModel

    sim = Simulator()
    channel = Channel(
        sim,
        np.random.default_rng(seed),
        hack_miss=HackMissModel(p_single=0.5, decay=0.8),
    )
    initiator = Cc2420Radio(sim, channel, address=100)
    responders = [Cc2420Radio(sim, channel, address=i) for i in range(k)]
    for r in responders:
        r.set_short_address(0x9000)

    rounds = 10
    for i in range(rounds):
        sim.schedule(
            i * 10_000.0,
            lambda i=i: initiator.transmit(
                DataFrame(src=100, dst=0x9000, seq=i % 256, ack_request=True)
            ),
            label=f"poll{i}",
        )
    sim.run_until_idle()
    assert channel.hack_deliveries + channel.hack_misses == rounds
