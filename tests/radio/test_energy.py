"""Tests for the energy ledger."""

from __future__ import annotations

import pytest

from repro.radio.energy import EnergyLedger, EnergyProfile


def test_profile_lookup():
    p = EnergyProfile()
    assert p.current_ma("rx") == 18.8
    assert p.current_ma("tx") == 17.4
    with pytest.raises(KeyError):
        p.current_ma("warp")


def test_initial_state_validated():
    with pytest.raises(KeyError):
        EnergyLedger(initial_state="bogus")


def test_energy_integration():
    ledger = EnergyLedger(initial_state="rx")
    ledger.transition("tx", 1000.0)  # 1000 us of rx
    ledger.finalize(1000.0)
    # uJ = 18.8 mA * 3 V * 1000 us / 1000
    assert ledger.energy_uj("rx") == pytest.approx(18.8 * 3.0)
    assert ledger.energy_uj("tx") == 0.0


def test_total_accumulates_across_states():
    ledger = EnergyLedger(initial_state="rx")
    ledger.transition("tx", 500.0)
    ledger.transition("rx", 700.0)
    ledger.finalize(1000.0)
    assert ledger.total_uj == pytest.approx(
        18.8 * 3.0 * 0.5 + 17.4 * 3.0 * 0.2 + 18.8 * 3.0 * 0.3
    )


def test_time_accounting():
    ledger = EnergyLedger(initial_state="idle")
    ledger.transition("rx", 100.0)
    ledger.finalize(300.0)
    assert ledger.time_us("idle") == 100.0
    assert ledger.time_us("rx") == 200.0
    assert ledger.time_us("tx") == 0.0


def test_time_cannot_run_backwards():
    ledger = EnergyLedger(initial_state="rx")
    ledger.transition("tx", 100.0)
    with pytest.raises(ValueError):
        ledger.transition("rx", 50.0)


def test_unknown_state_rejected_without_corruption():
    ledger = EnergyLedger(initial_state="rx")
    with pytest.raises(KeyError):
        ledger.transition("bogus", 100.0)
    # State machine untouched by the failed transition.
    assert ledger.state == "rx"


def test_snapshot_is_a_copy():
    ledger = EnergyLedger(initial_state="rx")
    ledger.finalize(100.0)
    snap = ledger.snapshot()
    snap["rx"] = 0.0
    assert ledger.energy_uj("rx") > 0


def test_finalize_idempotent_at_same_time():
    ledger = EnergyLedger(initial_state="rx")
    ledger.finalize(100.0)
    total = ledger.total_uj
    ledger.finalize(100.0)
    assert ledger.total_uj == total


def test_sleep_draws_almost_nothing():
    awake = EnergyLedger(initial_state="rx")
    awake.finalize(1_000_000.0)
    asleep = EnergyLedger(initial_state="sleep")
    asleep.finalize(1_000_000.0)
    assert asleep.total_uj < awake.total_uj / 1000
