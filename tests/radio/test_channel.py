"""Tests for the shared broadcast medium: delivery, superposition,
collision and CCA semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.radio.capture import ProbabilisticCaptureModel
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.channel import Channel
from repro.radio.frames import AckFrame, BROADCAST_ADDR, DataFrame
from repro.radio.irregularity import HackMissModel
from repro.sim.kernel import Simulator


def build(n_radios=3, seed=0, **channel_kwargs):
    sim = Simulator()
    channel = Channel(sim, np.random.default_rng(seed), **channel_kwargs)
    radios = [Cc2420Radio(sim, channel, address=i) for i in range(n_radios)]
    return sim, channel, radios


def collect_frames(radio):
    received = []
    radio.receive_callback = lambda frame, k: received.append((frame, k))
    return received


def collect_acks(radio):
    received = []
    radio.ack_callback = lambda ack, k: received.append((ack, k))
    return received


def test_lone_broadcast_delivered_to_all_listeners():
    sim, channel, radios = build(3)
    rx1 = collect_frames(radios[1])
    rx2 = collect_frames(radios[2])
    frame = DataFrame(src=0, dst=BROADCAST_ADDR, seq=1, payload_bytes=4)
    radios[0].transmit(frame)
    sim.run()
    assert len(rx1) == 1 and len(rx2) == 1
    assert rx1[0][0].seq == 1


def test_sender_does_not_hear_itself():
    sim, channel, radios = build(2)
    rx0 = collect_frames(radios[0])
    radios[0].transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=1))
    sim.run()
    assert rx0 == []


def test_duplicate_addresses_rejected():
    sim = Simulator()
    channel = Channel(sim, np.random.default_rng(0))
    Cc2420Radio(sim, channel, address=5)
    with pytest.raises(ValueError):
        Cc2420Radio(sim, channel, address=5)


def test_unattached_sender_rejected():
    sim, channel, radios = build(1)
    other_sim = Simulator()
    other_channel = Channel(other_sim, np.random.default_rng(0))
    stranger = Cc2420Radio(other_sim, other_channel, address=9)
    with pytest.raises(ValueError):
        channel.transmit(stranger, DataFrame(src=9, dst=BROADCAST_ADDR, seq=0))


def test_cca_busy_during_transmission():
    sim, channel, radios = build(2)
    assert not channel.cca_busy()
    radios[0].transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0))
    assert channel.cca_busy()
    sim.run()
    assert not channel.cca_busy()


def test_rssi_reflects_activity():
    sim, channel, radios = build(2)
    assert channel.rssi_dbm() == -100.0
    radios[0].transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0))
    assert channel.rssi_dbm() == pytest.approx(0.0)  # tx power 0 dBm
    sim.run()


def test_activity_in_window():
    sim, channel, radios = build(2)
    radios[0].transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0))
    sim.run()
    end = sim.now
    assert channel.activity_in(0.0, end)
    assert not channel.activity_in(end + 1, end + 100)
    with pytest.raises(ValueError):
        channel.activity_in(10.0, 5.0)


def test_busy_notification_fires_for_undecodable_collision():
    sim, channel, radios = build(3, capture_model=ProbabilisticCaptureModel(lambda k: 0.0))
    busy = []
    radios[2].busy_callback = lambda s, e: busy.append((s, e))
    rx = collect_frames(radios[2])
    radios[0].transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0, payload_bytes=4))
    radios[1].transmit(DataFrame(src=1, dst=BROADCAST_ADDR, seq=1, payload_bytes=4))
    sim.run()
    assert len(busy) == 1
    assert rx == []  # collided, never captured


def test_collision_capture_delivers_one_frame():
    sim, channel, radios = build(
        3, capture_model=ProbabilisticCaptureModel(lambda k: 1.0)
    )
    rx = collect_frames(radios[2])
    radios[0].transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0, payload_bytes=4))
    radios[1].transmit(DataFrame(src=1, dst=BROADCAST_ADDR, seq=1, payload_bytes=4))
    sim.run()
    assert len(rx) == 1
    assert rx[0][0].seq in (0, 1)


def test_identical_hack_superposition_decoded_as_one():
    """Two radios auto-acking the same poll produce one decodable ACK with
    superposition count 2 at the initiator."""
    sim, channel, radios = build(3)
    initiator, a, b = radios
    acks = collect_acks(initiator)
    # Both receivers share the ephemeral address 0x9000.
    a.set_short_address(0x9000)
    b.set_short_address(0x9000)
    initiator.transmit(
        DataFrame(src=0, dst=0x9000, seq=42, ack_request=True)
    )
    sim.run()
    assert len(acks) == 1
    ack, k = acks[0]
    assert isinstance(ack, AckFrame)
    assert ack.seq == 42
    assert k == 2


def test_hack_miss_model_suppresses_superposition():
    sim, channel, radios = build(
        3, hack_miss=HackMissModel(p_single=1.0, decay=1.0)
    )
    initiator, a, b = radios
    acks = collect_acks(initiator)
    a.set_short_address(0x9000)
    b.set_short_address(0x9000)
    initiator.transmit(DataFrame(src=0, dst=0x9000, seq=1, ack_request=True))
    sim.run()
    assert acks == []
    assert channel.hack_misses == 1
    assert channel.hack_deliveries == 0


def test_hack_counters_track_deliveries():
    sim, channel, radios = build(2)
    initiator, a = radios
    collect_acks(initiator)
    a.set_short_address(0x9000)
    initiator.transmit(DataFrame(src=0, dst=0x9000, seq=1, ack_request=True))
    sim.run()
    assert channel.hack_deliveries >= 1
    assert channel.hack_misses == 0


def test_frames_sent_counter():
    sim, channel, radios = build(2)
    radios[0].transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0))
    sim.run()
    assert channel.frames_sent == 1


def test_transmitting_radio_misses_concurrent_frame():
    """Half duplex: a radio cannot receive while its own frame is on air."""
    sim, channel, radios = build(2)
    rx1 = collect_frames(radios[1])
    # Same start time, same duration: both transmitting, neither receives.
    radios[0].transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0, payload_bytes=4))
    radios[1].transmit(DataFrame(src=1, dst=BROADCAST_ADDR, seq=1, payload_bytes=4))
    sim.run()
    assert rx1 == []


def test_partially_overlapping_frames_form_one_busy_period():
    """A frame starting mid-way through another joins the same cluster:
    listeners get exactly one busy notification spanning both."""
    sim, channel, radios = build(3, capture_model=ProbabilisticCaptureModel(lambda k: 0.0))
    busy = []
    radios[2].busy_callback = lambda s, e: busy.append((s, e))
    long_frame = DataFrame(src=0, dst=BROADCAST_ADDR, seq=0, payload_bytes=60)
    short_frame = DataFrame(src=1, dst=BROADCAST_ADDR, seq=1, payload_bytes=4)
    radios[0].transmit(long_frame)
    # Start the second frame while the first is still on the air.
    sim.schedule(200.0, lambda: radios[1].transmit(short_frame))
    sim.run()
    assert len(busy) == 1
    start, end = busy[0]
    assert start == 0.0
    assert end == pytest.approx(
        channel.timing.frame_airtime_us(long_frame.mpdu_bytes)
    )


def test_rssi_aggregates_simultaneous_transmissions():
    sim, channel, radios = build(3)
    radios[0].transmit(DataFrame(src=0, dst=BROADCAST_ADDR, seq=0, payload_bytes=20))
    radios[1].transmit(DataFrame(src=1, dst=BROADCAST_ADDR, seq=1, payload_bytes=20))
    # Two 0 dBm signals sum to ~3 dBm.
    assert channel.rssi_dbm() == pytest.approx(3.01, abs=0.05)
    sim.run()


def test_history_pruning_keeps_recent_activity_visible():
    sim, channel, radios = build(2)
    # Force many busy periods to trigger the history cap logic safely.
    for i in range(50):
        sim.schedule(
            i * 2000.0,
            lambda i=i: radios[0].transmit(
                DataFrame(src=0, dst=BROADCAST_ADDR, seq=i % 256)
            ),
        )
    sim.run()
    last_start = 49 * 2000.0
    assert channel.activity_in(last_start, last_start + 500.0)
