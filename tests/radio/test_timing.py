"""Tests for 802.15.4 timing constants."""

from __future__ import annotations

import pytest

from repro.radio.timing import DEFAULT_TIMING, PhyTiming


def test_default_symbol_rate():
    t = PhyTiming()
    assert t.symbol_us == 16.0
    assert t.byte_us == 32.0


def test_turnaround_is_192us():
    assert PhyTiming().turnaround_us == 192.0


def test_backoff_period_is_320us():
    assert PhyTiming().backoff_period_us == 320.0


def test_ack_wait_is_864us():
    assert PhyTiming().ack_wait_us == 864.0


def test_frame_airtime_includes_sync_header():
    t = PhyTiming()
    # 5 preamble+SFD + 1 length + 5 ACK MPDU = 11 bytes = 352 us
    assert t.frame_airtime_us(5) == 352.0


def test_frame_airtime_scales_linearly():
    t = PhyTiming()
    assert t.frame_airtime_us(20) - t.frame_airtime_us(10) == 10 * t.byte_us


def test_frame_airtime_bounds():
    t = PhyTiming()
    with pytest.raises(ValueError):
        t.frame_airtime_us(-1)
    with pytest.raises(ValueError):
        t.frame_airtime_us(128)
    assert t.frame_airtime_us(127) > 0


def test_validation():
    with pytest.raises(ValueError):
        PhyTiming(symbol_us=0)
    with pytest.raises(ValueError):
        PhyTiming(symbols_per_byte=0)


def test_default_instance_shared():
    assert DEFAULT_TIMING.symbol_us == 16.0


def test_ack_fits_in_ack_wait():
    """Turnaround + ACK air time must fit inside the ACK-wait window,
    otherwise backcast could never see its HACK."""
    t = PhyTiming()
    assert t.turnaround_us + t.frame_airtime_us(5) < t.ack_wait_us
