"""Documentation quality gate: every public item carries a docstring.

Walks every module under :mod:`repro` and asserts that public modules,
classes, functions and methods are documented -- the "doc comments on
every public item" deliverable, enforced mechanically.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro

#: Modules exempt from the docstring gate.  Empty on purpose: every
#: package shipped today -- including :mod:`repro.lint` -- is covered.
#: Additions require a justification comment.
SKIP_MODULES: frozenset[str] = frozenset()


def _iter_modules():
    """Import and yield every module under ``repro``, loudly.

    ``pkgutil.walk_packages`` swallows import errors by default, which
    would silently shrink the coverage surface; raising from ``onerror``
    turns a broken module into a test failure instead of a skip.
    """

    def _fail(name):
        raise ImportError(f"doc-coverage walk could not import {name}")

    yield repro
    for info in pkgutil.walk_packages(
        repro.__path__, prefix="repro.", onerror=_fail
    ):
        if info.name in SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


def test_lint_package_is_covered():
    """Regression guard: the walk sees the new lint package (and nothing
    is silently skipped -- the skip list is explicit and empty)."""
    names = {m.__name__ for m in _iter_modules()}
    assert "repro.lint" in names
    assert "repro.lint.engine" in names
    assert "repro.lint.rules" in names
    assert not SKIP_MODULES


def _public_members(obj):
    for name, member in inspect.getmembers(obj):
        if name.startswith("_"):
            continue
        yield name, member


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _iter_modules() if not inspect.getdoc(m)]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing: list[str] = []
    for module in _iter_modules():
        for name, member in _public_members(module):
            if inspect.isclass(member) or inspect.isfunction(member):
                if getattr(member, "__module__", "").startswith("repro"):
                    if not inspect.getdoc(member):
                        missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {sorted(set(missing))}"


def test_every_public_method_documented():
    missing: list[str] = []
    for module in _iter_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            if not getattr(cls, "__module__", "").startswith("repro"):
                continue
            if cls.__module__ != module.__name__:
                continue  # re-export; checked at its home module
            for name, member in _public_members(cls):
                if inspect.isfunction(member) or isinstance(
                    member, property
                ):
                    target = member.fget if isinstance(member, property) else member
                    if target is None:
                        continue
                    if getattr(target, "__module__", "").startswith("repro"):
                        if not inspect.getdoc(member):
                            missing.append(
                                f"{module.__name__}.{cls_name}.{name}"
                            )
    assert not missing, f"undocumented public methods: {sorted(set(missing))}"
