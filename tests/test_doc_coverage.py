"""Documentation quality gate: every public item carries a docstring.

Walks every module under :mod:`repro` and asserts that public modules,
classes, functions and methods are documented -- the "doc comments on
every public item" deliverable, enforced mechanically.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _public_members(obj):
    for name, member in inspect.getmembers(obj):
        if name.startswith("_"):
            continue
        yield name, member


def test_every_module_has_docstring():
    missing = [m.__name__ for m in _iter_modules() if not inspect.getdoc(m)]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing: list[str] = []
    for module in _iter_modules():
        for name, member in _public_members(module):
            if inspect.isclass(member) or inspect.isfunction(member):
                if getattr(member, "__module__", "").startswith("repro"):
                    if not inspect.getdoc(member):
                        missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {sorted(set(missing))}"


def test_every_public_method_documented():
    missing: list[str] = []
    for module in _iter_modules():
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            if not getattr(cls, "__module__", "").startswith("repro"):
                continue
            if cls.__module__ != module.__name__:
                continue  # re-export; checked at its home module
            for name, member in _public_members(cls):
                if inspect.isfunction(member) or isinstance(
                    member, property
                ):
                    target = member.fget if isinstance(member, property) else member
                    if target is None:
                        continue
                    if getattr(target, "__module__", "").startswith("repro"):
                        if not inspect.getdoc(member):
                            missing.append(
                                f"{module.__name__}.{cls_name}.{name}"
                            )
    assert not missing, f"undocumented public methods: {sorted(set(missing))}"
