"""Admission control: token buckets, pending caps, drain shedding."""

from __future__ import annotations

import pytest

from repro.obs import enable_metrics, get_registry
from repro.serve.admission import (
    REASON_DRAINING,
    REASON_QUEUE_FULL,
    REASON_RATE_LIMITED,
    AdmissionController,
    AdmissionPolicy,
    TokenBucket,
)
from repro.serve.request import QueryRequest


class _Clock:
    """A settable monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _request(tenant: str = "acme", rid: str = "q1") -> QueryRequest:
    return QueryRequest(id=rid, tenant=tenant, n=64, x=20, threshold=8)


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = _Clock()
        bucket = TokenBucket(2.0, 3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]
        clock.advance(0.5)  # 1 token back at 2/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = _Clock()
        bucket = TokenBucket(100.0, 2.0, clock=clock)
        clock.advance(60.0)
        assert [bucket.try_acquire() for _ in range(3)] == [True, True, False]

    @pytest.mark.parametrize("rate,burst", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0)])
    def test_bad_configuration_rejected(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate, burst)


class TestAdmissionController:
    def test_pending_cap_sheds_queue_full(self):
        ctl = AdmissionController(AdmissionPolicy(max_pending=2))
        assert ctl.admit(_request()) is None
        assert ctl.admit(_request(rid="q2")) is None
        assert ctl.admit(_request(rid="q3")) == REASON_QUEUE_FULL
        ctl.release()
        assert ctl.admit(_request(rid="q4")) is None
        assert ctl.pending == 2

    def test_per_tenant_rate_limit_is_isolated(self):
        clock = _Clock()
        ctl = AdmissionController(
            AdmissionPolicy(max_pending=100, tenant_rate=1.0, tenant_burst=2.0),
            clock=clock,
        )
        assert ctl.admit(_request("a")) is None
        assert ctl.admit(_request("a")) is None
        assert ctl.admit(_request("a")) == REASON_RATE_LIMITED
        # Tenant b has its own bucket.
        assert ctl.admit(_request("b")) is None
        clock.advance(1.0)
        assert ctl.admit(_request("a")) is None

    def test_zero_rate_disables_rate_limiting(self):
        ctl = AdmissionController(AdmissionPolicy(max_pending=1000))
        assert all(
            ctl.admit(_request(rid=f"q{i}")) is None for i in range(500)
        )

    def test_draining_sheds_everything(self):
        ctl = AdmissionController(AdmissionPolicy())
        ctl.begin_drain()
        assert ctl.admit(_request()) == REASON_DRAINING
        assert ctl.pending == 0

    def test_release_without_admit_is_a_bug(self):
        ctl = AdmissionController(AdmissionPolicy())
        with pytest.raises(RuntimeError):
            ctl.release()

    def test_rejections_and_admissions_are_counted(self):
        enable_metrics()
        reg = get_registry()
        before_admitted = reg.snapshot().counter("serve.admitted")
        clock = _Clock()
        ctl = AdmissionController(
            AdmissionPolicy(max_pending=1, tenant_rate=1.0, tenant_burst=1.0),
            clock=clock,
        )
        assert ctl.admit(_request()) is None
        assert ctl.admit(_request(rid="q2")) == REASON_RATE_LIMITED
        clock.advance(1.0)
        assert ctl.admit(_request(rid="q3")) == REASON_QUEUE_FULL
        ctl.begin_drain()
        assert ctl.admit(_request(rid="q4")) == REASON_DRAINING
        snap = reg.snapshot()
        assert snap.counter("serve.admitted") - before_admitted == 1
        assert snap.counter("serve.rejected.rate_limited") == 1
        assert snap.counter("serve.rejected.queue_full") == 1
        assert snap.counter("serve.rejected.draining") == 1
