"""Wire-level validation of :class:`repro.serve.request.QueryRequest`."""

from __future__ import annotations

import pytest

from repro.serve.request import (
    MAX_POPULATION,
    MAX_RUNS_PER_REQUEST,
    QueryRequest,
    RequestError,
)


def _wire(**overrides):
    base = {"id": "q1", "n": 64, "x": 20, "threshold": 8}
    base.update(overrides)
    return base


class TestFromWire:
    def test_minimal_request_fills_defaults(self):
        req = QueryRequest.from_wire(_wire())
        assert req.id == "q1"
        assert req.tenant == "anonymous"
        assert req.runs == 1
        assert req.algorithm == "2tbins"
        assert req.collision_model == "1+"
        assert req.seed == 0
        assert req.reliable is None

    def test_full_request_round_trips(self):
        req = QueryRequest.from_wire(
            _wire(
                tenant="acme",
                runs=32,
                seed=99,
                algorithm="exponential",
                collision_model="2+",
                reliable="krepeat",
            )
        )
        assert req.tenant == "acme"
        assert req.runs == 32
        assert req.seed == 99
        assert req.algorithm == "exponential"
        assert req.collision_model == "2+"
        assert req.reliable == "krepeat"

    @pytest.mark.parametrize("missing", ["id", "n", "x", "threshold"])
    def test_missing_required_fields(self, missing):
        wire = _wire()
        del wire[missing]
        with pytest.raises(RequestError) as info:
            QueryRequest.from_wire(wire)
        assert info.value.code == "missing_field"

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n": 0},
            {"n": MAX_POPULATION + 1},
            {"x": -1},
            {"x": 65},
            {"threshold": -1},
            {"runs": 0},
            {"runs": MAX_RUNS_PER_REQUEST + 1},
            {"n": "64"},
            {"n": True},
            {"seed": 1.5},
            {"reliable": "always"},
            {"collision_model": "k+"},
            {"algorithm": "no-such-algo"},
            {"algorithm": "oracle"},
            {"algorithm": "counting"},
        ],
    )
    def test_out_of_bounds_and_mistyped_fields(self, overrides):
        with pytest.raises(RequestError):
            QueryRequest.from_wire(_wire(**overrides))

    def test_non_mapping_payload(self):
        with pytest.raises(RequestError) as info:
            QueryRequest.from_wire(["not", "a", "dict"])
        assert info.value.code == "bad_request"


class TestCoalesceKey:
    def test_seed_and_runs_do_not_split_groups(self):
        a = QueryRequest.from_wire(_wire(seed=1, runs=4))
        b = QueryRequest.from_wire(_wire(id="q2", seed=2, runs=9))
        assert a.coalesce_key == b.coalesce_key

    @pytest.mark.parametrize(
        "overrides",
        [
            {"n": 65},
            {"x": 21},
            {"threshold": 9},
            {"algorithm": "exponential"},
            {"collision_model": "2+"},
            {"reliable": "krepeat"},
        ],
    )
    def test_shape_changes_split_groups(self, overrides):
        base = QueryRequest.from_wire(_wire())
        other = QueryRequest.from_wire(_wire(id="q2", **overrides))
        assert base.coalesce_key != other.coalesce_key

    def test_vectorizable_flags(self):
        assert QueryRequest.from_wire(_wire()).vectorizable
        assert not QueryRequest.from_wire(_wire(reliable="krepeat")).vectorizable
        assert not QueryRequest.from_wire(_wire(algorithm="abns")).vectorizable
