"""End-to-end service tests over real TCP (in-process event loop)."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsSnapshot
from repro.serve.client import ServeClient
from repro.serve.executor import execute_group
from repro.serve.request import QueryRequest
from repro.serve.server import ServeConfig, serve_in_thread


def _query(rid: str, *, seed: int = 0, runs: int = 2, **overrides) -> dict:
    payload = {
        "op": "query",
        "id": rid,
        "tenant": "t",
        "n": 64,
        "x": 20,
        "threshold": 8,
        "runs": runs,
        "seed": seed,
    }
    payload.update(overrides)
    return payload


@pytest.fixture
def service():
    """A running service on a free port, drained on teardown."""
    with serve_in_thread(ServeConfig(port=0, workers=2)) as handle:
        yield handle


class TestProtocol:
    def test_ping(self, service):
        with ServeClient("127.0.0.1", service.port) as client:
            reply = client.request({"op": "ping", "id": "p1"})
        assert reply == {"id": "p1", "ok": True, "op": "ping"}

    def test_query_answers_match_direct_execution(self, service):
        wire = _query("q1", seed=42, runs=8)
        with ServeClient("127.0.0.1", service.port) as client:
            reply = client.request(wire)
        assert reply["ok"] and reply["status"] == 200
        [expected] = execute_group(
            [QueryRequest.from_wire(wire)], vectorize=False
        )
        assert tuple(reply["decisions"]) == expected.decisions
        assert tuple(reply["queries"]) == expected.queries
        assert reply["exact"] is True

    def test_pipelined_requests_all_answered(self, service):
        wires = [_query(f"q{i}", seed=i) for i in range(10)]
        with ServeClient("127.0.0.1", service.port) as client:
            for wire in wires:
                client.send(wire)
            replies = {client.recv()["id"] for _ in wires}
        assert replies == {w["id"] for w in wires}

    def test_malformed_json_gets_400(self, service):
        with ServeClient("127.0.0.1", service.port) as client:
            client._sock.sendall(b"this is not json\n")
            reply = client.recv()
        assert not reply["ok"]
        assert reply["status"] == 400
        assert reply["error"]["code"] == "bad_json"

    def test_invalid_query_gets_400_with_field_detail(self, service):
        with ServeClient("127.0.0.1", service.port) as client:
            reply = client.request(_query("q1", n=0))
        assert reply["status"] == 400
        assert "n must be" in reply["error"]["message"]

    def test_unknown_op_gets_400(self, service):
        with ServeClient("127.0.0.1", service.port) as client:
            reply = client.request({"op": "teleport", "id": "t1"})
        assert reply["status"] == 400
        assert reply["error"]["code"] == "bad_op"


class TestRateLimitOverTheWire:
    def test_429_rejections_count_in_metrics(self):
        config = ServeConfig(
            port=0, tenant_rate=0.001, tenant_burst=2.0, workers=1
        )
        with serve_in_thread(config) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                replies = [
                    client.request(_query(f"q{i}", seed=i)) for i in range(5)
                ]
                metrics = client.request({"op": "metrics"})
        shed = [r for r in replies if not r["ok"]]
        served = [r for r in replies if r["ok"]]
        assert len(served) == 2  # the burst
        assert len(shed) == 3
        assert all(r["status"] == 429 for r in shed)
        assert all(r["error"]["code"] == "rate_limited" for r in shed)
        counters = metrics["metrics"]["counters"]
        assert counters["serve.admitted"] == 2
        assert counters["serve.rejected.rate_limited"] == 3


class TestMetricsEndpoint:
    def test_snapshot_round_trips_and_merges(self, service):
        """The endpoint serves a real MetricsSnapshot: from_dict must
        invert the wire payload, and merging two snapshots must be
        exact on the serve counters."""
        with ServeClient("127.0.0.1", service.port) as client:
            client.request(_query("q1", seed=1))
            first = client.request({"op": "metrics"})["metrics"]
            client.request(_query("q2", seed=2))
            second = client.request({"op": "metrics"})["metrics"]
        snap1 = MetricsSnapshot.from_dict(first)
        snap2 = MetricsSnapshot.from_dict(second)
        assert snap1.to_dict() == first
        assert snap2.counter("serve.completed") == 2
        merged = snap1.merge(snap2)
        assert merged.counter("serve.completed") == 3
        assert (
            merged.histograms["serve.latency_ms"].total
            == snap1.histograms["serve.latency_ms"].total
            + snap2.histograms["serve.latency_ms"].total
        )

    def test_kernel_model_counters_flow_through(self, service):
        with ServeClient("127.0.0.1", service.port) as client:
            reply = client.request(_query("q1", seed=3, runs=4))
            metrics = client.request({"op": "metrics"})["metrics"]
        assert metrics["counters"]["model.queries"] == sum(reply["queries"])


class TestShutdownOp:
    def test_shutdown_op_drains_and_stops(self):
        handle = serve_in_thread(ServeConfig(port=0, workers=1))
        with ServeClient("127.0.0.1", handle.port) as client:
            reply = client.request({"op": "shutdown", "id": "s1"})
            assert reply["ok"]
        handle._thread.join(timeout=10.0)
        assert not handle._thread.is_alive()
