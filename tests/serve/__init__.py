"""Tests for the threshold-query service (:mod:`repro.serve`)."""
