"""Scheduler behaviour: coalescing, ordering, drain, failure delivery."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import enable_metrics, get_registry
from repro.serve.request import QueryRequest
from repro.serve.scheduler import BatchScheduler


def _request(rid: str, *, seed: int = 0, runs: int = 2, **overrides) -> QueryRequest:
    fields = {
        "id": rid,
        "tenant": "t",
        "n": 64,
        "x": 20,
        "threshold": 8,
        "runs": runs,
        "seed": seed,
    }
    fields.update(overrides)
    return QueryRequest(**fields)


def _run(coro):
    """Run one scheduler scenario on a fresh event loop."""
    return asyncio.run(coro)


class TestCoalescing:
    def test_queued_compatible_requests_share_one_batch(self):
        """Enqueue before start: the first claim must sweep the queue."""
        enable_metrics()
        reg = get_registry()
        batches_before = reg.snapshot().counter("serve.batches")

        async def scenario():
            scheduler = BatchScheduler(workers=1)
            futures = [
                scheduler.submit(_request(f"q{i}", seed=i)) for i in range(5)
            ]
            scheduler.start()
            outcomes = await asyncio.gather(*futures)
            await scheduler.drain()
            return outcomes

        outcomes = _run(scenario())
        assert all(o.batched for o in outcomes)
        assert reg.snapshot().counter("serve.batches") - batches_before == 1

    def test_incompatible_requests_split_batches(self):
        enable_metrics()
        reg = get_registry()
        batches_before = reg.snapshot().counter("serve.batches")

        async def scenario():
            scheduler = BatchScheduler(workers=1)
            futures = [
                scheduler.submit(_request("a1", seed=1)),
                scheduler.submit(_request("b1", seed=2, threshold=9)),
                scheduler.submit(_request("a2", seed=3)),
            ]
            scheduler.start()
            outcomes = await asyncio.gather(*futures)
            await scheduler.drain()
            return outcomes

        outcomes = _run(scenario())
        assert len(outcomes) == 3
        # Two distinct coalesce keys -> exactly two executed batches,
        # with a1/a2 sharing one despite b1 sitting between them.
        assert reg.snapshot().counter("serve.batches") - batches_before == 2

    def test_max_batch_runs_caps_a_group(self):
        enable_metrics()
        reg = get_registry()
        batches_before = reg.snapshot().counter("serve.batches")

        async def scenario():
            scheduler = BatchScheduler(workers=1, max_batch_runs=5)
            futures = [
                scheduler.submit(_request(f"q{i}", seed=i, runs=3))
                for i in range(3)
            ]
            scheduler.start()
            outcomes = await asyncio.gather(*futures)
            await scheduler.drain()
            return outcomes

        _run(scenario())
        # 3 + 3 + 3 runs under a 5-run cap: no single batch may hold
        # more than one 3-run request's sibling -> at least two batches.
        assert reg.snapshot().counter("serve.batches") - batches_before >= 2

    def test_coalesced_answers_match_scalar_oracle(self):
        async def scenario(vectorize):
            scheduler = BatchScheduler(workers=1, vectorize=vectorize)
            futures = [
                scheduler.submit(_request(f"q{i}", seed=10 + i, runs=3))
                for i in range(4)
            ]
            scheduler.start()
            outcomes = await asyncio.gather(*futures)
            await scheduler.drain()
            return outcomes

        fast = _run(scenario(True))
        oracle = _run(scenario(False))
        for got, want in zip(fast, oracle):
            assert got.decisions == want.decisions
            assert got.queries == want.queries


class TestLifecycle:
    def test_drain_finishes_queued_work(self):
        async def scenario():
            scheduler = BatchScheduler(workers=2)
            futures = [
                scheduler.submit(_request(f"q{i}", seed=i)) for i in range(6)
            ]
            scheduler.start()
            await scheduler.drain()
            return futures

        futures = _run(scenario())
        assert all(f.done() and f.exception() is None for f in futures)

    def test_submit_after_drain_fails_fast(self):
        async def scenario():
            scheduler = BatchScheduler(workers=1)
            scheduler.start()
            await scheduler.drain()
            with pytest.raises(RuntimeError, match="draining"):
                scheduler.submit(_request("late"))

        _run(scenario())

    def test_double_start_rejected(self):
        async def scenario():
            scheduler = BatchScheduler(workers=1)
            scheduler.start()
            try:
                with pytest.raises(RuntimeError, match="already started"):
                    scheduler.start()
            finally:
                await scheduler.drain()

        _run(scenario())

    def test_latency_histogram_observes_each_request(self):
        enable_metrics()
        reg = get_registry()

        async def scenario():
            scheduler = BatchScheduler(workers=1)
            futures = [
                scheduler.submit(_request(f"q{i}", seed=i)) for i in range(3)
            ]
            scheduler.start()
            await asyncio.gather(*futures)
            await scheduler.drain()

        before = reg.snapshot().histograms.get("serve.latency_ms")
        count_before = before.total if before is not None else 0
        _run(scenario())
        after = reg.snapshot().histograms["serve.latency_ms"]
        assert after.total - count_before == 3


class TestFailureDelivery:
    def test_executor_exception_reaches_every_future(self, monkeypatch):
        from repro.serve import scheduler as scheduler_mod

        def _boom(requests, *, vectorize):
            raise RuntimeError("executor exploded")

        monkeypatch.setattr(scheduler_mod, "execute_group", _boom)

        async def scenario():
            scheduler = BatchScheduler(workers=1)
            futures = [
                scheduler.submit(_request(f"q{i}", seed=i)) for i in range(3)
            ]
            scheduler.start()
            results = await asyncio.gather(*futures, return_exceptions=True)
            await scheduler.drain()
            return results

        results = _run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)
