"""Coalesced execution must be invisible in the answers, bit for bit."""

from __future__ import annotations

import pytest

from repro.serve.executor import execute_group
from repro.serve.request import QueryRequest


def _request(rid: str, *, seed: int, runs: int = 3, **overrides) -> QueryRequest:
    fields = {
        "id": rid,
        "tenant": "t",
        "n": 64,
        "x": 20,
        "threshold": 8,
        "runs": runs,
        "seed": seed,
    }
    fields.update(overrides)
    return QueryRequest(**fields)


class TestBitIdentity:
    @pytest.mark.parametrize("algorithm", ["2tbins", "exponential"])
    @pytest.mark.parametrize("collision_model", ["1+", "2+"])
    def test_coalesced_equals_solo_equals_scalar(
        self, algorithm, collision_model
    ):
        """The acceptance-criterion identity: batch composition never
        changes a request's answers, and the vectorized kernel matches
        per-query scalar execution under fixed seeds."""
        requests = [
            _request(
                f"q{i}",
                seed=100 + i,
                runs=2 + i,
                algorithm=algorithm,
                collision_model=collision_model,
            )
            for i in range(4)
        ]
        coalesced = execute_group(requests)
        solo = [execute_group([r])[0] for r in requests]
        scalar = [execute_group([r], vectorize=False)[0] for r in requests]
        assert all(o.batched for o in coalesced)
        assert not any(o.batched for o in scalar)
        for got, alone, oracle in zip(coalesced, solo, scalar):
            assert got.decisions == alone.decisions == oracle.decisions
            assert got.queries == alone.queries == oracle.queries
            assert got.exact and alone.exact and oracle.exact

    def test_group_order_does_not_change_answers(self):
        requests = [_request(f"q{i}", seed=7 * i, runs=4) for i in range(3)]
        forward = execute_group(requests)
        backward = execute_group(list(reversed(requests)))
        for i, outcome in enumerate(forward):
            assert outcome.decisions == backward[2 - i].decisions
            assert outcome.queries == backward[2 - i].queries

    def test_matches_the_public_batch_api(self):
        """One served request == one threshold_query_batch call."""
        from repro.api import threshold_query_batch

        request = _request("q0", seed=42, runs=16)
        [outcome] = execute_group([request])
        reference = threshold_query_batch(
            request.n,
            request.x,
            request.threshold,
            runs=request.runs,
            algorithm=request.algorithm,
            collision_model=request.collision_model,
            seed=request.seed,
        )
        assert outcome.decisions == tuple(bool(d) for d in reference.decisions)
        assert outcome.queries == tuple(int(q) for q in reference.queries)


class TestScalarDegradation:
    def test_reliable_requests_take_the_scalar_path(self):
        request = _request("q0", seed=5, runs=4, reliable="krepeat")
        [outcome] = execute_group([request])
        assert not outcome.batched
        assert outcome.exact
        assert len(outcome.decisions) == 4

    def test_reliable_confirmations_cost_more_queries(self):
        plain = execute_group([_request("q0", seed=5, runs=8)])[0]
        confirmed = execute_group(
            [_request("q0", seed=5, runs=8, reliable="krepeat")]
        )[0]
        assert sum(confirmed.queries) > sum(plain.queries)

    def test_scalar_only_algorithms_fall_back(self):
        request = _request("q0", seed=5, runs=3, algorithm="abns")
        [outcome] = execute_group([request])
        assert not outcome.batched
        assert outcome.exact


class TestGroupValidation:
    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            execute_group([])

    def test_mixed_coalesce_keys_rejected(self):
        with pytest.raises(ValueError, match="coalesce-key mismatch"):
            execute_group(
                [_request("a", seed=1), _request("b", seed=2, threshold=9)]
            )

    def test_probabilistic_scheme_reports_inexact(self):
        request = _request(
            "q0", seed=3, runs=2, n=128, x=100, threshold=64,
            algorithm="prob-threshold",
        )
        [outcome] = execute_group([request])
        assert not outcome.exact
