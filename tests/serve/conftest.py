"""Shared fixtures: keep the process-wide metrics registry clean.

The service enables the default :mod:`repro.obs` registry (that is the
point of its ``metrics`` endpoint), which would otherwise leak an
enabled, non-zero registry into unrelated tests.  Every test in this
package runs inside a reset/disable bracket.
"""

from __future__ import annotations

import pytest

from repro.obs import disable_metrics, metrics_enabled, reset_metrics


@pytest.fixture(autouse=True)
def _clean_metrics_registry():
    """Zero and disable the default registry around each serve test."""
    was_enabled = metrics_enabled()
    reset_metrics()
    yield
    reset_metrics()
    if not was_enabled:
        disable_metrics()
