"""Wire-protocol edge cases: hostile lines, hardened connections."""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.obs import enable_metrics, get_registry
from repro.serve.client import ServeClient
from repro.serve.server import ServeConfig, serve_in_thread

#: A small line cap so oversized-line tests stay cheap.
CAP = 256


def _query(rid: str, *, seed: int = 0, **overrides) -> dict:
    payload = {
        "op": "query",
        "id": rid,
        "tenant": "t",
        "n": 64,
        "x": 20,
        "threshold": 8,
        "runs": 1,
        "seed": seed,
    }
    payload.update(overrides)
    return payload


def _padded_line(content_bytes: int) -> bytes:
    """A valid ping line whose content is exactly ``content_bytes`` long."""
    skeleton = json.dumps({"op": "ping", "id": "edge", "pad": ""})
    filler = content_bytes - len(skeleton)
    assert filler >= 0, "content_bytes too small for the skeleton"
    line = json.dumps({"op": "ping", "id": "edge", "pad": "a" * filler})
    assert len(line) == content_bytes
    return line.encode("utf-8") + b"\n"


@pytest.fixture
def service():
    """A hardened service: tiny line cap, small connection budget."""
    config = ServeConfig(
        port=0,
        workers=1,
        max_line_bytes=CAP,
        max_connections=2,
        idle_timeout=30.0,
        read_deadline=30.0,
    )
    with serve_in_thread(config) as handle:
        yield handle


class TestLineCap:
    def test_line_at_exactly_the_cap_is_served(self, service):
        with ServeClient("127.0.0.1", service.port) as client:
            client._sock.sendall(_padded_line(CAP))
            reply = client.recv()
        assert reply["ok"] and reply["op"] == "ping"

    def test_one_byte_over_the_cap_gets_400_and_connection_survives(
        self, service
    ):
        enable_metrics()
        reg = get_registry()
        with ServeClient("127.0.0.1", service.port) as client:
            client._sock.sendall(_padded_line(CAP + 1))
            reply = client.recv()
            assert not reply["ok"]
            assert reply["status"] == 400
            assert reply["error"]["code"] == "line_too_long"
            # The same connection keeps working after the bad line.
            follow_up = client.request({"op": "ping", "id": "after"})
        assert follow_up["ok"] and follow_up["id"] == "after"
        assert reg.snapshot().counter("serve.rejected.oversized") == 1

    def test_grossly_oversized_line_is_discarded_across_chunks(self, service):
        # Many read chunks of garbage, one newline at the end: exactly
        # one 400 frame, then business as usual.
        with ServeClient("127.0.0.1", service.port) as client:
            client._sock.sendall(b"x" * (CAP * 50) + b"\n")
            reply = client.recv()
            assert reply["error"]["code"] == "line_too_long"
            assert client.request({"op": "ping", "id": "ok"})["ok"]


class TestDegenerateFrames:
    def test_empty_and_whitespace_lines_are_ignored(self, service):
        with ServeClient("127.0.0.1", service.port) as client:
            client._sock.sendall(b"\n\n   \n\t\n")
            reply = client.request({"op": "ping", "id": "p1"})
        # The only response on the wire answers the ping: blank lines
        # produced neither an answer nor an error.
        assert reply == {"id": "p1", "ok": True, "op": "ping"}

    def test_partial_final_frame_at_disconnect_is_dropped(self, service):
        sock = socket.create_connection(("127.0.0.1", service.port))
        sock.sendall(b'{"op": "ping", "id": "half')  # no newline, ever
        sock.close()
        # The service neither crashes nor answers the ghost: a fresh
        # connection is served normally.
        with ServeClient("127.0.0.1", service.port) as client:
            assert client.request({"op": "ping", "id": "p2"})["ok"]

    def test_interleaved_pipelined_requests_all_answered(self, service):
        # Two logical request streams with different coalesce keys,
        # interleaved with pings on one pipelined connection.
        wires = []
        for i in range(4):
            wires.append(_query(f"a{i}", seed=i))
            wires.append({"op": "ping", "id": f"p{i}"})
            wires.append(_query(f"b{i}", seed=i, threshold=9))
        with ServeClient("127.0.0.1", service.port) as client:
            for wire in wires:
                client.send(wire)
            replies = {}
            for _ in wires:
                reply = client.recv()
                replies[reply["id"]] = reply
        assert set(replies) == {w["id"] for w in wires}
        assert all(r["ok"] for r in replies.values())


class TestConnectionHardening:
    def test_connection_limit_refused_with_503(self, service):
        enable_metrics()
        reg = get_registry()
        with ServeClient("127.0.0.1", service.port) as a:
            assert a.request({"op": "ping", "id": "a"})["ok"]
            with ServeClient("127.0.0.1", service.port) as b:
                assert b.request({"op": "ping", "id": "b"})["ok"]
                # Third concurrent connection: over the cap of 2.
                with ServeClient("127.0.0.1", service.port) as c:
                    reply = c.recv()
                    assert not reply["ok"]
                    assert reply["status"] == 503
                    assert reply["error"]["code"] == "conn_limit"
                    with pytest.raises(ConnectionError):
                        c.request({"op": "ping", "id": "c"})
        assert reg.snapshot().counter("serve.rejected.conn_limit") == 1

    def test_idle_connection_is_closed(self):
        enable_metrics()
        reg = get_registry()
        config = ServeConfig(port=0, workers=1, idle_timeout=0.2)
        with serve_in_thread(config) as handle:
            with ServeClient("127.0.0.1", handle.port, timeout=10.0) as client:
                assert client.request({"op": "ping", "id": "p"})["ok"]
                with pytest.raises(ConnectionError):
                    client.recv()  # the server hangs up on the idler
        assert reg.snapshot().counter("serve.conn_idle_closed") == 1

    def test_slow_loris_frame_hits_read_deadline(self):
        # Trickling bytes keeps beating a pure idle timeout; the frame
        # read deadline bounds the whole frame regardless.
        enable_metrics()
        reg = get_registry()
        config = ServeConfig(
            port=0, workers=1, idle_timeout=30.0, read_deadline=0.3
        )
        with serve_in_thread(config) as handle:
            sock = socket.create_connection(("127.0.0.1", handle.port))
            sock.settimeout(10.0)
            reader = sock.makefile("rb")
            start = time.monotonic()
            closed_at = None
            try:
                for _ in range(50):
                    sock.sendall(b"{")
                    time.sleep(0.1)
            except (ConnectionError, OSError):
                closed_at = time.monotonic()
            if closed_at is None:
                assert reader.readline() == b""
                closed_at = time.monotonic()
            sock.close()
            # Closed well before the 5s the trickle would have taken.
            assert closed_at - start < 4.0
        assert reg.snapshot().counter("serve.conn_idle_closed") == 1

    def test_inflight_cap_backpressures_without_deadlock(self):
        config = ServeConfig(port=0, workers=1, max_inflight_per_conn=2)
        with serve_in_thread(config) as handle:
            wires = [_query(f"q{i}", seed=i, runs=4) for i in range(12)]
            with ServeClient("127.0.0.1", handle.port) as client:
                for wire in wires:
                    client.send(wire)
                replies = {client.recv()["id"] for _ in wires}
        assert replies == {w["id"] for w in wires}
