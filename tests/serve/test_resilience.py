"""Serve-layer resilience: deadlines, supervision, CoDel, client retries."""

from __future__ import annotations

import socket
import threading

import asyncio

import pytest

from repro.obs import enable_metrics, get_registry
from repro.serve import scheduler as scheduler_mod
from repro.serve.client import (
    CircuitOpenError,
    ClientRetryPolicy,
    RetriesExhausted,
    RetryingServeClient,
    ServeClient,
)
from repro.serve.errors import CodelShed, DeadlineExceeded, QueryExecutionError
from repro.serve.executor import execute_group
from repro.serve.request import QueryRequest, RequestError
from repro.serve.scheduler import BatchScheduler
from repro.serve.server import ServeConfig, serve_in_thread


def _request(rid: str, *, seed: int = 0, runs: int = 2, **overrides) -> QueryRequest:
    fields = {
        "id": rid,
        "tenant": "t",
        "n": 64,
        "x": 20,
        "threshold": 8,
        "runs": runs,
        "seed": seed,
    }
    fields.update(overrides)
    return QueryRequest(**fields)


def _query(rid: str, *, seed: int = 0, runs: int = 2, **overrides) -> dict:
    payload = {
        "op": "query",
        "id": rid,
        "tenant": "t",
        "n": 64,
        "x": 20,
        "threshold": 8,
        "runs": runs,
        "seed": seed,
    }
    payload.update(overrides)
    return payload


class _FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, start: float = 0.0, step: float = 0.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        current = self.now
        self.now += self.step
        return current


class TestDeadlineWire:
    def test_from_wire_parses_deadline(self):
        request = QueryRequest.from_wire(_query("q1", deadline_ms=250))
        assert request.deadline_ms == 250

    def test_from_wire_defaults_to_no_deadline(self):
        assert QueryRequest.from_wire(_query("q1")).deadline_ms is None

    @pytest.mark.parametrize("bad", [True, 1.5, "100", [100]])
    def test_from_wire_rejects_non_int_deadline(self, bad):
        with pytest.raises(RequestError):
            QueryRequest.from_wire(_query("q1", deadline_ms=bad))

    def test_from_wire_allows_expired_deadline(self):
        # Non-positive budgets are valid on the wire: admission answers
        # them with a 504-style shed, not a 400 validation error.
        assert QueryRequest.from_wire(_query("q1", deadline_ms=0)).deadline_ms == 0
        assert QueryRequest.from_wire(_query("q1", deadline_ms=-5)).deadline_ms == -5

    def test_deadline_does_not_affect_coalesce_key(self):
        a = QueryRequest.from_wire(_query("q1", deadline_ms=100))
        b = QueryRequest.from_wire(_query("q2"))
        assert a.coalesce_key == b.coalesce_key


class TestDeadlineService:
    def test_expired_on_arrival_rejected_504(self):
        enable_metrics()
        reg = get_registry()
        with serve_in_thread(ServeConfig(port=0, workers=1)) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                reply = client.request(_query("q1", deadline_ms=0))
                metrics = client.request({"op": "metrics"})["metrics"]
        assert not reply["ok"]
        assert reply["status"] == 504
        assert reply["error"]["code"] == "deadline"
        # The counter reconciles with the one injected expiry, both in
        # the live endpoint and the in-process registry.
        assert metrics["counters"]["serve.rejected.deadline"] == 1
        assert reg.snapshot().counter("serve.rejected.deadline") == 1

    def test_healthy_deadline_answers_normally(self):
        with serve_in_thread(ServeConfig(port=0, workers=1)) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                reply = client.query(_query("q1", seed=7), deadline_ms=30_000)
        assert reply["ok"] and reply["status"] == 200
        [expected] = execute_group(
            [QueryRequest.from_wire(_query("q1", seed=7))], vectorize=False
        )
        assert tuple(reply["decisions"]) == expected.decisions


class TestDeadlineScheduler:
    def test_expiry_in_queue_fails_504_with_stage(self):
        enable_metrics()
        reg = get_registry()
        clock = _FakeClock()

        async def scenario():
            scheduler = BatchScheduler(workers=1, clock=clock)
            future = scheduler.submit(_request("q1", deadline_ms=10))
            clock.now = 1.0  # the 10ms budget is long gone
            scheduler.start()
            with pytest.raises(DeadlineExceeded) as err:
                await future
            await scheduler.drain()
            return err.value

        exc = asyncio.run(scenario())
        assert exc.status == 504 and exc.code == "deadline_exceeded"
        assert exc.stage == "queued"
        snap = reg.snapshot()
        assert snap.counter("serve.expired.queued") == 1
        assert snap.counter("serve.failed") == 1

    def test_expiry_at_execution_hop_fails_504(self):
        # A stepping clock: alive at the claim sweep (t=1.0), dead at
        # the pre-execution re-check (t=2.0).
        enable_metrics()
        reg = get_registry()
        clock = _FakeClock(step=1.0)

        async def scenario():
            scheduler = BatchScheduler(workers=1, clock=clock)
            future = scheduler.submit(_request("q1", deadline_ms=1500))
            scheduler.start()
            with pytest.raises(DeadlineExceeded) as err:
                await future
            await scheduler.drain()
            return err.value

        exc = asyncio.run(scenario())
        assert exc.stage == "executing"
        assert reg.snapshot().counter("serve.expired.executing") == 1

    def test_expired_entry_does_not_poison_siblings(self):
        enable_metrics()
        clock = _FakeClock()

        async def scenario():
            scheduler = BatchScheduler(workers=1, clock=clock)
            doomed = scheduler.submit(_request("dead", deadline_ms=10))
            alive = scheduler.submit(_request("live", seed=3))
            clock.now = 1.0
            scheduler.start()
            with pytest.raises(DeadlineExceeded):
                await doomed
            outcome = await alive
            await scheduler.drain()
            return outcome

        outcome = asyncio.run(scenario())
        [expected] = execute_group([_request("live", seed=3)], vectorize=False)
        assert outcome.decisions == expected.decisions


class TestSupervision:
    def test_worker_respawns_after_executor_crash(self, monkeypatch):
        enable_metrics()
        reg = get_registry()
        calls = {"n": 0}
        real = execute_group

        def flaky(requests, *, vectorize):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("executor crashed")
            return real(requests, vectorize=vectorize)

        monkeypatch.setattr(scheduler_mod, "execute_group", flaky)

        async def scenario():
            scheduler = BatchScheduler(workers=1)
            scheduler.start()
            with pytest.raises(QueryExecutionError):
                await scheduler.submit(_request("q1"))
            # The lane died; its replacement must serve the next query.
            outcome = await scheduler.submit(_request("q2", seed=5))
            await scheduler.drain()
            return outcome

        outcome = asyncio.run(scenario())
        [expected] = execute_group([_request("q2", seed=5)], vectorize=False)
        assert outcome.decisions == expected.decisions
        assert reg.snapshot().counter("serve.worker_restarts") == 1

    def test_group_failure_blames_failing_request(self):
        # Three coalesced members; the scalar path fails on the first
        # (unknown algorithm).  Every member must get an error naming
        # the culprit, and serve.failed counts per member.
        enable_metrics()
        reg = get_registry()

        async def scenario():
            scheduler = BatchScheduler(workers=1, vectorize=False)
            futures = [
                scheduler.submit(_request(f"q{i}", seed=i, algorithm="nope"))
                for i in range(3)
            ]
            scheduler.start()
            results = await asyncio.gather(*futures, return_exceptions=True)
            await scheduler.drain()
            return results

        results = asyncio.run(scenario())
        assert all(isinstance(r, QueryExecutionError) for r in results)
        # The culprit carries its own id; siblings name it in their message.
        assert results[0].request_id == "q0"
        for i, result in enumerate(results):
            assert result.request_id == f"q{i}"
            assert "q0" in str(result)
        snap = reg.snapshot()
        assert snap.counter("serve.failed") == 3
        assert snap.counter("serve.worker_restarts") == 1

    def test_crash_mid_drain_still_terminates(self, monkeypatch):
        def exploding(requests, *, vectorize):
            raise RuntimeError("always down")

        monkeypatch.setattr(scheduler_mod, "execute_group", exploding)

        async def scenario():
            scheduler = BatchScheduler(workers=2)
            futures = [
                scheduler.submit(_request(f"q{i}", seed=i, threshold=8 + i))
                for i in range(4)
            ]
            scheduler.start()
            results = await asyncio.gather(*futures, return_exceptions=True)
            await scheduler.drain()
            return results

        results = asyncio.run(scenario())
        assert all(isinstance(r, QueryExecutionError) for r in results)

    def test_service_survives_executor_crash_end_to_end(self, monkeypatch):
        calls = {"n": 0}
        real = execute_group

        def flaky(requests, *, vectorize):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("executor crashed")
            return real(requests, vectorize=vectorize)

        monkeypatch.setattr(scheduler_mod, "execute_group", flaky)
        with serve_in_thread(ServeConfig(port=0, workers=1)) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                first = client.request(_query("q1"))
                second = client.request(_query("q2", seed=5))
        assert not first["ok"]
        assert first["status"] == 500
        assert first["error"]["code"] == "execution_failed"
        assert second["ok"] and second["status"] == 200


class TestCodel:
    def test_sheds_from_front_until_p50_under_target(self):
        enable_metrics()
        reg = get_registry()
        clock = _FakeClock()

        async def scenario():
            scheduler = BatchScheduler(
                workers=1, codel_target_ms=100.0, clock=clock
            )
            old = [scheduler.submit(_request(f"old{i}", seed=i)) for i in range(2)]
            clock.now = 0.09
            young = [
                scheduler.submit(_request(f"new{i}", seed=i, threshold=9))
                for i in range(2)
            ]
            clock.now = 0.15  # waits: old=150ms, young=60ms -> p50 over
            shed = scheduler._codel_tick()
            scheduler.start()
            results = await asyncio.gather(
                *old, *young, return_exceptions=True
            )
            await scheduler.drain()
            return shed, results

        shed, results = asyncio.run(scenario())
        # Dropping the single oldest entry brings the median back under
        # target; everything younger still gets served.
        assert shed == 1
        assert isinstance(results[0], CodelShed)
        assert results[0].status == 429 and results[0].code == "codel"
        assert all(not isinstance(r, Exception) for r in results[1:])
        snap = reg.snapshot()
        assert snap.counter("serve.rejected.codel") == 1

    def test_quiet_queue_sheds_nothing(self):
        clock = _FakeClock()

        async def scenario():
            scheduler = BatchScheduler(
                workers=1, codel_target_ms=100.0, clock=clock
            )
            futures = [scheduler.submit(_request(f"q{i}")) for i in range(3)]
            clock.now = 0.05  # everyone waited 50ms: under target
            shed = scheduler._codel_tick()
            scheduler.start()
            await asyncio.gather(*futures)
            await scheduler.drain()
            return shed

        assert asyncio.run(scenario()) == 0

    def test_watchdog_config_validation(self):
        with pytest.raises(ValueError):
            BatchScheduler(codel_target_ms=-1.0)
        with pytest.raises(ValueError):
            BatchScheduler(codel_interval_ms=0.0)


class _ScriptedConn:
    """A fake transport scripted with per-attempt outcomes."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.seen_deadlines = []

    def query(self, payload, *, deadline_ms=None):
        self.seen_deadlines.append(deadline_ms)
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome

    def close(self):
        pass


def _scripted_client(outcomes, *, policy=None, clock=None):
    """A RetryingServeClient whose transport is a scripted fake."""
    sleeps = []
    client = RetryingServeClient(
        "127.0.0.1",
        1,  # never dialled: _connection is replaced below
        policy=policy or ClientRetryPolicy(base_delay=0.01, jitter=0.0),
        clock=clock or _FakeClock(step=0.001),
        sleep=sleeps.append,
    )
    conn = _ScriptedConn(outcomes)
    client._connection = lambda: conn
    return client, conn, sleeps


class TestClientRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClientRetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ClientRetryPolicy(base_delay=2.0, max_delay=1.0)
        with pytest.raises(ValueError):
            ClientRetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            ClientRetryPolicy(breaker_threshold=-1)

    def test_backoff_doubles_and_caps(self):
        import numpy as np

        policy = ClientRetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        rng = np.random.default_rng(0)
        delays = [policy.delay(k, rng) for k in range(4)]
        assert delays == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_stays_in_band(self):
        import numpy as np

        policy = ClientRetryPolicy(base_delay=0.1, max_delay=10.0, jitter=0.25)
        rng = np.random.default_rng(7)
        for k in range(6):
            raw = min(10.0, 0.1 * 2**k)
            delay = policy.delay(k, rng)
            assert raw * 0.75 <= delay <= raw * 1.25


class TestRetryingClient:
    def test_succeeds_after_transport_failures(self):
        reply = {"id": "q1", "ok": True, "status": 200}
        client, _, sleeps = _scripted_client(
            [ConnectionResetError("boom"), TimeoutError("slow"), reply]
        )
        assert client.query({"id": "q1"}) == reply
        assert client.attempts_made == 3
        assert len(sleeps) == 2
        assert sleeps[1] == pytest.approx(sleeps[0] * 2)

    def test_retries_exhausted(self):
        client, _, _ = _scripted_client(
            [ConnectionResetError("boom")] * 4,
            policy=ClientRetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0),
        )
        with pytest.raises(RetriesExhausted) as err:
            client.query({"id": "q1"})
        assert err.value.attempts == 4

    def test_application_errors_are_answers_not_retries(self):
        shed = {"id": "q1", "ok": False, "status": 429}
        client, conn, sleeps = _scripted_client([shed])
        assert client.query({"id": "q1"}) == shed
        assert client.attempts_made == 1
        assert not sleeps
        assert not conn.outcomes  # nothing scripted beyond the one answer

    def test_breaker_opens_then_half_open_probe_closes(self):
        clock = _FakeClock(step=0.0)
        policy = ClientRetryPolicy(
            max_attempts=1,
            base_delay=0.0,
            jitter=0.0,
            breaker_threshold=2,
            breaker_cooldown=10.0,
        )
        reply = {"id": "q", "ok": True, "status": 200}
        client, conn, _ = _scripted_client(
            [ConnectionResetError("a"), ConnectionResetError("b"), reply, reply],
            policy=policy,
            clock=clock,
        )
        with pytest.raises(RetriesExhausted):
            client.query({"id": "q"})
        with pytest.raises(RetriesExhausted):
            client.query({"id": "q"})  # second consecutive failure: trips
        assert client.breaker_trips == 1
        assert client.circuit_open
        with pytest.raises(CircuitOpenError) as err:
            client.query({"id": "q"})
        assert err.value.retry_after > 0
        assert len(conn.seen_deadlines) == 2  # fail-fast made no call
        clock.now += 11.0  # cooldown elapsed: half-open
        assert client.query({"id": "q"}) == reply  # the probe closes it
        assert not client.circuit_open
        assert client.query({"id": "q"}) == reply

    def test_half_open_probe_failure_reopens(self):
        clock = _FakeClock(step=0.0)
        policy = ClientRetryPolicy(
            max_attempts=1,
            base_delay=0.0,
            jitter=0.0,
            breaker_threshold=1,
            breaker_cooldown=10.0,
        )
        client, _, _ = _scripted_client(
            [ConnectionResetError("a"), ConnectionResetError("b")],
            policy=policy,
            clock=clock,
        )
        with pytest.raises(RetriesExhausted):
            client.query({"id": "q"})
        assert client.circuit_open
        clock.now += 11.0
        with pytest.raises(RetriesExhausted):
            client.query({"id": "q"})  # the probe misses
        assert client.circuit_open  # ...and the circuit re-opened

    def test_deadline_caps_the_whole_retry_loop(self):
        clock = _FakeClock(step=0.0)
        policy = ClientRetryPolicy(
            max_attempts=10, base_delay=1.0, max_delay=1.0, jitter=0.0
        )

        def failing_then_tick(payload, *, deadline_ms=None):
            clock.now += 0.3  # each attempt burns 300ms of budget
            raise ConnectionResetError("down")

        client = RetryingServeClient(
            "127.0.0.1",
            1,
            policy=policy,
            clock=clock,
            sleep=lambda s: None,
        )
        conn = _ScriptedConn([])
        conn.query = failing_then_tick
        client._connection = lambda: conn
        with pytest.raises(RetriesExhausted) as err:
            client.query({"id": "q"}, deadline_ms=500)
        # 500ms budget, 300ms per attempt, 1s backoff: the loop must
        # stop long before the 10-attempt ceiling.
        assert err.value.attempts < 10

    def test_forwards_shrinking_deadline_on_wire(self):
        clock = _FakeClock(step=0.0)
        reply = {"id": "q", "ok": True, "status": 200}
        client, conn, _ = _scripted_client([reply], clock=clock)
        clock.now = 0.0
        client.query({"id": "q"}, deadline_ms=800)
        assert conn.seen_deadlines == [800]


class TestDeadServer:
    def test_recv_times_out_against_silent_server(self):
        # Regression: a server that accepts but never answers must raise
        # a timeout, not block the caller forever.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        accepted = []
        acceptor = threading.Thread(
            target=lambda: accepted.append(listener.accept()), daemon=True
        )
        acceptor.start()
        try:
            client = ServeClient("127.0.0.1", port, timeout=0.2)
            client.send({"op": "ping", "id": "p1"})
            with pytest.raises((TimeoutError, socket.timeout)):
                client.recv()
            client.close()
        finally:
            listener.close()
            acceptor.join(timeout=5.0)
            for sock, _ in accepted:
                sock.close()

    def test_query_deadline_bounds_recv_locally(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        accepted = []
        acceptor = threading.Thread(
            target=lambda: accepted.append(listener.accept()), daemon=True
        )
        acceptor.start()
        try:
            client = ServeClient("127.0.0.1", port, timeout=30.0)
            with pytest.raises((TimeoutError, socket.timeout)):
                client.query({"id": "q1", "n": 4, "x": 1, "threshold": 1},
                             deadline_ms=200)
            client.close()
        finally:
            listener.close()
            acceptor.join(timeout=5.0)
            for sock, _ in accepted:
                sock.close()
