"""Graceful shutdown: SIGTERM drains in-flight queries, then exit 0.

Drives a real ``tcast-serve run`` subprocess: pipeline a window of
queries, confirm the server has dispatched them all (a trailing ping --
the reader loop is sequential, so its response proves every earlier
line was consumed and admitted), send SIGTERM mid-flight, and require
every admitted query to come back answered before the process exits 0.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

_LISTEN_RE = re.compile(r"listening on ([\d.]+):(\d+)")

#: Queries pipelined before the SIGTERM.
WINDOW = 20


def _spawn_server(*extra_args: str) -> "tuple[subprocess.Popen[str], int]":
    """Start ``tcast-serve run --port 0``; return (process, bound port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parents[2] / "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve.cli",
            "run",
            "--port",
            "0",
            "--workers",
            "1",
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = _LISTEN_RE.search(line)
    if match is None:
        proc.kill()
        rest = proc.stdout.read()
        raise AssertionError(f"no listen banner; output: {line!r} {rest!r}")
    return proc, int(match.group(2))


class TestSigtermDrain:
    def test_inflight_queries_finish_before_exit(self):
        proc, port = _spawn_server()
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=30)
            reader = sock.makefile("rb")
            # Slow-ish queries so some are genuinely in flight at SIGTERM.
            for i in range(WINDOW):
                wire = {
                    "op": "query",
                    "id": f"q{i}",
                    "n": 256,
                    "x": 80,
                    "threshold": 32,
                    "runs": 50,
                    "seed": i,
                }
                sock.sendall((json.dumps(wire) + "\n").encode())
            sock.sendall(b'{"op": "ping", "id": "fence"}\n')
            # The reader loop is sequential: the fence's response proves
            # every query line before it was dispatched and admitted.
            replies = {}
            while "fence" not in replies:
                obj = json.loads(reader.readline())
                replies[obj["id"]] = obj
            proc.send_signal(signal.SIGTERM)
            # Every admitted query must still be answered post-SIGTERM.
            while len(replies) < WINDOW + 1:
                line = reader.readline()
                assert line, (
                    f"connection closed with {len(replies) - 1}/{WINDOW} "
                    "responses delivered"
                )
                obj = json.loads(line)
                replies[obj["id"]] = obj
            rc = proc.wait(timeout=60)
            sock.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert rc == 0
        answered = [r for rid, r in replies.items() if rid != "fence"]
        assert len(answered) == WINDOW
        assert all(r["ok"] and r["status"] == 200 for r in answered)

    def test_new_work_is_shed_while_draining(self):
        """A second SIGTERM scenario: requests sent after the drain began
        are shed with 429 'draining' (when the handler still reads them)
        or the connection closes -- either way the process exits 0."""
        proc, port = _spawn_server()
        try:
            sock = socket.create_connection(("127.0.0.1", port), timeout=30)
            reader = sock.makefile("rb")
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.2)
            try:
                sock.sendall(
                    b'{"op": "query", "id": "late", "n": 64, "x": 20, '
                    b'"threshold": 8}\n'
                )
                line = reader.readline()
            except OSError:
                line = b""
            if line:
                obj = json.loads(line)
                assert not obj["ok"]
                assert obj["error"]["code"] == "draining"
            rc = proc.wait(timeout=60)
            sock.close()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert rc == 0
