"""The serve chaos suite: a seeded hostile network between client and daemon.

Every test runs the real service and the real :class:`ChaosProxy` on
background event loops and drives blocking clients through the proxy.
The invariants under fire:

* every *admitted* query that gets an ``ok`` answer is **bit-identical**
  to the scalar oracle -- chaos may delay or kill transport, never
  corrupt answers;
* failures surface as explicit error frames or typed client exceptions,
  never silent hangs;
* the daemon drains cleanly (graceful stop succeeds) after arbitrary
  connection carnage.

A SIGALRM fixture puts a hard wall-clock bound on every test: a hang is
a loud failure, not a stuck CI job.
"""

from __future__ import annotations

import signal

import pytest

from repro.serve.chaos import ChaosSpec, chaos_in_thread
from repro.serve.client import (
    ClientRetryPolicy,
    RetriesExhausted,
    RetryingServeClient,
    ServeClient,
)
from repro.serve.executor import execute_group
from repro.serve.request import QueryRequest
from repro.serve.server import ServeConfig, serve_in_thread

#: Hard per-test wall-clock bound (seconds).
WALL_CLOCK_LIMIT = 120


@pytest.fixture(autouse=True)
def _hard_wall_clock():
    """Fail loudly (SIGALRM) instead of hanging a wedged chaos test."""

    def _blow_up(signum, frame):
        raise RuntimeError(
            f"chaos test exceeded its {WALL_CLOCK_LIMIT}s wall-clock bound"
        )

    previous = signal.signal(signal.SIGALRM, _blow_up)
    signal.alarm(WALL_CLOCK_LIMIT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def _query(rid: str, *, seed: int = 0, runs: int = 2, **overrides) -> dict:
    payload = {
        "op": "query",
        "id": rid,
        "tenant": "t",
        "n": 64,
        "x": 20,
        "threshold": 8,
        "runs": runs,
        "seed": seed,
    }
    payload.update(overrides)
    return payload


def _oracle(wire: dict):
    """The scalar-path ground truth for one wire query."""
    [outcome] = execute_group(
        [QueryRequest.from_wire(wire)], vectorize=False
    )
    return outcome


def _assert_bit_identical(reply: dict, wire: dict) -> None:
    expected = _oracle(wire)
    assert tuple(reply["decisions"]) == expected.decisions
    assert tuple(reply["queries"]) == expected.queries


@pytest.fixture
def service():
    """The real daemon on a free port, drained on teardown."""
    with serve_in_thread(ServeConfig(port=0, workers=2)) as handle:
        yield handle


class TestChaosSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosSpec(latency_ms=-1.0)
        with pytest.raises(ValueError):
            ChaosSpec(p_disconnect=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(stall_ms=-1.0)

    def test_none_is_faultless(self):
        spec = ChaosSpec.none()
        assert spec.p_truncate == spec.p_disconnect == spec.p_stall == 0.0


class TestTransparentProxy:
    def test_faultless_proxy_is_invisible(self, service):
        with chaos_in_thread("127.0.0.1", service.port) as chaos:
            wires = [_query(f"q{i}", seed=i) for i in range(5)]
            with ServeClient("127.0.0.1", chaos.port) as client:
                for wire in wires:
                    reply = client.request(wire)
                    assert reply["ok"] and reply["status"] == 200
                    _assert_bit_identical(reply, wire)
            injected = chaos.injected
        assert injected["connections"] == 1
        assert injected["truncations"] == 0
        assert injected["disconnects"] == 0

    def test_latency_and_stalls_delay_but_never_corrupt(self, service):
        spec = ChaosSpec(
            latency_ms=2.0,
            latency_jitter_ms=3.0,
            p_stall=0.3,
            stall_ms=40.0,
            seed=11,
        )
        with chaos_in_thread("127.0.0.1", service.port, spec) as chaos:
            wires = [_query(f"q{i}", seed=i) for i in range(10)]
            with ServeClient("127.0.0.1", chaos.port, timeout=30.0) as client:
                for wire in wires:
                    reply = client.request(wire)
                    assert reply["ok"]
                    _assert_bit_identical(reply, wire)
            injected = chaos.injected
        assert injected["delays"] > 0
        assert injected["stalls"] > 0


class TestRetryUnderFire:
    def _torture(self, service, spec, *, queries=25, policy=None):
        """Run ``queries`` distinct queries through the fault mix."""
        wires = [
            _query(f"q{i}", seed=i, runs=1 + i % 3, threshold=8 + i % 2)
            for i in range(queries)
        ]
        with chaos_in_thread("127.0.0.1", service.port, spec) as chaos:
            client = RetryingServeClient(
                "127.0.0.1",
                chaos.port,
                policy=policy
                or ClientRetryPolicy(
                    max_attempts=8,
                    base_delay=0.01,
                    max_delay=0.1,
                    breaker_threshold=0,  # chaos is the point: no breaker
                ),
                timeout=10.0,
            )
            answered = 0
            for wire in wires:
                reply = client.query(wire, deadline_ms=60_000)
                assert reply["ok"], reply
                _assert_bit_identical(reply, wire)
                answered += 1
            client.close()
            injected = chaos.injected
        return answered, injected, client

    def test_disconnects_are_retried_to_success(self, service):
        answered, injected, client = self._torture(
            service, ChaosSpec(p_disconnect=0.2, seed=3)
        )
        assert answered == 25
        assert injected["disconnects"] > 0
        # Every injected disconnect killed one attempt mid-flight, so
        # the client must have dialled more attempts than queries.
        assert client.attempts_made > answered

    def test_mid_frame_truncation_never_corrupts_answers(self, service):
        answered, injected, client = self._torture(
            service, ChaosSpec(p_truncate=0.2, seed=5)
        )
        assert answered == 25
        assert injected["truncations"] > 0
        assert client.attempts_made > answered

    def test_mixed_fault_soup(self, service):
        spec = ChaosSpec(
            latency_ms=1.0,
            latency_jitter_ms=2.0,
            p_truncate=0.05,
            p_disconnect=0.05,
            p_stall=0.1,
            stall_ms=20.0,
            seed=7,
        )
        answered, injected, _ = self._torture(service, spec)
        assert answered == 25
        assert injected["connections"] >= 1

    def test_dead_upstream_fails_fast_with_typed_error(self):
        # Proxy up, service down: every attempt sees an immediate close.
        with serve_in_thread(ServeConfig(port=0, workers=1)) as handle:
            dead_port = handle.port
        # handle stopped: the port is now unserved.
        with chaos_in_thread("127.0.0.1", dead_port) as chaos:
            client = RetryingServeClient(
                "127.0.0.1",
                chaos.port,
                policy=ClientRetryPolicy(
                    max_attempts=3, base_delay=0.0, jitter=0.0
                ),
                timeout=2.0,
            )
            with pytest.raises(RetriesExhausted) as err:
                client.query(_query("q1"))
            client.close()
        assert err.value.attempts == 3


class TestDrainUnderChaos:
    def test_daemon_drains_cleanly_after_connection_carnage(self):
        handle = serve_in_thread(ServeConfig(port=0, workers=2))
        spec = ChaosSpec(p_disconnect=0.15, p_truncate=0.1, seed=13)
        try:
            with chaos_in_thread("127.0.0.1", handle.port, spec) as chaos:
                client = RetryingServeClient(
                    "127.0.0.1",
                    chaos.port,
                    policy=ClientRetryPolicy(
                        max_attempts=8,
                        base_delay=0.01,
                        max_delay=0.1,
                        breaker_threshold=0,
                    ),
                    timeout=10.0,
                )
                for i in range(15):
                    wire = _query(f"q{i}", seed=i)
                    reply = client.query(wire, deadline_ms=60_000)
                    assert reply["ok"]
                    _assert_bit_identical(reply, wire)
                client.close()
        finally:
            # The actual assertion: a graceful drain completes (stop()
            # raises if the service thread fails to exit in time).
            handle.stop(timeout=30.0)

    def test_direct_shutdown_op_through_chaos(self, service):
        # Even through a lossy proxy, a clean connection can still land
        # the shutdown op; the SIGALRM fixture bounds the whole dance.
        spec = ChaosSpec(latency_ms=1.0, seed=17)
        with chaos_in_thread("127.0.0.1", service.port, spec) as chaos:
            client = RetryingServeClient(
                "127.0.0.1",
                chaos.port,
                policy=ClientRetryPolicy(max_attempts=5, base_delay=0.01),
                timeout=10.0,
            )
            reply = client.query(_query("q1", seed=1), deadline_ms=30_000)
            assert reply["ok"]
            client.close()
