"""Cross-substrate consistency: the same algorithm must behave the same
against the abstract 1+ model and the packet-level mote emulation.

This is the reproduction's central fidelity claim: the packet-level
testbed (Fig 4) and the abstract simulations (Figs 1-3, 5-7) are two
implementations of the *same* information structure, so with ideal
radios the decisions must be identical and the query counts must be
statistically indistinguishable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExponentialIncrease, TwoTBins
from repro.group_testing.model import OnePlusModel
from repro.group_testing.population import Population
from repro.motes.testbed import Testbed, TestbedConfig


@pytest.mark.parametrize("algo_factory", [TwoTBins, ExponentialIncrease])
def test_decisions_agree_with_ideal_radios(algo_factory):
    n, t = 10, 3
    for seed in range(12):
        rng = np.random.default_rng(seed)
        x = int(rng.integers(0, n + 1))
        positives = [int(p) for p in rng.choice(n, size=x, replace=False)]

        # Abstract substrate.
        pop = Population(size=n, positives=frozenset(positives))
        model = OnePlusModel(pop, np.random.default_rng(seed))
        abstract = algo_factory().decide(
            model, t, np.random.default_rng(1000 + seed)
        )

        # Packet-level substrate with the SAME bin randomness.
        tb = Testbed(TestbedConfig(num_participants=n, seed=seed))
        tb.configure_positives(positives)
        run = tb.run_threshold_query(
            algo_factory(), t, bin_rng=np.random.default_rng(1000 + seed)
        )

        assert abstract.decision == run.result.decision == (x >= t)
        # Same bin RNG + same information structure => identical queries.
        assert abstract.queries == run.result.queries


def test_votecast_matches_abstract_two_plus_statistics():
    """Packet-level votecast and the abstract 2+ model share the capture
    model, so 2tBins cost distributions must agree statistically."""
    from repro.group_testing.model import TwoPlusModel

    n, t, x = 12, 4, 6
    abstract_costs = []
    packet_costs = []
    for seed in range(25):
        rng = np.random.default_rng(seed)
        positives = [int(p) for p in rng.choice(n, size=x, replace=False)]
        pop = Population(size=n, positives=frozenset(positives))
        model = TwoPlusModel(pop, np.random.default_rng(seed))
        result = TwoTBins().decide(model, t, np.random.default_rng(seed + 50))
        assert result.decision
        abstract_costs.append(result.queries)

        tb = Testbed(
            TestbedConfig(num_participants=n, seed=seed, primitive="votecast")
        )
        tb.configure_positives(positives)
        run = tb.run_threshold_query(
            TwoTBins(), t, bin_rng=np.random.default_rng(seed + 500)
        )
        assert run.result.decision
        assert run.result.confirmed_positives <= x
        packet_costs.append(run.result.queries)
    assert np.mean(packet_costs) == pytest.approx(
        np.mean(abstract_costs), rel=0.3
    )


def test_mean_costs_match_between_substrates():
    """Across independent randomness the cost distributions must agree."""
    n, t, x = 12, 4, 6
    abstract_costs = []
    packet_costs = []
    for seed in range(25):
        rng = np.random.default_rng(seed)
        positives = [int(p) for p in rng.choice(n, size=x, replace=False)]
        pop = Population(size=n, positives=frozenset(positives))
        model = OnePlusModel(pop, np.random.default_rng(seed))
        abstract_costs.append(
            TwoTBins().decide(model, t, np.random.default_rng(seed + 50)).queries
        )
        tb = Testbed(TestbedConfig(num_participants=n, seed=seed))
        tb.configure_positives(positives)
        run = tb.run_threshold_query(
            TwoTBins(), t, bin_rng=np.random.default_rng(seed + 500)
        )
        packet_costs.append(run.result.queries)
    assert np.mean(packet_costs) == pytest.approx(
        np.mean(abstract_costs), rel=0.25
    )
