"""Protocol-level fuzzing: random rounds against ground truth.

Hypothesis drives random bin assignments and positive sets through the
full packet-level protocol stack (announce fragments, address binding,
polls, HACK superposition) and asserts the initiator's observation
matches ground-truth bin emptiness on every poll -- the end-to-end
correctness contract of the backcast implementation.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.motes.participant import ParticipantApp
from repro.primitives.backcast import BackcastInitiator
from repro.radio.cc2420 import Cc2420Radio
from repro.radio.channel import Channel
from repro.sim.kernel import Simulator


def build(n_participants, positives):
    sim = Simulator()
    channel = Channel(sim, np.random.default_rng(0))
    init_radio = Cc2420Radio(sim, channel, address=500)
    initiator = BackcastInitiator(sim, init_radio)
    for i in range(n_participants):
        radio = Cc2420Radio(sim, channel, address=i)
        app = ParticipantApp(sim, radio)
        app.boot()
        app.configure(i in positives)
    return initiator


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    data=st.data(),
)
def test_random_rounds_match_ground_truth(n, data):
    positives = data.draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
    )
    # A random partition of a random subset of nodes into random bins.
    members = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            unique=True,
            max_size=n,
        )
    )
    n_bins = data.draw(st.integers(min_value=1, max_value=max(1, len(members))))
    bins: list[list[int]] = [[] for _ in range(n_bins)]
    for idx, node in enumerate(members):
        bins[idx % n_bins].append(node)

    initiator = build(n, positives)
    initiator.announce_round(bins)
    # Poll in a random order -- binding must be order-independent.
    order = data.draw(st.permutations(range(n_bins)))
    for g in order:
        outcome = initiator.poll_bin(g)
        truth_nonempty = any(m in positives for m in bins[g])
        assert outcome.nonempty == truth_nonempty, (
            f"bin {g} ({bins[g]}) with positives {sorted(positives)}"
        )
        if truth_nonempty:
            expected_k = sum(1 for m in bins[g] if m in positives)
            assert outcome.superposition == expected_k


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=16),
    rounds=st.integers(min_value=2, max_value=4),
    data=st.data(),
)
def test_consecutive_rounds_never_leak_bindings(n, rounds, data):
    positives = data.draw(
        st.sets(
            st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n
        )
    )
    initiator = build(n, positives)
    for _ in range(rounds):
        members = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                unique=True,
                min_size=1,
                max_size=n,
            )
        )
        n_bins = data.draw(
            st.integers(min_value=1, max_value=len(members))
        )
        bins: list[list[int]] = [[] for _ in range(n_bins)]
        for idx, node in enumerate(members):
            bins[idx % n_bins].append(node)
        initiator.announce_round(bins)
        for g, bin_members in enumerate(bins):
            truth = any(m in positives for m in bin_members)
            assert initiator.poll_bin(g).nonempty == truth
