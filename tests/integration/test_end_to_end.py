"""End-to-end scenarios stitching the whole library together."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BimodalSpec,
    OnePlusModel,
    ProbabilisticAbns,
    ProbabilisticThreshold,
    TwoTBins,
    upper_bound_queries,
)
from repro.group_testing.model import OnePlusModel as _OnePlus
from repro.mac import CsmaBaseline, SequentialOrdering
from repro.workloads.bimodal import BimodalWorkload
from repro.workloads.scenarios import IntrusionField


def test_intrusion_confirmation_pipeline():
    """Detect -> confirm over the neighbourhood -> classify, end to end."""
    rng = np.random.default_rng(0)
    field = IntrusionField(
        120, field_size=100.0, sensing_range=25.0,
        false_positive_rate=0.01, rng=rng,
    )
    threshold = 5
    confirmed = dismissed = 0
    for i in range(40):
        scenario = field.event(rng, intruder=(i % 2 == 0))
        model = OnePlusModel(scenario.population, np.random.default_rng(i))
        result = ProbabilisticAbns().decide(
            model, threshold, np.random.default_rng(100 + i)
        )
        assert result.decision == scenario.population.truth(threshold)
        assert result.queries <= upper_bound_queries(120, threshold) + 1
        confirmed += result.decision
        dismissed += not result.decision
    assert confirmed > 0 and dismissed > 0


def test_every_engine_agrees_on_exact_instances():
    """tcast, sequential and (adaptive-quiet) CSMA must concur."""
    from repro.mac.csma import CsmaConfig

    rng = np.random.default_rng(1)
    for seed in range(15):
        n = 48
        x = int(rng.integers(0, n + 1))
        t = int(rng.integers(1, n + 1))
        from repro.group_testing.population import Population

        pop = Population.from_count(n, x, np.random.default_rng(seed))
        truth = pop.truth(t)

        model = _OnePlus(pop, np.random.default_rng(seed))
        assert TwoTBins().decide(
            model, t, np.random.default_rng(seed)
        ).decision == truth
        assert SequentialOrdering().decide(
            pop, t, np.random.default_rng(seed)
        ).decision == truth
        assert CsmaBaseline(CsmaConfig(adaptive_quiet=True)).decide(
            pop, t, np.random.default_rng(seed)
        ).decision == truth


def test_bimodal_monitoring_pipeline():
    """Sec VI deployment loop: size r once, classify a stream of events."""
    spec = BimodalSpec(n=96, mu1=3.0, sigma1=2.0, mu2=70.0, sigma2=8.0,
                       weight1=0.8)
    scheme = ProbabilisticThreshold(spec, delta=0.05)
    workload = BimodalWorkload(spec)
    rng = np.random.default_rng(5)
    hits = 0
    runs = 300
    for _ in range(runs):
        pop, draw = workload.draw_population(rng)
        model = OnePlusModel(pop, rng)
        result = scheme.decide(model, 48, rng)
        hits += result.decision == draw.activity
        assert result.queries == scheme.repeats
    assert hits / runs >= 0.95


@pytest.mark.parametrize(
    "example",
    ["quickstart", "intrusion_detection", "rfid_inventory"],
)
def test_examples_run_clean(example, capsys):
    """The lightweight example scripts must execute without error."""
    import importlib.util
    import pathlib

    path = (
        pathlib.Path(__file__).resolve().parents[2] / "examples" / f"{example}.py"
    )
    spec = importlib.util.spec_from_file_location(f"example_{example}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100
