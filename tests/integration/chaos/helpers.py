"""Picklable fault injectors for the chaos tests.

Module-level classes (picklable by reference under the ``fork`` start
method) that wrap a real algorithm factory and inject exactly one fault
in a worker process, coordinated through an exclusive-create sentinel
file: the first worker to create the sentinel injects, every later
attempt behaves normally.  That gives each scenario a deterministic
"fail once, then recover" shape regardless of scheduling.
"""

from __future__ import annotations

import os
import signal
import time

from repro.api import algorithm_factory


class KillOnceFactory:
    """SIGKILLs the first worker process that builds an algorithm.

    Subsequent builds (the supervised requeue) delegate to the real
    factory, so a run that survives the kill is bit-identical to a
    fault-free one.
    """

    def __init__(self, sentinel: str, algorithm: str = "2tbins") -> None:
        self.sentinel = sentinel
        self.inner = algorithm_factory(algorithm)

    def __call__(self, x: int):
        try:
            open(self.sentinel, "x").close()
        except FileExistsError:
            return self.inner(x)
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable")  # pragma: no cover


class HangOnceFactory:
    """Hangs the first worker process that builds an algorithm.

    The supervisor's stall deadline must detect the wedged pool, kill
    it, and requeue; the retry sees the sentinel and runs normally.
    """

    def __init__(
        self,
        sentinel: str,
        algorithm: str = "2tbins",
        hang_seconds: float = 60.0,
    ) -> None:
        self.sentinel = sentinel
        self.inner = algorithm_factory(algorithm)
        self.hang_seconds = hang_seconds

    def __call__(self, x: int):
        try:
            open(self.sentinel, "x").close()
        except FileExistsError:
            return self.inner(x)
        time.sleep(self.hang_seconds)
        raise AssertionError("unreachable")  # pragma: no cover
