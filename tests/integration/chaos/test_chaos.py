"""Chaos scenarios: kill, hang, interrupt, corrupt -- then recover.

Each scenario injects exactly one fault into a real sweep and asserts
the recovered output is **byte-identical** to an uninterrupted golden
run:

* a worker SIGKILLed mid-sweep (supervised requeue, same process),
* a worker hung mid-sweep (stall detection, same process),
* the CLI SIGINT'd at a seeded-random journal point, then ``--resume``,
* the CLI SIGTERM'd (the PR-4 atexit path must still flush metrics),
* a result-cache entry truncated on disk (quarantine + recompute).

The signal scenarios drive the installed CLI in a subprocess with its
own working directory, exactly as an operator would.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import algorithm_factory
from repro.experiments import resilience
from repro.experiments.common import SweepEngine, shutdown_executors
from repro.experiments.resilience import (
    RunContext,
    ShardJournal,
    SupervisionPolicy,
)
from repro.group_testing.model import ModelSpec
from repro.sim.rng import RngRegistry
from tests.integration.chaos.helpers import HangOnceFactory, KillOnceFactory

REPO = Path(__file__).resolve().parents[3]

#: Shared configuration of the subprocess scenarios: one golden run is
#: compared against every interrupted-then-resumed rerun.
RUNS, SEED, JOBS = "60", "7", "2"
CLI_ARGS = ["run", "fig01", "--runs", RUNS, "--seed", SEED,
            "--jobs", JOBS, "--no-cache"]


@pytest.fixture(scope="module", autouse=True)
def _fake_multicore():
    """Pretend the host has >= 4 CPUs (see test_parallel.py)."""
    real = os.cpu_count
    mp = pytest.MonkeyPatch()
    mp.setattr(os, "cpu_count", lambda: max(4, real() or 1))
    yield
    mp.undo()


@pytest.fixture(scope="module", autouse=True)
def _reap_pools():
    yield
    shutdown_executors()


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _cli(args, cwd, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", *args],
        cwd=cwd,
        env=_env(),
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture(scope="module")
def golden_csv(tmp_path_factory):
    """The uninterrupted fig01 CSV every scenario must reproduce."""
    cwd = tmp_path_factory.mktemp("golden")
    proc = _cli([*CLI_ARGS, "--out", "golden"], cwd)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return cwd / "golden" / "fig01.csv"


def _interrupt_at_seeded_point(cwd, signum, extra_args=()):
    """Start a CLI run and deliver ``signum`` once the journal holds a
    seeded-random number of records; returns (records_seen, stdout)."""
    # Seeded injection discipline: the chaos point derives from the run
    # configuration, not from test-process entropy.
    chaos_rng = RngRegistry(int(SEED)).fork("chaos").stream(str(signum))
    target_records = int(chaos_rng.integers(1, 4))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.cli",
         *CLI_ARGS, "--out", "out", *extra_args],
        cwd=cwd,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    journal_dir = cwd / "results" / "journal"
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        journals = list(journal_dir.glob("*.journal"))
        records = (
            len(journals[0].read_text().splitlines()) - 1 if journals else 0
        )
        if records >= target_records:
            proc.send_signal(signum)
            break
        if proc.poll() is not None:
            pytest.fail(
                "run finished before the chaos point was reached:\n"
                + (proc.communicate()[0] or "")
            )
        time.sleep(0.02)
    out, _ = proc.communicate(timeout=120)
    assert proc.returncode == 128 + signum, out
    return target_records, out


class TestSignalResume:
    def test_sigint_then_resume_is_byte_identical(self, tmp_path, golden_csv):
        records, out = _interrupt_at_seeded_point(
            tmp_path, signal.SIGINT, extra_args=["--metrics", "metrics.json"]
        )
        assert "interrupted by SIGINT" in out
        assert "--resume" in out
        # The journal survived the interrupt with >= the records we saw.
        journals = list((tmp_path / "results" / "journal").glob("*.journal"))
        assert len(journals) == 1
        assert len(journals[0].read_text().splitlines()) - 1 >= records
        # The metrics snapshot was flushed on the way out.
        snap = json.loads((tmp_path / "metrics.json").read_text())
        assert snap["counters"].get("resilience.journal_records", 0) >= records
        assert snap["counters"].get("resilience.graceful_exits") == 1

        resumed = _cli([*CLI_ARGS, "--out", "out", "--resume"], tmp_path)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert "resuming" in resumed.stdout
        assert (
            (tmp_path / "out" / "fig01.csv").read_bytes()
            == golden_csv.read_bytes()
        )
        # A completed run discards its journal.
        assert list((tmp_path / "results" / "journal").glob("*.journal")) == []

    def test_sigterm_flushes_metrics_and_resumes(self, tmp_path, golden_csv):
        records, out = _interrupt_at_seeded_point(
            tmp_path, signal.SIGTERM, extra_args=["--metrics", "metrics.json"]
        )
        assert "interrupted by SIGTERM" in out
        # Abnormal exit still produced a complete, parseable snapshot
        # (the atexit/finally flush path), written atomically.
        snap = json.loads((tmp_path / "metrics.json").read_text())
        assert snap["counters"].get("resilience.journal_records", 0) >= records

        resumed = _cli([*CLI_ARGS, "--out", "out", "--resume"], tmp_path)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert (
            (tmp_path / "out" / "fig01.csv").read_bytes()
            == golden_csv.read_bytes()
        )


def _chaos_policy():
    return SupervisionPolicy(
        max_retries=3,
        stall_timeout=2.0,
        poll_interval=0.05,
        backoff_base=0.0,
        drain_grace=2.0,
    )


def _curve(engine, factory):
    return engine.query_curve(
        "2tBins",
        [0, 4, 8],
        factory,
        ModelSpec(kind="1+", max_queries=64 * 50),
        check_exactness=False,
    )


def _journal(path):
    return ShardJournal(path, exp_id="chaos", key="k" * 64, fsync=False)


class TestWorkerFaults:
    def test_worker_killed_mid_sweep_result_identical(self, tmp_path):
        engine = SweepEngine(64, 8, runs=12, seed=77, jobs=2)
        baseline = _curve(engine, algorithm_factory("2tbins"))
        ctx = RunContext(
            journal=_journal(tmp_path / "j"), policy=_chaos_policy()
        )
        with resilience.activate(ctx):
            chaotic = _curve(
                engine, KillOnceFactory(str(tmp_path / "killed"))
            )
        assert (tmp_path / "killed").exists()  # the fault really fired
        assert ctx.degraded == []
        assert chaotic == baseline

    def test_worker_hung_mid_sweep_result_identical(self, tmp_path):
        engine = SweepEngine(64, 8, runs=12, seed=77, jobs=2)
        baseline = _curve(engine, algorithm_factory("2tbins"))
        ctx = RunContext(
            journal=_journal(tmp_path / "j"), policy=_chaos_policy()
        )
        with resilience.activate(ctx):
            chaotic = _curve(
                engine, HangOnceFactory(str(tmp_path / "hung"))
            )
        assert (tmp_path / "hung").exists()
        assert ctx.degraded == []
        assert chaotic == baseline


class TestCacheCorruption:
    def test_truncated_cache_entry_quarantined_and_recomputed(self, tmp_path):
        args = ["run", "fig01", "--runs", "6", "--seed", "3"]
        first = _cli([*args, "--out", "a"], tmp_path)
        assert first.returncode == 0, first.stdout + first.stderr
        entries = list((tmp_path / "results" / "cache").glob("*.json"))
        assert len(entries) == 1
        blob = entries[0].read_bytes()
        entries[0].write_bytes(blob[: len(blob) // 2])

        second = _cli([*args, "--out", "b"], tmp_path)
        assert second.returncode == 0, second.stdout + second.stderr
        assert "(computed)" in second.stdout  # not served from cache
        assert (
            (tmp_path / "a" / "fig01.csv").read_bytes()
            == (tmp_path / "b" / "fig01.csv").read_bytes()
        )
        quarantined = list(
            (tmp_path / "results" / "cache" / ".quarantine").glob("*.json")
        )
        assert len(quarantined) == 1

        info = _cli(["cache", "info"], tmp_path)
        assert "quarantined: 1" in info.stdout
