"""Farm chaos scenarios: kill workers and the coordinator, then recover.

Whole-process coverage of the ``--backend farm`` execution path, driving
the installed CLI in a subprocess exactly as an operator would:

* a farm worker SIGKILLed mid-sweep (heartbeat reclamation + respawn,
  same run completes),
* the coordinator itself SIGKILLed mid-sweep, then ``--resume`` seeds
  the new coordinator from the surviving result store and journal.

Every recovered CSV must be **byte-identical** to an uninterrupted
serial (``--backend local --jobs 1``) golden run, and the farm's lease
accounting must balance: granted = completed + expired + quarantined.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.sim.rng import RngRegistry

REPO = Path(__file__).resolve().parents[3]

RUNS, SEED = "40", "7"
BASE_ARGS = ["run", "fig01", "--runs", RUNS, "--seed", SEED, "--no-cache"]
FARM_ARGS = [*BASE_ARGS, "--jobs", "3", "--backend", "farm"]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def _cli(args, cwd, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", *args],
        cwd=cwd,
        env=_env(),
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.fixture(scope="module")
def golden_csv(tmp_path_factory):
    """The serial fig01 CSV every farm scenario must reproduce."""
    cwd = tmp_path_factory.mktemp("golden")
    proc = _cli([*BASE_ARGS, "--jobs", "1", "--out", "golden"], cwd)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return cwd / "golden" / "fig01.csv"


def _journal_records(cwd):
    journals = list((cwd / "results" / "journal").glob("*.journal"))
    if not journals:
        return 0
    return max(0, len(journals[0].read_text().splitlines()) - 1)


def _worker_pids(cwd):
    """Registered worker pids, discovered from the run's live spool."""
    pids = {}
    for reg in sorted((cwd / "results" / "spool").glob("fig01-*/workers/*.reg")):
        try:
            pids[reg.stem] = int(json.loads(reg.read_text())["pid"])
        except (OSError, ValueError, KeyError, TypeError):
            continue  # torn read of a file being written/removed
    return pids


def _start_farm(cwd, extra_args=()):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments.cli",
         *FARM_ARGS, "--out", "out", *extra_args],
        cwd=cwd,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _await_chaos_point(proc, cwd, target_records):
    """Block until the journal shows ``target_records`` durable records
    (the seeded chaos point) while the farm run is still in flight."""
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        if _journal_records(cwd) >= target_records and _worker_pids(cwd):
            return
        if proc.poll() is not None:
            pytest.fail(
                "farm run finished before the chaos point was reached:\n"
                + (proc.communicate()[0] or "")
            )
        time.sleep(0.02)
    proc.kill()
    pytest.fail("farm run never reached the chaos point")


def _seeded_target(stream):
    chaos_rng = RngRegistry(int(SEED)).fork("farm-chaos").stream(stream)
    return int(chaos_rng.integers(1, 4))


class TestFarmWorkerKill:
    def test_sigkilled_worker_is_reclaimed_and_run_completes(
        self, tmp_path, golden_csv
    ):
        proc = _start_farm(tmp_path, extra_args=["--metrics", "metrics.json"])
        _await_chaos_point(proc, tmp_path, _seeded_target("worker-kill"))
        victims = _worker_pids(tmp_path)
        victim_id, victim_pid = sorted(victims.items())[0]
        os.kill(victim_pid, signal.SIGKILL)
        out, _ = proc.communicate(timeout=600)
        assert proc.returncode == 0, out

        assert (
            (tmp_path / "out" / "fig01.csv").read_bytes()
            == golden_csv.read_bytes()
        )
        snap = json.loads((tmp_path / "metrics.json").read_text())
        counters = snap["counters"]
        assert counters.get("farm.worker_deaths", 0) >= 1
        assert counters.get("farm.leases_granted", 0) > 0
        assert counters["farm.leases_granted"] == (
            counters.get("farm.leases_completed", 0)
            + counters.get("farm.leases_expired", 0)
            + counters.get("farm.leases_quarantined", 0)
        )
        # A successful run cleans up its spool and journal.
        assert not list((tmp_path / "results" / "spool").glob("fig01-*"))
        assert not list((tmp_path / "results" / "journal").glob("*.journal"))


class TestFarmCoordinatorKill:
    def test_sigkilled_coordinator_resumes_byte_identical(
        self, tmp_path, golden_csv
    ):
        proc = _start_farm(tmp_path)
        _await_chaos_point(proc, tmp_path, _seeded_target("coordinator-kill"))
        proc.send_signal(signal.SIGKILL)
        out, _ = proc.communicate(timeout=120)
        assert proc.returncode == -signal.SIGKILL

        # The wreckage survived the crash: spool (store + manifest) and
        # journal are both on disk for the resumed coordinator.
        spools = list((tmp_path / "results" / "spool").glob("fig01-*"))
        assert len(spools) == 1
        assert (spools[0] / "MANIFEST").exists()
        assert _journal_records(tmp_path) >= 1

        resumed = _cli([*FARM_ARGS, "--out", "out", "--resume"], tmp_path)
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert (
            (tmp_path / "out" / "fig01.csv").read_bytes()
            == golden_csv.read_bytes()
        )
        assert not list((tmp_path / "results" / "spool").glob("fig01-*"))
        assert not list((tmp_path / "results" / "journal").glob("*.journal"))
